//! Secondary schedule metrics: per-task slack and per-bank contention.
//!
//! The analysis itself prices exactly one thing — the schedule. Search
//! layers above it (multi-objective DSE, reporting) also care about
//! *how close* a feasible schedule sails to its deadlines and *how
//! lopsided* the memory traffic lands on the banks. [`ScheduleMetrics`]
//! derives both from a finished [`Schedule`] and its [`Problem`]
//! without touching the conformance-pinned analysis counters: it is a
//! pure read-side summary, cheap enough to compute after every
//! evaluation of a search loop.

use crate::demand::BankDemand;
use crate::ids::{BankId, TaskId};
use crate::problem::Problem;
use crate::schedule::Schedule;
use crate::time::Cycles;

/// Read-side summary of a schedule: deadline slack and bank pressure.
///
/// Slack is measured against each task's *relative* deadline, exactly
/// like [`Schedule::check`]: `slack = deadline − response_time`, so a
/// feasible schedule has non-negative slack for every deadline task and
/// an unchecked (simulated) schedule may report negative slack.
/// Bank loads are derived from the problem's [`BankDemand`]s — the
/// traffic each task issues per bank under the current mapping — summed
/// over all tasks. They depend on the mapping and bank placement, not
/// on the arbiter, which is what makes them a useful second axis: two
/// schedules with the same makespan can differ sharply in how much
/// traffic their hottest bank absorbs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleMetrics {
    /// Per-task slack (`deadline − response_time`), `None` for tasks
    /// without a deadline. Indexed by task id.
    pub slacks: Vec<Option<i64>>,
    /// The tightest slack over all deadline tasks; `None` when no task
    /// has a deadline. Negative when a deadline is missed.
    pub min_slack: Option<i64>,
    /// Total accesses per bank, summed over every task. Indexed by
    /// bank id; length is the platform's bank count.
    pub bank_totals: Vec<u64>,
    /// The heaviest per-bank total (0 on an empty problem).
    pub bank_peak: u64,
}

impl ScheduleMetrics {
    /// Derives the metrics of `schedule` under `problem`.
    ///
    /// `schedule` must cover the problem's tasks (it always does when it
    /// came out of an analysis or simulation of the same problem);
    /// missing timings count as zero response time.
    #[must_use]
    pub fn compute(schedule: &Schedule, problem: &Problem) -> Self {
        let mut slacks = Vec::with_capacity(problem.len());
        let mut min_slack = None;
        for index in 0..problem.len() {
            let task = TaskId::from_index(index);
            let slack = problem.graph().task(task).deadline().map(|deadline| {
                let response = if index < schedule.len() {
                    schedule.timing(task).response_time()
                } else {
                    Cycles(0)
                };
                to_i64(deadline.0) - to_i64(response.0)
            });
            if let Some(s) = slack {
                min_slack = Some(min_slack.map_or(s, |m: i64| m.min(s)));
            }
            slacks.push(slack);
        }
        let (bank_totals, bank_peak) = bank_loads(problem);
        ScheduleMetrics {
            slacks,
            min_slack,
            bank_totals,
            bank_peak,
        }
    }
}

/// Per-bank total accesses under the problem's current demands, plus
/// the peak. Shared by [`ScheduleMetrics::compute`] and callers that
/// only need the bank axis (no schedule required — bank pressure is a
/// property of the mapping, not the arbiter).
#[must_use]
pub fn bank_loads(problem: &Problem) -> (Vec<u64>, u64) {
    let banks = problem.platform().banks();
    let mut totals = vec![0u64; banks];
    for demand in problem.demands() {
        accumulate(demand, &mut totals);
    }
    let peak = totals.iter().copied().max().unwrap_or(0);
    (totals, peak)
}

fn accumulate(demand: &BankDemand, totals: &mut [u64]) {
    for (BankId(bank), accesses) in demand.iter() {
        if let Some(slot) = totals.get_mut(bank as usize) {
            *slot = slot.saturating_add(accesses);
        }
    }
}

/// Clamps a `u64` cycle count into `i64` slack space.
fn to_i64(v: u64) -> i64 {
    i64::try_from(v).unwrap_or(i64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mapping, Platform, Task, TaskGraph, TaskTiming};

    fn problem() -> Problem {
        let mut g = TaskGraph::new();
        let a = g.add_task(Task::builder("a").wcet(Cycles(10)).deadline(Cycles(40)));
        let b = g.add_task(Task::builder("b").wcet(Cycles(10)));
        let c = g.add_task(Task::builder("c").wcet(Cycles(5)).deadline(Cycles(20)));
        g.add_edge(a, c, 7).unwrap();
        g.add_edge(b, c, 3).unwrap();
        let m = Mapping::from_assignment(&g, &[0, 1, 0]).unwrap();
        Problem::new(g, m, Platform::new(2, 2)).unwrap()
    }

    fn timing(wcet: u64, interference: u64) -> TaskTiming {
        TaskTiming {
            release: Cycles(0),
            wcet: Cycles(wcet),
            interference: Cycles(interference),
        }
    }

    #[test]
    fn slack_is_deadline_minus_response_time() {
        let p = problem();
        // Response times: a = 30, c = 18.
        let s = Schedule::from_timings(vec![timing(10, 20), timing(10, 0), timing(5, 13)]);
        let m = ScheduleMetrics::compute(&s, &p);
        assert_eq!(m.slacks, vec![Some(10), None, Some(2)]);
        assert_eq!(m.min_slack, Some(2));
    }

    #[test]
    fn missed_deadlines_show_as_negative_slack() {
        let p = problem();
        let s = Schedule::from_timings(vec![timing(10, 20), timing(10, 0), timing(5, 20)]);
        let m = ScheduleMetrics::compute(&s, &p);
        assert_eq!(m.min_slack, Some(-5));
    }

    #[test]
    fn no_deadlines_means_no_slack_axis() {
        let mut g = TaskGraph::new();
        g.add_task(Task::builder("x").wcet(Cycles(1)));
        let m = Mapping::from_assignment(&g, &[0]).unwrap();
        let p = Problem::new(g, m, Platform::new(1, 1)).unwrap();
        let s = Schedule::from_timings(vec![timing(1, 0)]);
        let metrics = ScheduleMetrics::compute(&s, &p);
        assert_eq!(metrics.min_slack, None);
        assert_eq!(metrics.slacks, vec![None]);
    }

    #[test]
    fn bank_totals_sum_every_demand() {
        let p = problem();
        // PerCoreBank on 2 cores / 2 banks: a,c on core 0 → bank 0;
        // b on core 1 → bank 1. Edge a→c (7 words): both ends hit
        // bank_of(core_of(c)) = bank 0 → 14. Edge b→c (3 words): both
        // ends hit bank 0 → 6. Total bank 0 = 20, bank 1 = 0.
        let s = Schedule::from_timings(vec![timing(10, 0), timing(10, 0), timing(5, 0)]);
        let m = ScheduleMetrics::compute(&s, &p);
        assert_eq!(m.bank_totals, vec![20, 0]);
        assert_eq!(m.bank_peak, 20);
    }
}
