//! The hardware platform: cores, memory banks and access timing.

use serde::{Deserialize, Serialize};

use crate::{Cycles, ModelError};

/// A many-core platform with a banked shared memory.
///
/// Only the characteristics consumed by the interference analysis are
/// modelled: the number of cores, the number of memory banks, and the time
/// a single word access occupies a bank. The arbitration policy itself is
/// supplied separately through the [`Arbiter`](crate::Arbiter) trait so the
/// same platform geometry can be analysed under different arbiters.
///
/// # Example
///
/// ```
/// use mia_model::{Cycles, Platform};
///
/// let mppa = Platform::mppa256_cluster();
/// assert_eq!(mppa.cores(), 16);
/// assert_eq!(mppa.banks(), 16);
/// assert_eq!(mppa.access_cycles(), Cycles(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Platform {
    cores: usize,
    banks: usize,
    access_cycles: Cycles,
}

impl Platform {
    /// Creates a platform with `cores` cores, `banks` memory banks and a
    /// one-cycle word access time (the paper's §II.A assumption).
    ///
    /// # Panics
    ///
    /// Panics if `cores` or `banks` is zero; use [`Platform::try_new`] for
    /// a fallible variant.
    pub fn new(cores: usize, banks: usize) -> Self {
        Platform::try_new(cores, banks, Cycles(1)).expect("cores and banks must be non-zero")
    }

    /// Fallible constructor with explicit access time.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyPlatform`] if `cores` or `banks` is zero.
    pub fn try_new(cores: usize, banks: usize, access_cycles: Cycles) -> Result<Self, ModelError> {
        if cores == 0 || banks == 0 {
            return Err(ModelError::EmptyPlatform);
        }
        Ok(Platform {
            cores,
            banks,
            access_cycles,
        })
    }

    /// The Kalray MPPA-256 compute-cluster geometry used throughout the
    /// paper's evaluation: 16 cores, 16 shared-memory banks, one cycle per
    /// word access.
    pub fn mppa256_cluster() -> Self {
        Platform::new(16, 16)
    }

    /// Number of processing cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Number of shared-memory banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Time one word access occupies a bank.
    pub fn access_cycles(&self) -> Cycles {
        self.access_cycles
    }

    /// Returns a copy with a different access time.
    pub fn with_access_cycles(mut self, access_cycles: Cycles) -> Self {
        self.access_cycles = access_cycles;
        self
    }
}

impl Default for Platform {
    /// Defaults to the MPPA-256 compute cluster.
    fn default() -> Self {
        Platform::mppa256_cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mppa_preset() {
        let p = Platform::default();
        assert_eq!(p.cores(), 16);
        assert_eq!(p.banks(), 16);
        assert_eq!(p.access_cycles(), Cycles(1));
    }

    #[test]
    fn try_new_rejects_empty() {
        assert_eq!(
            Platform::try_new(0, 4, Cycles(1)),
            Err(ModelError::EmptyPlatform)
        );
        assert_eq!(
            Platform::try_new(4, 0, Cycles(1)),
            Err(ModelError::EmptyPlatform)
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn new_panics_on_zero_cores() {
        let _ = Platform::new(0, 1);
    }

    #[test]
    fn with_access_cycles() {
        let p = Platform::new(2, 2).with_access_cycles(Cycles(5));
        assert_eq!(p.access_cycles(), Cycles(5));
    }
}
