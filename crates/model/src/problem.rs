//! A validated analysis problem: graph + mapping + platform + demands.

use serde::{Deserialize, Serialize};

use crate::{
    derive_demands, BankDemand, BankPolicy, Mapping, ModelError, Platform, TaskGraph, TaskId,
};

/// Everything an interference analysis needs, validated once at
/// construction:
///
/// * the task [`TaskGraph`] is acyclic,
/// * the [`Mapping`] covers every task exactly once,
/// * the mapping fits on the [`Platform`],
/// * the combined precedence relation (dependency edges **plus** per-core
///   execution order) is acyclic — a cross-core ordering cycle would
///   deadlock any schedule,
/// * every derived [`BankDemand`] targets an existing bank.
///
/// The per-bank demands are derived at construction with the chosen
/// [`BankPolicy`] (or injected verbatim with [`Problem::with_demands`]).
///
/// # Example
///
/// ```
/// use mia_model::{BankPolicy, Cycles, Mapping, Platform, Problem, Task, TaskGraph};
///
/// # fn main() -> Result<(), mia_model::ModelError> {
/// let mut g = TaskGraph::new();
/// let a = g.add_task(Task::builder("a").wcet(Cycles(10)));
/// let b = g.add_task(Task::builder("b").wcet(Cycles(10)));
/// g.add_edge(a, b, 8)?;
/// let m = Mapping::from_assignment(&g, &[0, 1])?;
/// let problem = Problem::with_policy(g, m, Platform::new(2, 2), BankPolicy::PerCoreBank)?;
/// // b reads its 8 words from its own core bank (bank 1).
/// assert_eq!(problem.demand(b).get(mia_model::BankId(1)), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    graph: TaskGraph,
    mapping: Mapping,
    platform: Platform,
    demands: Vec<BankDemand>,
    /// Topological order of the combined (dependency ∪ core-order) relation.
    combined_order: Vec<TaskId>,
}

impl Problem {
    /// Builds a problem with the default [`BankPolicy::PerCoreBank`] demand
    /// derivation (the Kalray MPPA-256 configuration of the paper).
    ///
    /// # Errors
    ///
    /// See the type-level documentation for the validated properties; the
    /// first violated one is reported as a [`ModelError`].
    pub fn new(graph: TaskGraph, mapping: Mapping, platform: Platform) -> Result<Self, ModelError> {
        Problem::with_policy(graph, mapping, platform, BankPolicy::PerCoreBank)
    }

    /// Builds a problem deriving demands with an explicit policy.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::new`].
    pub fn with_policy(
        graph: TaskGraph,
        mapping: Mapping,
        platform: Platform,
        policy: BankPolicy,
    ) -> Result<Self, ModelError> {
        let demands = derive_demands(&graph, &mapping, &platform, policy)?;
        Problem::with_demands(graph, mapping, platform, demands)
    }

    /// Builds a problem with caller-provided per-task demands (indexed by
    /// task id), bypassing edge-based derivation.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::new`], plus [`ModelError::LengthMismatch`] if
    /// `demands` does not cover the graph.
    pub fn with_demands(
        graph: TaskGraph,
        mapping: Mapping,
        platform: Platform,
        demands: Vec<BankDemand>,
    ) -> Result<Self, ModelError> {
        mapping.validate(&graph)?;
        if mapping.cores() > platform.cores() {
            return Err(ModelError::UnknownCore(crate::CoreId::from_index(
                mapping.cores() - 1,
            )));
        }
        if demands.len() != graph.len() {
            return Err(ModelError::LengthMismatch {
                expected: graph.len(),
                found: demands.len(),
            });
        }
        for d in &demands {
            if let Some(b) = d.max_bank() {
                if b.index() >= platform.banks() {
                    return Err(ModelError::UnknownBank(b));
                }
            }
        }
        let combined_order = combined_topological_order(&graph, &mapping)?;
        Ok(Problem {
            graph,
            mapping,
            platform,
            demands,
            combined_order,
        })
    }

    /// Replaces the mapping of an existing problem, re-deriving the
    /// per-bank demands with `policy` and revalidating exactly like
    /// construction — **without** cloning the task graph.
    ///
    /// This is the hot path of design-space exploration (`mia-dse`):
    /// evaluating a candidate mapping against the analysis means swapping
    /// the mapping thousands of times on the same graph and platform, and
    /// cloning the graph per candidate would dominate the search. On
    /// error the problem is left unchanged (the candidate was infeasible
    /// — e.g. a cross-core ordering cycle — and the caller rejects it).
    ///
    /// # Errors
    ///
    /// The same conditions as [`Problem::with_policy`]: an invalid or
    /// incomplete mapping, a mapping that overflows the platform, or a
    /// combined (dependency ∪ core-order) cycle.
    pub fn remap(&mut self, mapping: Mapping, policy: BankPolicy) -> Result<(), ModelError> {
        mapping.validate(&self.graph)?;
        if mapping.cores() > self.platform.cores() {
            return Err(ModelError::UnknownCore(crate::CoreId::from_index(
                mapping.cores() - 1,
            )));
        }
        let combined_order = combined_topological_order(&self.graph, &mapping)?;
        let demands = derive_demands(&self.graph, &mapping, &self.platform, policy)?;
        self.mapping = mapping;
        self.demands = demands;
        self.combined_order = combined_order;
        Ok(())
    }

    /// Like [`Problem::remap`], but with an explicit per-task home bank
    /// instead of a policy-derived one
    /// (see [`crate::derive_demands_with_banks`]). On error the problem
    /// is unchanged.
    ///
    /// # Errors
    ///
    /// Everything [`Problem::remap`] rejects, plus
    /// [`ModelError::LengthMismatch`] when `banks` does not cover the
    /// graph and [`ModelError::UnknownBank`] for out-of-range banks.
    pub fn remap_with_banks(
        &mut self,
        mapping: Mapping,
        banks: &[crate::BankId],
    ) -> Result<(), ModelError> {
        mapping.validate(&self.graph)?;
        if mapping.cores() > self.platform.cores() {
            return Err(ModelError::UnknownCore(crate::CoreId::from_index(
                mapping.cores() - 1,
            )));
        }
        let combined_order = combined_topological_order(&self.graph, &mapping)?;
        let demands =
            crate::derive_demands_with_banks(&self.graph, &mapping, &self.platform, banks)?;
        self.mapping = mapping;
        self.demands = demands;
        self.combined_order = combined_order;
        Ok(())
    }

    /// The task graph.
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// The mapping and per-core execution orders.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// The platform geometry.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Per-task bank demands, indexed by task id.
    pub fn demands(&self) -> &[BankDemand] {
        &self.demands
    }

    /// The demand of one task.
    ///
    /// # Panics
    ///
    /// Panics if `task` is outside the graph.
    pub fn demand(&self, task: TaskId) -> &BankDemand {
        &self.demands[task.index()]
    }

    /// A topological order of the combined precedence relation (dependency
    /// edges plus per-core execution order). Scheduling tasks in this order
    /// always makes progress; both analysis algorithms rely on it.
    pub fn combined_order(&self) -> &[TaskId] {
        &self.combined_order
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// True if the problem has no tasks.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }
}

/// Topologically sorts the relation "dependency edge or consecutive on the
/// same core".
fn combined_topological_order(
    graph: &TaskGraph,
    mapping: &Mapping,
) -> Result<Vec<TaskId>, ModelError> {
    let n = graph.len();
    let mut indegree = vec![0usize; n];
    for e in graph.edges() {
        indegree[e.dst.index()] += 1;
    }
    for (_, order) in mapping.iter() {
        for pair in order.windows(2) {
            indegree[pair[1].index()] += 1;
        }
    }
    // Successor lookup for core-order edges: next task on the same core.
    let mut core_next: Vec<Option<TaskId>> = vec![None; n];
    for (_, order) in mapping.iter() {
        for pair in order.windows(2) {
            core_next[pair[0].index()] = Some(pair[1]);
        }
    }
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut ready: BinaryHeap<Reverse<TaskId>> = (0..n)
        .map(TaskId::from_index)
        .filter(|t| indegree[t.index()] == 0)
        .map(Reverse)
        .collect();
    let mut out = Vec::with_capacity(n);
    while let Some(Reverse(t)) = ready.pop() {
        out.push(t);
        let relax =
            |succ: TaskId, indegree: &mut Vec<usize>, ready: &mut BinaryHeap<Reverse<TaskId>>| {
                indegree[succ.index()] -= 1;
                if indegree[succ.index()] == 0 {
                    ready.push(Reverse(succ));
                }
            };
        for e in graph.successors(t) {
            relax(e.dst, &mut indegree, &mut ready);
        }
        if let Some(next) = core_next[t.index()] {
            relax(next, &mut indegree, &mut ready);
        }
    }
    if out.len() != n {
        let culprit = (0..n)
            .map(TaskId::from_index)
            .find(|t| indegree[t.index()] > 0)
            .expect("cycle implies remaining in-degree");
        return Err(ModelError::Cycle(culprit));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BankId, CoreId, Cycles, Task};

    fn two_task_graph() -> TaskGraph {
        let mut g = TaskGraph::new();
        let a = g.add_task(Task::builder("a").wcet(Cycles(5)));
        let b = g.add_task(Task::builder("b").wcet(Cycles(5)));
        g.add_edge(a, b, 2).unwrap();
        g
    }

    #[test]
    fn new_validates_and_derives() {
        let g = two_task_graph();
        let m = Mapping::from_assignment(&g, &[0, 1]).unwrap();
        let p = Problem::new(g, m, Platform::new(2, 2)).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.demand(TaskId(0)).get(BankId(1)), 2);
        assert_eq!(p.combined_order().len(), 2);
    }

    #[test]
    fn rejects_mapping_beyond_platform() {
        let g = two_task_graph();
        let m = Mapping::from_assignment(&g, &[0, 5]).unwrap();
        assert!(matches!(
            Problem::new(g, m, Platform::new(2, 2)),
            Err(ModelError::UnknownCore(_))
        ));
    }

    #[test]
    fn rejects_demands_on_unknown_bank() {
        let g = two_task_graph();
        let m = Mapping::from_assignment(&g, &[0, 1]).unwrap();
        let demands = vec![BankDemand::single(BankId(9), 1), BankDemand::new()];
        assert!(matches!(
            Problem::with_demands(g, m, Platform::new(2, 2), demands),
            Err(ModelError::UnknownBank(BankId(9)))
        ));
    }

    #[test]
    fn rejects_wrong_demand_length() {
        let g = two_task_graph();
        let m = Mapping::from_assignment(&g, &[0, 1]).unwrap();
        assert!(matches!(
            Problem::with_demands(g, m, Platform::new(2, 2), vec![BankDemand::new()]),
            Err(ModelError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn detects_cross_core_order_cycle() {
        // a -> b (dependency), but b ordered before a's core predecessor:
        // core 0 runs [x, a], core 1 runs [b, y], with edges a->b and y->x.
        // Combined relation: x<a, a<b (dep), b<y, y<x (dep) — a cycle.
        let mut g = TaskGraph::new();
        let x = g.add_task(Task::builder("x").wcet(Cycles(1)));
        let a = g.add_task(Task::builder("a").wcet(Cycles(1)));
        let b = g.add_task(Task::builder("b").wcet(Cycles(1)));
        let y = g.add_task(Task::builder("y").wcet(Cycles(1)));
        g.add_edge(a, b, 1).unwrap();
        g.add_edge(y, x, 1).unwrap();
        let m = Mapping::from_orders(&g, vec![vec![x, a], vec![b, y]]).unwrap();
        assert!(matches!(
            Problem::new(g, m, Platform::new(2, 2)),
            Err(ModelError::Cycle(_))
        ));
    }

    #[test]
    fn remap_swaps_mapping_and_rederives_demands() {
        let g = two_task_graph();
        let m = Mapping::from_assignment(&g, &[0, 1]).unwrap();
        let mut p = Problem::new(g.clone(), m, Platform::new(2, 2)).unwrap();
        // b on core 1: the edge's 2 words land in bank 1.
        assert_eq!(p.demand(TaskId(0)).get(BankId(1)), 2);

        let swapped = Mapping::from_assignment(&g, &[1, 0]).unwrap();
        p.remap(swapped, crate::BankPolicy::PerCoreBank).unwrap();
        // Now b is on core 0: the edge targets bank 0 instead.
        assert_eq!(p.demand(TaskId(0)).get(BankId(0)), 2);
        assert_eq!(p.mapping().core_of(TaskId(0)), CoreId(1));
        // The result is indistinguishable from building from scratch.
        let fresh = Problem::new(
            g.clone(),
            Mapping::from_assignment(&g, &[1, 0]).unwrap(),
            Platform::new(2, 2),
        )
        .unwrap();
        assert_eq!(p, fresh);
    }

    #[test]
    fn failed_remap_leaves_the_problem_unchanged() {
        // A cross-core ordering cycle (see detects_cross_core_order_cycle)
        // must reject the candidate without corrupting the problem.
        let mut g = TaskGraph::new();
        let x = g.add_task(Task::builder("x").wcet(Cycles(1)));
        let a = g.add_task(Task::builder("a").wcet(Cycles(1)));
        let b = g.add_task(Task::builder("b").wcet(Cycles(1)));
        let y = g.add_task(Task::builder("y").wcet(Cycles(1)));
        g.add_edge(a, b, 1).unwrap();
        g.add_edge(y, x, 1).unwrap();
        let good = Mapping::from_orders(&g, vec![vec![x, a], vec![y, b]]).unwrap();
        let mut p = Problem::new(g.clone(), good, Platform::new(2, 2)).unwrap();
        let before = p.clone();
        let cyclic = Mapping::from_orders(&g, vec![vec![x, a], vec![b, y]]).unwrap();
        assert!(matches!(
            p.remap(cyclic, crate::BankPolicy::PerCoreBank),
            Err(ModelError::Cycle(_))
        ));
        assert_eq!(p, before);
        let overflow = Mapping::from_assignment(&g, &[0, 1, 2, 3]).unwrap();
        assert!(matches!(
            p.remap(overflow, crate::BankPolicy::PerCoreBank),
            Err(ModelError::UnknownCore(_))
        ));
        assert_eq!(p, before);
    }

    #[test]
    fn combined_order_respects_core_order() {
        // Two independent tasks on one core: combined order must follow the
        // mapping order even without dependency edges.
        let mut g = TaskGraph::new();
        let a = g.add_task(Task::builder("a").wcet(Cycles(1)));
        let b = g.add_task(Task::builder("b").wcet(Cycles(1)));
        let m = Mapping::from_orders(&g, vec![vec![b, a]]).unwrap();
        let p = Problem::new(g, m, Platform::new(1, 1)).unwrap();
        assert_eq!(p.combined_order(), &[b, a]);
        assert_eq!(p.mapping().core_of(a), CoreId(0));
    }
}
