//! The output of an analysis: a static time-triggered schedule.

use serde::{Deserialize, Serialize};

use crate::{Cycles, Problem, TaskId};

/// Timing of a single task in the computed schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskTiming {
    /// Release date: the task must not start earlier, even if its inputs
    /// are ready (this is what makes the schedule time-triggered and the
    /// interference bounds composable, §II.B).
    pub release: Cycles,
    /// WCET in isolation (copied from the task for convenience).
    pub wcet: Cycles,
    /// Total interference delay the task may suffer (summed over banks).
    pub interference: Cycles,
}

impl TaskTiming {
    /// Worst-case response time: WCET plus interference (`R` in the paper).
    pub fn response_time(&self) -> Cycles {
        self.wcet + self.interference
    }

    /// Latest finish instant: release + response time.
    pub fn finish(&self) -> Cycles {
        self.release + self.response_time()
    }
}

/// A complete static schedule: one [`TaskTiming`] per task.
///
/// Produced by `mia-core` (incremental algorithm) and `mia-baseline`
/// (original fixed-point algorithm); consumed by `mia-sim` for validation
/// and by `mia-trace` for rendering.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    timings: Vec<TaskTiming>,
}

impl Schedule {
    /// Wraps per-task timings (indexed by task id) into a schedule.
    pub fn from_timings(timings: Vec<TaskTiming>) -> Self {
        Schedule { timings }
    }

    /// The timing of one task.
    ///
    /// # Panics
    ///
    /// Panics if `task` is outside the schedule.
    pub fn timing(&self, task: TaskId) -> TaskTiming {
        self.timings[task.index()]
    }

    /// All timings, indexed by task id.
    pub fn timings(&self) -> &[TaskTiming] {
        &self.timings
    }

    /// Number of scheduled tasks.
    pub fn len(&self) -> usize {
        self.timings.len()
    }

    /// True if the schedule covers no tasks.
    pub fn is_empty(&self) -> bool {
        self.timings.is_empty()
    }

    /// The global worst-case response time of the task set: the latest
    /// finish instant over all tasks (`t = 7` in the paper's Figure 1).
    pub fn makespan(&self) -> Cycles {
        self.timings
            .iter()
            .map(TaskTiming::finish)
            .max()
            .unwrap_or(Cycles::ZERO)
    }

    /// Total interference summed over all tasks.
    pub fn total_interference(&self) -> Cycles {
        self.timings.iter().map(|t| t.interference).sum()
    }

    /// Checks that the schedule is structurally sound for `problem`:
    ///
    /// * every release honours the task's minimal release date,
    /// * every release is at or after the latest finish of its dependencies,
    /// * every task with a relative deadline meets it,
    /// * tasks sharing a core do not overlap and follow the mapping order.
    ///
    /// # Errors
    ///
    /// Returns the first [`ScheduleViolation`] found, if any.
    pub fn check(&self, problem: &Problem) -> Result<(), ScheduleViolation> {
        let graph = problem.graph();
        if self.timings.len() != graph.len() {
            return Err(ScheduleViolation::WrongLength {
                expected: graph.len(),
                found: self.timings.len(),
            });
        }
        for (id, task) in graph.iter() {
            let t = self.timing(id);
            if t.release < task.min_release() {
                return Err(ScheduleViolation::ReleasedBeforeMinRelease(id));
            }
            for e in graph.predecessors(id) {
                if t.release < self.timing(e.src).finish() {
                    return Err(ScheduleViolation::ReleasedBeforeDependency {
                        task: id,
                        dependency: e.src,
                    });
                }
            }
            if let Some(deadline) = task.deadline() {
                if t.response_time() > deadline {
                    return Err(ScheduleViolation::DeadlineMissed {
                        task: id,
                        response: t.response_time(),
                        deadline,
                    });
                }
            }
        }
        for (_, order) in problem.mapping().iter() {
            for pair in order.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                if self.timing(b).release < self.timing(a).finish() {
                    return Err(ScheduleViolation::CoreOverlap {
                        first: a,
                        second: b,
                    });
                }
            }
        }
        Ok(())
    }
}

/// A violation detected by [`Schedule::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleViolation {
    /// The schedule does not cover the graph.
    WrongLength { expected: usize, found: usize },
    /// A task is released before its minimal release date.
    ReleasedBeforeMinRelease(TaskId),
    /// A task is released before one of its dependencies finishes.
    ReleasedBeforeDependency { task: TaskId, dependency: TaskId },
    /// A task's worst-case response time exceeds its relative deadline.
    DeadlineMissed {
        task: TaskId,
        response: Cycles,
        deadline: Cycles,
    },
    /// Two tasks of the same core overlap.
    CoreOverlap { first: TaskId, second: TaskId },
}

impl std::fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleViolation::WrongLength { expected, found } => {
                write!(f, "schedule covers {found} tasks, graph has {expected}")
            }
            ScheduleViolation::ReleasedBeforeMinRelease(t) => {
                write!(f, "task {t} released before its minimal release date")
            }
            ScheduleViolation::ReleasedBeforeDependency { task, dependency } => {
                write!(
                    f,
                    "task {task} released before dependency {dependency} finishes"
                )
            }
            ScheduleViolation::DeadlineMissed {
                task,
                response,
                deadline,
            } => {
                write!(
                    f,
                    "task {task} responds in {response}, past its deadline {deadline}"
                )
            }
            ScheduleViolation::CoreOverlap { first, second } => {
                write!(f, "tasks {first} and {second} overlap on their core")
            }
        }
    }
}

impl std::error::Error for ScheduleViolation {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mapping, Platform, Task, TaskGraph};

    fn timing(release: u64, wcet: u64, inter: u64) -> TaskTiming {
        TaskTiming {
            release: Cycles(release),
            wcet: Cycles(wcet),
            interference: Cycles(inter),
        }
    }

    fn tiny_problem() -> Problem {
        let mut g = TaskGraph::new();
        let a = g.add_task(Task::builder("a").wcet(Cycles(2)));
        let b = g.add_task(Task::builder("b").wcet(Cycles(3)).min_release(Cycles(1)));
        g.add_edge(a, b, 1).unwrap();
        let m = Mapping::from_assignment(&g, &[0, 0]).unwrap();
        Problem::new(g, m, Platform::new(2, 2)).unwrap()
    }

    #[test]
    fn timing_accessors() {
        let t = timing(5, 10, 3);
        assert_eq!(t.response_time(), Cycles(13));
        assert_eq!(t.finish(), Cycles(18));
    }

    #[test]
    fn makespan_is_latest_finish() {
        let s = Schedule::from_timings(vec![timing(0, 5, 0), timing(2, 10, 4)]);
        assert_eq!(s.makespan(), Cycles(16));
        assert_eq!(s.total_interference(), Cycles(4));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::from_timings(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.makespan(), Cycles::ZERO);
    }

    #[test]
    fn check_accepts_valid_schedule() {
        let p = tiny_problem();
        let s = Schedule::from_timings(vec![timing(0, 2, 0), timing(2, 3, 0)]);
        s.check(&p).unwrap();
    }

    #[test]
    fn check_rejects_min_release_violation() {
        let p = tiny_problem();
        let s = Schedule::from_timings(vec![timing(0, 2, 0), timing(0, 3, 0)]);
        assert_eq!(
            s.check(&p),
            Err(ScheduleViolation::ReleasedBeforeMinRelease(TaskId(1)))
        );
    }

    #[test]
    fn check_rejects_dependency_violation() {
        let p = tiny_problem();
        // Release 1 honours b's minimal release date but precedes a's finish.
        let s = Schedule::from_timings(vec![timing(0, 2, 0), timing(1, 3, 0)]);
        assert_eq!(
            s.check(&p),
            Err(ScheduleViolation::ReleasedBeforeDependency {
                task: TaskId(1),
                dependency: TaskId(0)
            })
        );
    }

    #[test]
    fn check_rejects_core_overlap() {
        // Two independent tasks on the same core released simultaneously.
        let mut g = TaskGraph::new();
        let _ = g.add_task(Task::builder("a").wcet(Cycles(2)));
        let _ = g.add_task(Task::builder("b").wcet(Cycles(2)));
        let m = Mapping::from_assignment(&g, &[0, 0]).unwrap();
        let p = Problem::new(g, m, Platform::new(1, 1)).unwrap();
        let s = Schedule::from_timings(vec![timing(0, 2, 0), timing(1, 2, 0)]);
        assert_eq!(
            s.check(&p),
            Err(ScheduleViolation::CoreOverlap {
                first: TaskId(0),
                second: TaskId(1)
            })
        );
    }

    #[test]
    fn check_rejects_missed_task_deadline() {
        let mut g = TaskGraph::new();
        let _ = g.add_task(Task::builder("rt").wcet(Cycles(10)).deadline(Cycles(12)));
        let m = Mapping::from_assignment(&g, &[0]).unwrap();
        let p = Problem::new(g, m, Platform::new(1, 1)).unwrap();
        // Response 10 meets the 12-cycle deadline; 13 misses it.
        let ok = Schedule::from_timings(vec![timing(0, 10, 0)]);
        ok.check(&p).unwrap();
        let bad = Schedule::from_timings(vec![timing(0, 10, 3)]);
        assert_eq!(
            bad.check(&p),
            Err(ScheduleViolation::DeadlineMissed {
                task: TaskId(0),
                response: Cycles(13),
                deadline: Cycles(12)
            })
        );
    }

    #[test]
    fn check_rejects_wrong_length() {
        let p = tiny_problem();
        let s = Schedule::from_timings(vec![timing(0, 2, 0)]);
        assert!(matches!(
            s.check(&p),
            Err(ScheduleViolation::WrongLength { .. })
        ));
    }
}
