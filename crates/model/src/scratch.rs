//! Reusable scratch buffers for the interference-accounting hot paths.
//!
//! Both analysis crates spend most of their time merging interferer
//! demands per memory bank and core before calling the arbiter's `IBUS`
//! function. Naively that merge is a fresh map plus a fresh
//! [`InterfererDemand`] vector **per task pair**, which dominates the
//! allocator at 32k–100k tasks. [`DemandMerge`] replaces those throwaway
//! structures with dense, generation-stamped buffers sized once per
//! analysis (`banks × cores` entries) and reused for every task:
//!
//! * `mia-core` keeps one `DemandMerge` per alive slot (one per core) and
//!   resets it each time the slot opens a new task,
//! * `mia-baseline` keeps one per analysis run and resets it for every
//!   interference evaluation,
//! * the parallel analysis keeps one per worker thread.
//!
//! Resetting is O(1): a generation counter is bumped and stale entries are
//! recognised by their stamp, so no buffer is ever cleared element by
//! element on the hot path.
//!
//! # Example
//!
//! ```
//! use mia_model::scratch::DemandMerge;
//! use mia_model::{BankId, CoreId};
//!
//! let mut merge = DemandMerge::new(2, 4);
//! merge.add(BankId(1), CoreId(3), 100);
//! merge.add(BankId(1), CoreId(0), 25);
//! merge.add(BankId(1), CoreId(3), 10);
//! assert_eq!(merge.get(BankId(1), CoreId(3)), 110);
//!
//! // The aggregated interferer set for a bank, in ascending core order —
//! // ready to hand to `Arbiter::bank_interference`.
//! let set = merge.bank_set(BankId(1));
//! assert_eq!(set.len(), 2);
//! assert_eq!((set[0].core, set[0].accesses), (CoreId(0), 25));
//! assert_eq!((set[1].core, set[1].accesses), (CoreId(3), 110));
//!
//! // O(1) reuse for the next task.
//! merge.reset();
//! assert_eq!(merge.get(BankId(1), CoreId(3)), 0);
//! assert!(merge.touched_banks().is_empty());
//! ```

use crate::arbiter::InterfererDemand;
use crate::{BankId, CoreId};

/// A dense per-`(bank, core)` demand accumulator with O(1) reuse.
///
/// See the [module documentation](self) for the role it plays in the
/// analyses. All entries are conceptually zero after [`DemandMerge::reset`];
/// physically, stale values are skipped via generation stamps.
#[derive(Debug, Clone)]
pub struct DemandMerge {
    banks: usize,
    cores: usize,
    generation: u32,
    /// Accumulated accesses, indexed `bank * cores + core`.
    accesses: Vec<u64>,
    /// Generation stamp per `(bank, core)` entry.
    stamp: Vec<u32>,
    /// Banks touched since the last reset, in first-touch order.
    touched: Vec<BankId>,
    /// Generation stamp per bank (deduplicates `touched`).
    bank_stamp: Vec<u32>,
    /// Reusable buffer returned by [`DemandMerge::bank_set`].
    set_buf: Vec<InterfererDemand>,
}

impl DemandMerge {
    /// Creates an accumulator for a platform with `banks` banks and
    /// `cores` cores. Allocates `banks × cores` entries once; nothing on
    /// the hot path allocates after this.
    pub fn new(banks: usize, cores: usize) -> Self {
        DemandMerge {
            banks,
            cores,
            generation: 1,
            accesses: vec![0; banks * cores],
            stamp: vec![0; banks * cores],
            touched: Vec::with_capacity(banks),
            bank_stamp: vec![0; banks],
            set_buf: Vec::with_capacity(cores),
        }
    }

    /// Number of banks this accumulator covers.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Number of cores this accumulator covers.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Forgets all accumulated demand in O(1).
    pub fn reset(&mut self) {
        self.touched.clear();
        if self.generation == u32::MAX {
            // One full clear every 2³² resets keeps the stamps sound.
            self.generation = 0;
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.bank_stamp.iter_mut().for_each(|s| *s = 0);
        }
        self.generation += 1;
    }

    #[inline]
    fn index(&self, bank: BankId, core: CoreId) -> usize {
        debug_assert!(bank.index() < self.banks, "bank {bank} out of range");
        debug_assert!(core.index() < self.cores, "core {core} out of range");
        bank.index() * self.cores + core.index()
    }

    /// Accumulates `accesses` issued by `core` into `bank`.
    ///
    /// # Panics
    ///
    /// May panic (or silently alias, in release builds the index is still
    /// bounds-checked by the slice) if `bank`/`core` exceed the geometry
    /// given to [`DemandMerge::new`].
    #[inline]
    pub fn add(&mut self, bank: BankId, core: CoreId, accesses: u64) {
        let i = self.index(bank, core);
        if self.stamp[i] == self.generation {
            self.accesses[i] += accesses;
        } else {
            self.stamp[i] = self.generation;
            self.accesses[i] = accesses;
        }
        if self.bank_stamp[bank.index()] != self.generation {
            self.bank_stamp[bank.index()] = self.generation;
            self.touched.push(bank);
        }
    }

    /// The demand accumulated for `(bank, core)` since the last reset.
    #[inline]
    pub fn get(&self, bank: BankId, core: CoreId) -> u64 {
        let i = self.index(bank, core);
        if self.stamp[i] == self.generation {
            self.accesses[i]
        } else {
            0
        }
    }

    /// Banks with at least one contribution since the last reset, in
    /// first-touch order.
    pub fn touched_banks(&self) -> &[BankId] {
        &self.touched
    }

    /// Exports every live `(bank, core, accesses)` entry — including
    /// explicitly accumulated zeros, which still mark a core as an
    /// interferer of a bank — in first-touch bank order and ascending
    /// core order within a bank. [`DemandMerge::restore`] rebuilds an
    /// indistinguishable accumulator from the result; the analysis
    /// checkpointing in `mia-core` uses the pair to freeze and thaw
    /// per-slot merge state.
    pub fn export(&self) -> Vec<(BankId, CoreId, u64)> {
        let mut out = Vec::new();
        for &bank in &self.touched {
            let row = bank.index() * self.cores;
            for core in 0..self.cores {
                if self.stamp[row + core] == self.generation {
                    out.push((bank, CoreId::from_index(core), self.accesses[row + core]));
                }
            }
        }
        out
    }

    /// Resets the accumulator and replays `entries` (as produced by
    /// [`DemandMerge::export`]) into it.
    pub fn restore(&mut self, entries: &[(BankId, CoreId, u64)]) {
        self.reset();
        for &(bank, core, accesses) in entries {
            self.add(bank, core, accesses);
        }
    }

    /// Builds the aggregated interferer set for `bank` — one
    /// [`InterfererDemand`] per contributing core, ascending by core id —
    /// into an internal reusable buffer and returns it.
    ///
    /// This is the "single big task per core" set of the paper's §II.C,
    /// in the shape [`Arbiter::bank_interference`] expects.
    ///
    /// [`Arbiter::bank_interference`]: crate::Arbiter::bank_interference
    pub fn bank_set(&mut self, bank: BankId) -> &[InterfererDemand] {
        self.set_buf.clear();
        let row = bank.index() * self.cores;
        for core in 0..self.cores {
            if self.stamp[row + core] == self.generation {
                self.set_buf.push(InterfererDemand {
                    core: CoreId::from_index(core),
                    accesses: self.accesses[row + core],
                });
            }
        }
        &self.set_buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let m = DemandMerge::new(2, 2);
        assert_eq!(m.get(BankId(0), CoreId(0)), 0);
        assert!(m.touched_banks().is_empty());
        assert_eq!(m.banks(), 2);
        assert_eq!(m.cores(), 2);
    }

    #[test]
    fn accumulates_and_resets() {
        let mut m = DemandMerge::new(4, 4);
        m.add(BankId(2), CoreId(1), 10);
        m.add(BankId(2), CoreId(1), 5);
        m.add(BankId(0), CoreId(3), 7);
        assert_eq!(m.get(BankId(2), CoreId(1)), 15);
        assert_eq!(m.get(BankId(0), CoreId(3)), 7);
        assert_eq!(m.touched_banks(), &[BankId(2), BankId(0)]);
        m.reset();
        assert_eq!(m.get(BankId(2), CoreId(1)), 0);
        assert!(m.touched_banks().is_empty());
        m.add(BankId(2), CoreId(1), 1);
        assert_eq!(m.get(BankId(2), CoreId(1)), 1);
    }

    #[test]
    fn bank_set_is_core_ascending() {
        let mut m = DemandMerge::new(1, 8);
        m.add(BankId(0), CoreId(5), 50);
        m.add(BankId(0), CoreId(2), 20);
        m.add(BankId(0), CoreId(7), 70);
        let set: Vec<(CoreId, u64)> = m
            .bank_set(BankId(0))
            .iter()
            .map(|d| (d.core, d.accesses))
            .collect();
        assert_eq!(set, vec![(CoreId(2), 20), (CoreId(5), 50), (CoreId(7), 70)]);
        assert!(m.bank_set(BankId(0)).len() == 3);
    }

    #[test]
    fn export_restore_round_trips_including_stamped_zeros() {
        let mut m = DemandMerge::new(3, 4);
        m.add(BankId(2), CoreId(3), 9);
        m.add(BankId(0), CoreId(1), 0); // a zero still marks an interferer
        m.add(BankId(2), CoreId(0), 4);
        let exported = m.export();
        assert_eq!(
            exported,
            vec![
                (BankId(2), CoreId(0), 4),
                (BankId(2), CoreId(3), 9),
                (BankId(0), CoreId(1), 0),
            ]
        );
        let mut copy = DemandMerge::new(3, 4);
        copy.restore(&exported);
        assert_eq!(copy.touched_banks(), m.touched_banks());
        for bank in 0..3 {
            let bank = BankId(bank);
            // bank_set includes stamped zeros, so interferer sets (and
            // hence arbiter inputs) must match entry for entry.
            assert_eq!(copy.bank_set(bank).to_vec(), {
                let mut orig = DemandMerge::new(3, 4);
                orig.restore(&exported);
                orig.bank_set(bank).to_vec()
            });
            for core in 0..4 {
                assert_eq!(
                    copy.get(bank, CoreId::from_index(core)),
                    m.get(bank, CoreId::from_index(core))
                );
            }
        }
        assert_eq!(copy.bank_set(BankId(0)).len(), 1);
    }

    #[test]
    fn many_resets_stay_sound() {
        let mut m = DemandMerge::new(1, 1);
        for round in 0..10_000u64 {
            m.add(BankId(0), CoreId(0), round);
            assert_eq!(m.get(BankId(0), CoreId(0)), round);
            m.reset();
            assert_eq!(m.get(BankId(0), CoreId(0)), 0);
        }
    }
}
