//! A structure-of-arrays compaction of the task graph for analysis hot
//! loops.
//!
//! [`TaskGraph`] stores rich [`Task`](crate::Task) records (name, demand
//! map, deadline, …) plus edge lists behind two levels of indirection
//! (`Vec<EdgeId>` per task into a shared `Vec<Edge>`). That layout is
//! right for construction and editing, but the cursor driver of the
//! incremental analysis touches only three fields — WCET, minimal release
//! date, successor ids — once per task per run, and at 10⁶ tasks the
//! pointer-chasing and the cold `Task` cache lines dominate the loop.
//!
//! [`TaskTable`] flattens exactly those fields: dense per-task arrays for
//! WCET and minimal release, and the successor lists compacted into a
//! single CSR (offsets + targets) pair so a task's successors are one
//! contiguous slice. It is built once per analysis run in `O(n + e)` and
//! is immutable afterwards, so engines and worker pools can share it
//! freely.

use crate::{Cycles, TaskGraph, TaskId};

/// Dense, read-only per-task columns of a [`TaskGraph`]: the fields the
/// analysis cursor reads once per task, laid out for sequential access.
/// See the module documentation in `table.rs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskTable {
    /// WCET per task, indexed by task id.
    wcet: Vec<Cycles>,
    /// Minimal release date per task, indexed by task id.
    min_release: Vec<Cycles>,
    /// CSR offsets into `succ_targets`; length `n + 1`.
    succ_offsets: Vec<u32>,
    /// Successor task ids, grouped by source task in edge-insertion
    /// order (matching [`TaskGraph::successors`]).
    succ_targets: Vec<TaskId>,
}

impl TaskTable {
    /// Compacts `graph` into dense columns; `O(n + e)`.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than `u32::MAX` edges (such a graph
    /// cannot be built in memory anyway).
    pub fn new(graph: &TaskGraph) -> Self {
        let n = graph.len();
        let e = graph.edge_count();
        assert!(
            u32::try_from(e).is_ok(),
            "task graph exceeds u32 edge capacity"
        );
        let mut wcet = Vec::with_capacity(n);
        let mut min_release = Vec::with_capacity(n);
        let mut succ_offsets = Vec::with_capacity(n + 1);
        let mut succ_targets = Vec::with_capacity(e);
        succ_offsets.push(0);
        for (id, task) in graph.iter() {
            wcet.push(task.wcet());
            min_release.push(task.min_release());
            succ_targets.extend(graph.successors(id).map(|edge| edge.dst));
            succ_offsets.push(succ_targets.len() as u32);
        }
        TaskTable {
            wcet,
            min_release,
            succ_offsets,
            succ_targets,
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.wcet.len()
    }

    /// True when the table covers no tasks.
    pub fn is_empty(&self) -> bool {
        self.wcet.is_empty()
    }

    /// The WCET of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    #[inline]
    pub fn wcet(&self, task: TaskId) -> Cycles {
        self.wcet[task.index()]
    }

    /// The minimal release date of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    #[inline]
    pub fn min_release(&self, task: TaskId) -> Cycles {
        self.min_release[task.index()]
    }

    /// The successors of `task` as one contiguous slice, in the same
    /// order as [`TaskGraph::successors`].
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    #[inline]
    pub fn successors(&self, task: TaskId) -> &[TaskId] {
        let lo = self.succ_offsets[task.index()] as usize;
        let hi = self.succ_offsets[task.index() + 1] as usize;
        &self.succ_targets[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Task;

    fn diamond() -> TaskGraph {
        let mut g = TaskGraph::new();
        let a = g.add_task(Task::builder("a").wcet(Cycles(3)));
        let b = g.add_task(Task::builder("b").wcet(Cycles(5)).min_release(Cycles(2)));
        let c = g.add_task(Task::builder("c").wcet(Cycles(7)));
        let d = g.add_task(Task::builder("d").wcet(Cycles(11)));
        g.add_edge(a, b, 1).unwrap();
        g.add_edge(a, c, 1).unwrap();
        g.add_edge(b, d, 1).unwrap();
        g.add_edge(c, d, 1).unwrap();
        g
    }

    #[test]
    fn columns_match_the_graph() {
        let g = diamond();
        let t = TaskTable::new(&g);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        for (id, task) in g.iter() {
            assert_eq!(t.wcet(id), task.wcet());
            assert_eq!(t.min_release(id), task.min_release());
            let from_graph: Vec<TaskId> = g.successors(id).map(|e| e.dst).collect();
            assert_eq!(t.successors(id), from_graph.as_slice());
        }
    }

    #[test]
    fn empty_graph_yields_empty_table() {
        let t = TaskTable::new(&TaskGraph::new());
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn successor_order_is_insertion_order() {
        let mut g = TaskGraph::new();
        let a = g.add_task(Task::builder("a"));
        let z = g.add_task(Task::builder("z"));
        let m = g.add_task(Task::builder("m"));
        g.add_edge(a, z, 1).unwrap();
        g.add_edge(a, m, 1).unwrap();
        let t = TaskTable::new(&g);
        assert_eq!(t.successors(a), &[z, m]);
        assert_eq!(t.successors(z), &[] as &[TaskId]);
    }
}
