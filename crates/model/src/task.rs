//! Tasks: the nodes of the dependency graph.

use serde::{Deserialize, Serialize};

use crate::{BankDemand, Cycles};

/// A task (a node of the [`TaskGraph`](crate::TaskGraph)).
///
/// A task carries the inputs the paper's analysis needs:
///
/// * its **WCET in isolation** (as produced by a static analyser such as
///   OTAWA, or by this workspace's `mia-wcet` substitute),
/// * its **minimal release date** (`min_rel` in the paper): the task must
///   not start before this instant even if all dependencies complete
///   earlier,
/// * its **private memory demand**: accesses that are not derived from
///   graph edges (e.g. local data or code fetches), expressed per bank.
///
/// The accesses implied by dependency edges (reading inputs, writing
/// outputs) are added separately by [`derive_demands`](crate::derive_demands)
/// so that the same graph can be analysed under different bank policies.
///
/// # Example
///
/// ```
/// use mia_model::{Cycles, Task};
///
/// let t = Task::builder("fir_filter")
///     .wcet(Cycles(600))
///     .min_release(Cycles(4))
///     .build();
/// assert_eq!(t.wcet(), Cycles(600));
/// assert_eq!(t.min_release(), Cycles(4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Task {
    name: String,
    wcet: Cycles,
    min_release: Cycles,
    #[serde(default)]
    deadline: Option<Cycles>,
    private_demand: BankDemand,
}

impl Task {
    /// Starts building a task with the given human-readable name.
    pub fn builder(name: impl Into<String>) -> TaskBuilder {
        TaskBuilder {
            task: Task {
                name: name.into(),
                wcet: Cycles::ZERO,
                min_release: Cycles::ZERO,
                deadline: None,
                private_demand: BankDemand::new(),
            },
        }
    }

    /// The task's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The task's worst-case execution time in isolation.
    pub fn wcet(&self) -> Cycles {
        self.wcet
    }

    /// The earliest instant at which the task may be released.
    pub fn min_release(&self) -> Cycles {
        self.min_release
    }

    /// The task's relative deadline, if any: its worst-case response time
    /// (release to finish) must not exceed this bound for the schedule to
    /// be feasible.
    pub fn deadline(&self) -> Option<Cycles> {
        self.deadline
    }

    /// Memory accesses of the task that are not derived from graph edges.
    pub fn private_demand(&self) -> &BankDemand {
        &self.private_demand
    }

    /// Overwrites the WCET (used by front-ends that refine estimates).
    pub fn set_wcet(&mut self, wcet: Cycles) {
        self.wcet = wcet;
    }

    /// Overwrites the minimal release date.
    pub fn set_min_release(&mut self, min_release: Cycles) {
        self.min_release = min_release;
    }

    /// Overwrites the relative deadline.
    pub fn set_deadline(&mut self, deadline: Option<Cycles>) {
        self.deadline = deadline;
    }

    /// Mutable access to the private demand vector.
    pub fn private_demand_mut(&mut self) -> &mut BankDemand {
        &mut self.private_demand
    }
}

/// Builder for [`Task`] values (see [`Task::builder`]).
#[derive(Debug, Clone)]
pub struct TaskBuilder {
    task: Task,
}

impl TaskBuilder {
    /// Sets the worst-case execution time in isolation.
    pub fn wcet(mut self, wcet: Cycles) -> Self {
        self.task.wcet = wcet;
        self
    }

    /// Sets the minimal release date (defaults to 0).
    pub fn min_release(mut self, min_release: Cycles) -> Self {
        self.task.min_release = min_release;
        self
    }

    /// Sets a relative deadline on the response time.
    pub fn deadline(mut self, deadline: Cycles) -> Self {
        self.task.deadline = Some(deadline);
        self
    }

    /// Sets the private (non-edge) memory demand.
    pub fn private_demand(mut self, demand: BankDemand) -> Self {
        self.task.private_demand = demand;
        self
    }

    /// Finishes building the task.
    pub fn build(self) -> Task {
        self.task
    }
}

impl From<TaskBuilder> for Task {
    fn from(b: TaskBuilder) -> Task {
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BankId;

    #[test]
    fn builder_defaults() {
        let t = Task::builder("t").build();
        assert_eq!(t.name(), "t");
        assert_eq!(t.wcet(), Cycles::ZERO);
        assert_eq!(t.min_release(), Cycles::ZERO);
        assert!(t.private_demand().is_empty());
    }

    #[test]
    fn builder_sets_all_fields() {
        let mut d = BankDemand::new();
        d.add(BankId(2), 40);
        let t = Task::builder("dsp")
            .wcet(Cycles(100))
            .min_release(Cycles(7))
            .private_demand(d.clone())
            .build();
        assert_eq!(t.wcet(), Cycles(100));
        assert_eq!(t.min_release(), Cycles(7));
        assert_eq!(t.private_demand(), &d);
    }

    #[test]
    fn setters_update() {
        let mut t = Task::builder("t").build();
        t.set_wcet(Cycles(5));
        t.set_min_release(Cycles(2));
        t.private_demand_mut().add(BankId(0), 3);
        assert_eq!(t.wcet(), Cycles(5));
        assert_eq!(t.min_release(), Cycles(2));
        assert_eq!(t.private_demand().get(BankId(0)), 3);
    }

    #[test]
    fn deadline_round_trips() {
        let t = Task::builder("rt")
            .wcet(Cycles(10))
            .deadline(Cycles(25))
            .build();
        assert_eq!(t.deadline(), Some(Cycles(25)));
        let mut t2 = Task::builder("free").build();
        assert_eq!(t2.deadline(), None);
        t2.set_deadline(Some(Cycles(5)));
        assert_eq!(t2.deadline(), Some(Cycles(5)));
    }

    #[test]
    fn builder_into_task() {
        let t: Task = Task::builder("x").wcet(Cycles(1)).into();
        assert_eq!(t.wcet(), Cycles(1));
    }
}
