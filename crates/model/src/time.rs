//! Discrete time measured in processor cycles.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A duration or instant measured in processor clock cycles.
///
/// All analyses in this workspace work in integer cycles, like the paper's
/// examples (a memory word access takes one cycle on the reference
/// platform). The newtype prevents accidental mixing with unrelated `u64`
/// quantities such as access counts.
///
/// Arithmetic panics on overflow in debug builds (standard integer
/// semantics); analyses that may legitimately saturate use
/// [`Cycles::saturating_sub`].
///
/// # Example
///
/// ```
/// use mia_model::Cycles;
///
/// let wcet = Cycles(600);
/// let interference = Cycles(32);
/// assert_eq!(wcet + interference, Cycles(632));
/// assert_eq!((wcet + interference).as_u64(), 632);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Cycles(pub u64);

impl Cycles {
    /// The zero duration.
    pub const ZERO: Cycles = Cycles(0);
    /// The maximal representable instant, used as "+infinity" by the
    /// incremental algorithm's cursor.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Returns the raw cycle count.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Subtraction clamped at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Addition clamped at [`Cycles::MAX`].
    #[inline]
    pub fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }

    /// Returns the larger of two durations.
    #[inline]
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }

    /// Returns the smaller of two durations.
    #[inline]
    pub fn min(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.min(rhs.0))
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Cycles::MAX {
            write!(f, "+inf")
        } else {
            write!(f, "{}cy", self.0)
        }
    }
}

impl From<u64> for Cycles {
    fn from(v: u64) -> Self {
        Cycles(v)
    }
}

impl From<Cycles> for u64 {
    fn from(c: Cycles) -> u64 {
        c.0
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl MulAssign<u64> for Cycles {
    #[inline]
    fn mul_assign(&mut self, rhs: u64) {
        self.0 *= rhs;
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Cycles> for Cycles {
    fn sum<I: Iterator<Item = &'a Cycles>>(iter: I) -> Cycles {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(Cycles(3) + Cycles(4), Cycles(7));
        assert_eq!(Cycles(10) - Cycles(4), Cycles(6));
        assert_eq!(Cycles(5) * 3, Cycles(15));
        assert_eq!(Cycles(15) / 3, Cycles(5));
        let mut c = Cycles(1);
        c += Cycles(2);
        c -= Cycles(1);
        c *= 10;
        assert_eq!(c, Cycles(20));
    }

    #[test]
    fn saturating() {
        assert_eq!(Cycles(3).saturating_sub(Cycles(10)), Cycles::ZERO);
        assert_eq!(Cycles::MAX.saturating_add(Cycles(1)), Cycles::MAX);
    }

    #[test]
    fn min_max() {
        assert_eq!(Cycles(3).max(Cycles(9)), Cycles(9));
        assert_eq!(Cycles(3).min(Cycles(9)), Cycles(3));
    }

    #[test]
    fn sum_of_iterator() {
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].iter().sum();
        assert_eq!(total, Cycles(6));
        let total: Cycles = vec![Cycles(4), Cycles(5)].into_iter().sum();
        assert_eq!(total, Cycles(9));
    }

    #[test]
    fn display() {
        assert_eq!(Cycles(12).to_string(), "12cy");
        assert_eq!(Cycles::MAX.to_string(), "+inf");
    }

    #[test]
    fn conversions() {
        assert_eq!(Cycles::from(9u64), Cycles(9));
        assert_eq!(u64::from(Cycles(9)), 9);
    }
}
