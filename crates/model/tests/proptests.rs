//! Property-based tests for the model crate's core data structures.

use mia_model::{BankDemand, BankId, Cycles, Mapping, Platform, Problem, Task, TaskGraph};
use proptest::prelude::*;

/// Strategy: an arbitrary DAG built by only adding forward edges
/// (src < dst in insertion order), which guarantees acyclicity.
fn arb_dag(max_tasks: usize) -> impl Strategy<Value = TaskGraph> {
    (2..=max_tasks)
        .prop_flat_map(|n| {
            let edges = proptest::collection::vec(
                (0..n, 0..n, 1u64..50).prop_filter_map("forward edge", |(a, b, w)| {
                    if a < b {
                        Some((a, b, w))
                    } else {
                        None
                    }
                }),
                0..(n * 2),
            );
            let wcets = proptest::collection::vec(1u64..1000, n);
            (Just(n), edges, wcets)
        })
        .prop_map(|(n, edges, wcets)| {
            let mut g = TaskGraph::with_capacity(n);
            let ids: Vec<_> = (0..n)
                .map(|i| g.add_task(Task::builder(format!("t{i}")).wcet(Cycles(wcets[i]))))
                .collect();
            for (a, b, w) in edges {
                // Duplicate edges are rejected; ignore those.
                let _ = g.add_edge(ids[a], ids[b], w);
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topological_order_is_a_permutation_respecting_edges(g in arb_dag(40)) {
        let order = g.topological_order().unwrap();
        prop_assert_eq!(order.len(), g.len());
        let mut pos = vec![usize::MAX; g.len()];
        for (i, t) in order.iter().enumerate() {
            prop_assert_eq!(pos[t.index()], usize::MAX, "duplicate in order");
            pos[t.index()] = i;
        }
        for e in g.edges() {
            prop_assert!(pos[e.src.index()] < pos[e.dst.index()]);
        }
    }

    #[test]
    fn layers_strictly_increase_along_edges(g in arb_dag(40)) {
        let layers = g.layers().unwrap();
        for e in g.edges() {
            prop_assert!(layers[e.src.index()] < layers[e.dst.index()]);
        }
    }

    #[test]
    fn critical_path_bounds(g in arb_dag(30)) {
        let cp = g.critical_path().unwrap();
        let max_wcet = g.iter().map(|(_, t)| t.wcet()).max().unwrap();
        prop_assert!(cp >= max_wcet);
        prop_assert!(cp <= g.total_wcet());
    }

    #[test]
    fn bank_demand_merge_is_commutative_and_total_adds(
        pairs1 in proptest::collection::vec((0u32..8, 1u64..100), 0..10),
        pairs2 in proptest::collection::vec((0u32..8, 1u64..100), 0..10),
    ) {
        let d1: BankDemand = pairs1.iter().map(|&(b, n)| (BankId(b), n)).collect();
        let d2: BankDemand = pairs2.iter().map(|&(b, n)| (BankId(b), n)).collect();
        let mut m1 = d1.clone();
        m1.merge(&d2);
        let mut m2 = d2.clone();
        m2.merge(&d1);
        prop_assert_eq!(&m1, &m2);
        prop_assert_eq!(m1.total(), d1.total() + d2.total());
    }

    #[test]
    fn bank_demand_iteration_is_sorted_and_positive(
        pairs in proptest::collection::vec((0u32..32, 0u64..100), 0..20),
    ) {
        let d: BankDemand = pairs.iter().map(|&(b, n)| (BankId(b), n)).collect();
        let banks: Vec<BankId> = d.banks().collect();
        let mut sorted = banks.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(&banks, &sorted);
        for (_, n) in d.iter() {
            prop_assert!(n > 0);
        }
    }

    #[test]
    fn round_robin_mapping_always_validates(g in arb_dag(40), cores in 1u32..16) {
        let assignment: Vec<u32> = (0..g.len() as u32).map(|i| i % cores).collect();
        let m = Mapping::from_assignment(&g, &assignment).unwrap();
        m.validate(&g).unwrap();
        // from_assignment orders by task id, which is consistent with the
        // forward-edge DAG, so the combined relation must be acyclic.
        let p = Problem::new(g, m, Platform::new(16, 16)).unwrap();
        prop_assert_eq!(p.combined_order().len(), p.len());
    }

    #[test]
    fn problem_demands_cover_edge_words(g in arb_dag(30)) {
        let assignment: Vec<u32> = (0..g.len() as u32).map(|i| i % 4).collect();
        let m = Mapping::from_assignment(&g, &assignment).unwrap();
        let p = Problem::new(g, m, Platform::new(4, 4)).unwrap();
        // Every edge contributes its words twice (producer write + consumer read).
        let total_words: u64 = p.graph().edges().iter().map(|e| e.words).sum();
        let total_demand: u64 = p.demands().iter().map(BankDemand::total).sum();
        prop_assert_eq!(total_demand, 2 * total_words);
    }

    #[test]
    fn serde_round_trip_graph(g in arb_dag(15)) {
        let json = serde_json::to_string(&g).unwrap();
        let back: TaskGraph = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, g);
    }
}
