//! The response-time fixed point with memory interference.

use std::collections::BTreeMap;

use mia_model::arbiter::{Arbiter, InterfererDemand};
use mia_model::{BankId, CoreId, Cycles};

use crate::SporadicSystem;

/// Options controlling an MRTA run.
#[derive(Debug, Clone)]
pub struct MrtaOptions {
    /// Include remote-core memory interference. Disabling it yields the
    /// classic single-core response-time analysis, useful to quantify how
    /// much of each response time is due to the shared memory.
    pub memory_interference: bool,
    /// Safety bound on fixed-point iterations per task; the iteration is
    /// monotone so this only triggers on absurd inputs.
    pub max_iterations: usize,
}

impl Default for MrtaOptions {
    fn default() -> Self {
        MrtaOptions {
            memory_interference: true,
            max_iterations: 1_000_000,
        }
    }
}

impl MrtaOptions {
    /// Default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables remote-core memory interference.
    pub fn memory_interference(mut self, on: bool) -> Self {
        self.memory_interference = on;
        self
    }

    /// Sets the per-task iteration bound.
    pub fn max_iterations(mut self, bound: usize) -> Self {
        self.max_iterations = bound;
        self
    }
}

/// Outcome of the analysis for one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskVerdict {
    /// The response-time bound found. When the task is unschedulable this
    /// is the value that first crossed the deadline (a certificate, not a
    /// bound).
    pub response: Cycles,
    /// Of which: preemption delay by higher-priority same-core tasks.
    pub cpu_interference: Cycles,
    /// Of which: memory interference from remote cores.
    pub memory_interference: Cycles,
    /// Whether `response + jitter ≤ deadline`.
    pub schedulable: bool,
    /// Fixed-point iterations used.
    pub iterations: usize,
}

/// Work counters of an analysis run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MrtaStats {
    /// Total fixed-point iterations over all tasks.
    pub iterations: usize,
    /// Calls to the arbiter's `IBUS` function.
    pub ibus_calls: usize,
}

/// Result of [`analyze`] / [`analyze_with`]: one verdict per task.
#[derive(Debug, Clone)]
pub struct MrtaReport {
    verdicts: Vec<TaskVerdict>,
    stats: MrtaStats,
}

impl MrtaReport {
    /// Verdicts in task declaration order.
    pub fn verdicts(&self) -> &[TaskVerdict] {
        &self.verdicts
    }

    /// The verdict of one task.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn verdict(&self, task: usize) -> TaskVerdict {
        self.verdicts[task]
    }

    /// The response-time bound of one task.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn response(&self, task: usize) -> Cycles {
        self.verdicts[task].response
    }

    /// True if every task meets its deadline.
    pub fn schedulable(&self) -> bool {
        self.verdicts.iter().all(|v| v.schedulable)
    }

    /// Indices of the tasks that miss their deadline.
    pub fn failing_tasks(&self) -> impl Iterator<Item = usize> + '_ {
        self.verdicts
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.schedulable)
            .map(|(i, _)| i)
    }

    /// Work counters of the run.
    pub fn stats(&self) -> MrtaStats {
        self.stats
    }
}

/// Analyses a system with default options.
///
/// Each task's verdict is independent: an unschedulable task does not stop
/// the analysis of the others, so the report always covers the whole set.
///
/// # Example
///
/// See the [crate-level documentation](crate).
pub fn analyze<A>(system: &SporadicSystem, arbiter: &A) -> MrtaReport
where
    A: Arbiter + ?Sized,
{
    analyze_with(system, arbiter, &MrtaOptions::default())
}

/// Analyses a system with explicit options.
///
/// For each task the classic fixed point runs on
/// `R = C + preemption(R) + memory(R)`; the iteration starts at `C` and is
/// monotone, and stops as soon as `R + J` crosses the deadline (the task —
/// not the run — is then flagged unschedulable).
pub fn analyze_with<A>(system: &SporadicSystem, arbiter: &A, options: &MrtaOptions) -> MrtaReport
where
    A: Arbiter + ?Sized,
{
    let mut stats = MrtaStats::default();
    let verdicts = (0..system.len())
        .map(|i| response_time(system, arbiter, options, i, &mut stats))
        .collect();
    MrtaReport { verdicts, stats }
}

fn response_time<A>(
    system: &SporadicSystem,
    arbiter: &A,
    options: &MrtaOptions,
    i: usize,
    stats: &mut MrtaStats,
) -> TaskVerdict
where
    A: Arbiter + ?Sized,
{
    let task = &system.tasks()[i];
    let core = system.core_of(i);
    let access = system.platform().access_cycles();
    let deadline_budget = task.deadline().saturating_sub(task.jitter());

    let hp: Vec<usize> = system.higher_priority_same_core(i).collect();
    let mut response = task.wcet();
    let mut iterations = 0usize;

    loop {
        iterations += 1;
        stats.iterations += 1;

        // Preemption by higher-priority same-core tasks within the window.
        let mut cpu = Cycles::ZERO;
        for &j in &hp {
            let other = &system.tasks()[j];
            cpu += other.wcet() * other.jobs_in(response);
        }

        // Memory interference: the busy window's demand on each bank (the
        // victim job plus its preemptors, merged — the same "single big
        // task" conservatism as §II.C of the DATE paper) is priced by the
        // arbiter against the per-core aggregated remote demands.
        let mut mem = Cycles::ZERO;
        if options.memory_interference {
            let mut window_demand: BTreeMap<BankId, u64> = BTreeMap::new();
            for (bank, d) in task.demand().iter() {
                *window_demand.entry(bank).or_insert(0) += d;
            }
            for &j in &hp {
                let other = &system.tasks()[j];
                let jobs = other.jobs_in(response);
                for (bank, d) in other.demand().iter() {
                    *window_demand.entry(bank).or_insert(0) += d * jobs;
                }
            }
            for (&bank, &demand) in &window_demand {
                if demand == 0 {
                    continue;
                }
                let mut remote: BTreeMap<CoreId, u64> = BTreeMap::new();
                for c in 0..system.platform().cores() {
                    let other_core = CoreId::from_index(c);
                    if other_core == core {
                        continue;
                    }
                    let mut total = 0u64;
                    for j in system.tasks_on(other_core) {
                        let other = &system.tasks()[j];
                        // Remote cores are not synchronised with this busy
                        // window: one *carry-in* job (released before the
                        // window, still running inside it) can contribute
                        // on top of the in-window releases. Constrained
                        // deadlines bound the carry-in to a single job.
                        total += other.demand().get(bank) * (1 + other.jobs_in(response));
                    }
                    if total > 0 {
                        remote.insert(other_core, total);
                    }
                }
                if remote.is_empty() {
                    continue;
                }
                let set: Vec<InterfererDemand> = remote
                    .iter()
                    .map(|(&core, &accesses)| InterfererDemand { core, accesses })
                    .collect();
                mem += arbiter.bank_interference(core, demand, &set, access);
                stats.ibus_calls += 1;
            }
        }

        let next = task.wcet() + cpu + mem;
        if next == response {
            return TaskVerdict {
                response,
                cpu_interference: cpu,
                memory_interference: mem,
                schedulable: response <= deadline_budget,
                iterations,
            };
        }
        if next > deadline_budget || iterations >= options.max_iterations {
            return TaskVerdict {
                response: next,
                cpu_interference: cpu,
                memory_interference: mem,
                schedulable: false,
                iterations,
            };
        }
        response = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SporadicSystem, SporadicTask};
    use mia_model::{BankDemand, Platform};

    /// Flat round-robin, additive — the §II.A bound.
    struct Rr;

    impl Arbiter for Rr {
        fn name(&self) -> &str {
            "rr-test"
        }

        fn bank_interference(
            &self,
            _victim: CoreId,
            demand: u64,
            interferers: &[InterfererDemand],
            access_cycles: Cycles,
        ) -> Cycles {
            access_cycles
                * interferers
                    .iter()
                    .map(|i| demand.min(i.accesses))
                    .sum::<u64>()
        }

        fn is_additive(&self) -> bool {
            true
        }
    }

    fn task(name: &str, wcet: u64, period: u64) -> SporadicTask {
        SporadicTask::builder(name)
            .wcet(Cycles(wcet))
            .period(Cycles(period))
            .build()
            .unwrap()
    }

    #[test]
    fn single_task_response_is_wcet() {
        let s = SporadicSystem::new(vec![task("a", 7, 100)], &[0], Platform::new(1, 1)).unwrap();
        let r = analyze(&s, &Rr);
        assert!(r.schedulable());
        assert_eq!(r.response(0), Cycles(7));
        assert_eq!(r.verdict(0).iterations, 1);
    }

    #[test]
    fn textbook_three_task_rta() {
        // The classic example: C = {3, 3, 5}, T = D = {7, 12, 20} on one
        // core under deadline-monotonic priorities → R = {3, 6, 20}.
        let tasks = vec![task("t1", 3, 7), task("t2", 3, 12), task("t3", 5, 20)];
        let s = SporadicSystem::new(tasks, &[0, 0, 0], Platform::new(1, 1)).unwrap();
        let r = analyze(&s, &Rr);
        assert!(r.schedulable());
        assert_eq!(r.response(0), Cycles(3));
        assert_eq!(r.response(1), Cycles(6));
        assert_eq!(r.response(2), Cycles(20));
    }

    #[test]
    fn cpu_overload_is_unschedulable() {
        // Two tasks each needing 6 of every 10 cycles on one core.
        let tasks = vec![task("a", 6, 10), task("b", 6, 10)];
        let s = SporadicSystem::new(tasks, &[0, 0], Platform::new(1, 1)).unwrap();
        let r = analyze(&s, &Rr);
        assert!(!r.schedulable());
        // The higher-priority task is fine; the lower one fails.
        assert!(r.verdict(0).schedulable);
        assert!(!r.verdict(1).schedulable);
        assert_eq!(r.failing_tasks().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn memory_interference_round_robin() {
        // Crate-level doc example, spelled out: two cores, one task each,
        // both hitting bank 0. Each suffers min(own, other) stalls.
        let a = SporadicTask::builder("a")
            .wcet(Cycles(10))
            .period(Cycles(100))
            .demand(BankDemand::single(BankId(0), 4))
            .build()
            .unwrap();
        let b = SporadicTask::builder("b")
            .wcet(Cycles(10))
            .period(Cycles(100))
            .demand(BankDemand::single(BankId(0), 6))
            .build()
            .unwrap();
        let s = SporadicSystem::new(vec![a, b], &[0, 1], Platform::new(2, 2)).unwrap();
        let r = analyze(&s, &Rr);
        // "a" is capped by its own 4 accesses; "b" by its own 6 (the
        // remote budget — one carry-in job plus one in-window job of the
        // opponent — exceeds both).
        assert_eq!(r.response(0), Cycles(14));
        assert_eq!(r.response(1), Cycles(16));
        assert_eq!(r.verdict(0).memory_interference, Cycles(4));
        assert_eq!(r.verdict(1).memory_interference, Cycles(6));
        assert_eq!(r.verdict(0).cpu_interference, Cycles::ZERO);
    }

    #[test]
    fn disabling_memory_interference_recovers_classic_rta() {
        let a = SporadicTask::builder("a")
            .wcet(Cycles(10))
            .period(Cycles(100))
            .demand(BankDemand::single(BankId(0), 4))
            .build()
            .unwrap();
        let b = SporadicTask::builder("b")
            .wcet(Cycles(10))
            .period(Cycles(100))
            .demand(BankDemand::single(BankId(0), 6))
            .build()
            .unwrap();
        let s = SporadicSystem::new(vec![a, b], &[0, 1], Platform::new(2, 2)).unwrap();
        let r = analyze_with(&s, &Rr, &MrtaOptions::new().memory_interference(false));
        assert_eq!(r.response(0), Cycles(10));
        assert_eq!(r.response(1), Cycles(10));
    }

    #[test]
    fn remote_jobs_scale_with_window() {
        // The victim's window is long enough for several remote jobs; the
        // remote demand must be multiplied by the job count.
        let victim = SporadicTask::builder("victim")
            .wcet(Cycles(50))
            .period(Cycles(1000))
            .demand(BankDemand::single(BankId(0), 30))
            .build()
            .unwrap();
        let chatter = SporadicTask::builder("chatter")
            .wcet(Cycles(2))
            .period(Cycles(10))
            .demand(BankDemand::single(BankId(0), 2))
            .build()
            .unwrap();
        let s = SporadicSystem::new(vec![victim, chatter], &[0, 1], Platform::new(2, 2)).unwrap();
        let r = analyze(&s, &Rr);
        // Fixed point: R = 50 + min(30, 2·(1 + ⌈R/10⌉)) with the carry-in
        // job included. At R = 66: remote = 2·(1+7) = 16 → R = 50 +
        // min(30, 16) = 66. ✓
        assert_eq!(r.response(0), Cycles(66));
        assert!(r.verdict(0).memory_interference > Cycles::ZERO);
    }

    #[test]
    fn memory_overload_is_unschedulable() {
        let a = SporadicTask::builder("a")
            .wcet(Cycles(8))
            .period(Cycles(10))
            .demand(BankDemand::single(BankId(0), 8))
            .build()
            .unwrap();
        let b = SporadicTask::builder("b")
            .wcet(Cycles(8))
            .period(Cycles(10))
            .demand(BankDemand::single(BankId(0), 8))
            .build()
            .unwrap();
        let s = SporadicSystem::new(vec![a, b], &[0, 1], Platform::new(2, 2)).unwrap();
        let r = analyze(&s, &Rr);
        // R = 8 + min(8, 8) = 16 > 10 on both cores.
        assert!(!r.schedulable());
        assert_eq!(r.failing_tasks().count(), 2);
    }

    #[test]
    fn jitter_tightens_the_deadline_budget() {
        let mut t = SporadicTask::builder("t")
            .wcet(Cycles(8))
            .period(Cycles(10))
            .build()
            .unwrap();
        let s = SporadicSystem::new(vec![t.clone()], &[0], Platform::new(1, 1)).unwrap();
        assert!(analyze(&s, &Rr).schedulable());
        // With 3 cycles of jitter the budget shrinks to 7 < 8.
        t = SporadicTask::builder("t")
            .wcet(Cycles(8))
            .period(Cycles(10))
            .jitter(Cycles(3))
            .build()
            .unwrap();
        let s = SporadicSystem::new(vec![t], &[0], Platform::new(1, 1)).unwrap();
        assert!(!analyze(&s, &Rr).schedulable());
    }

    #[test]
    fn hp_jitter_pulls_extra_jobs_into_the_window() {
        // hp: C=2, T=10, J=5. lp: C=7. Window 9 + jitter 5 = 14 → 2 hp
        // jobs → R_lp = 7 + 4 = 11 → window 16 → still 2 jobs → 11. ✓
        let hp = SporadicTask::builder("hp")
            .wcet(Cycles(2))
            .period(Cycles(10))
            .deadline(Cycles(5))
            .jitter(Cycles(5))
            .build()
            .unwrap();
        let lp = SporadicTask::builder("lp")
            .wcet(Cycles(7))
            .period(Cycles(40))
            .build()
            .unwrap();
        let s = SporadicSystem::new(vec![hp, lp], &[0, 0], Platform::new(1, 1)).unwrap();
        let r = analyze(&s, &Rr);
        assert_eq!(r.response(1), Cycles(11));
    }

    #[test]
    fn empty_system_report() {
        let s = SporadicSystem::new(vec![], &[], Platform::new(1, 1)).unwrap();
        let r = analyze(&s, &Rr);
        assert!(r.schedulable());
        assert!(r.verdicts().is_empty());
        assert_eq!(r.stats().iterations, 0);
    }

    #[test]
    fn stats_count_work() {
        let a = SporadicTask::builder("a")
            .wcet(Cycles(10))
            .period(Cycles(100))
            .demand(BankDemand::single(BankId(0), 4))
            .build()
            .unwrap();
        let b = SporadicTask::builder("b")
            .wcet(Cycles(10))
            .period(Cycles(100))
            .demand(BankDemand::single(BankId(0), 6))
            .build()
            .unwrap();
        let s = SporadicSystem::new(vec![a, b], &[0, 1], Platform::new(2, 2)).unwrap();
        let r = analyze(&s, &Rr);
        assert!(r.stats().iterations >= 2);
        assert!(r.stats().ibus_calls >= 2);
    }
}
