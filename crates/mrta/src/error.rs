//! Error type for sporadic-system construction and analysis.

use std::fmt;

use mia_model::Cycles;

/// Errors raised when building or analysing a [`SporadicSystem`].
///
/// [`SporadicSystem`]: crate::SporadicSystem
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MrtaError {
    /// A task declared a zero period; sporadic tasks must recur with a
    /// strictly positive minimum inter-arrival time.
    ZeroPeriod { task: String },
    /// A task's relative deadline exceeds its period. The analysis is a
    /// constrained-deadline analysis (`D ≤ T`); arbitrary deadlines would
    /// need the multi-job busy-window extension.
    DeadlineExceedsPeriod {
        task: String,
        deadline: Cycles,
        period: Cycles,
    },
    /// A task's deadline is zero (it could never be met).
    ZeroDeadline { task: String },
    /// The assignment slice does not cover every task exactly once.
    AssignmentLength { tasks: usize, assigned: usize },
    /// A task was assigned to a core the platform does not have.
    CoreOutOfRange {
        task: String,
        core: usize,
        cores: usize,
    },
    /// A task demands accesses to a bank the platform does not have.
    BankOutOfRange {
        task: String,
        bank: usize,
        banks: usize,
    },
    /// Two tasks on the same core share a priority level; fixed-priority
    /// scheduling needs a total order per core.
    DuplicatePriority { first: String, second: String },
    /// The explicit priority slice does not cover every task exactly once.
    PriorityLength { tasks: usize, priorities: usize },
}

impl fmt::Display for MrtaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrtaError::ZeroPeriod { task } => {
                write!(f, "task {task:?} has a zero period")
            }
            MrtaError::DeadlineExceedsPeriod {
                task,
                deadline,
                period,
            } => write!(
                f,
                "task {task:?} has deadline {deadline} past its period {period} \
                 (only constrained deadlines are supported)"
            ),
            MrtaError::ZeroDeadline { task } => {
                write!(f, "task {task:?} has a zero deadline")
            }
            MrtaError::AssignmentLength { tasks, assigned } => {
                write!(f, "assignment covers {assigned} tasks, the set has {tasks}")
            }
            MrtaError::CoreOutOfRange { task, core, cores } => write!(
                f,
                "task {task:?} assigned to core {core}, platform has {cores}"
            ),
            MrtaError::BankOutOfRange { task, bank, banks } => write!(
                f,
                "task {task:?} accesses bank {bank}, platform has {banks}"
            ),
            MrtaError::DuplicatePriority { first, second } => write!(
                f,
                "tasks {first:?} and {second:?} share a core and a priority level"
            ),
            MrtaError::PriorityLength { tasks, priorities } => write!(
                f,
                "priority slice covers {priorities} tasks, the set has {tasks}"
            ),
        }
    }
}

impl std::error::Error for MrtaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MrtaError::DeadlineExceedsPeriod {
            task: "nav".into(),
            deadline: Cycles(20),
            period: Cycles(10),
        };
        let s = e.to_string();
        assert!(s.contains("nav"));
        assert!(s.contains("20cy"));
        assert!(s.contains("10cy"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(MrtaError::ZeroPeriod { task: "x".into() });
        assert!(e.to_string().contains("zero period"));
    }
}
