//! Multicore Response-Time Analysis (MRTA) for **sporadic** task sets —
//! the generic, compositional framework of Altmeyer, Davis, Indrusiak,
//! Maiza, Nelis and Reineke (RTNS 2015), the paper's reference \[1\] and
//! the direct ancestor of the DAG analysis reproduced in `mia-core`.
//!
//! # Relationship to the rest of the workspace
//!
//! The DATE 2020 paper analyses a *time-triggered DAG* of tasks whose
//! release dates the analysis itself chooses. The MRTA framework it builds
//! on solves the classic *sporadic* problem instead: tasks recur with a
//! minimum inter-arrival time, are scheduled per core by fixed-priority
//! preemptive scheduling, and the analysis bounds each task's worst-case
//! response time including memory interference from the other cores.
//!
//! Both analyses consult the same [`Arbiter`] abstraction (the paper's
//! `IBUS` function), so every policy of `mia-arbiter` works here unchanged
//! — this is the "generic" in the framework's title.
//!
//! # The analysis
//!
//! For a task `τ_i` of priority `i` on core `k`, the response-time fixed
//! point is
//!
//! ```text
//! R_i = C_i + Σ_{j ∈ hp(i)} ⌈(R_i + J_j)/T_j⌉·C_j + I_mem(R_i)
//! ```
//!
//! where `hp(i)` are the higher-priority tasks of the same core and
//! `I_mem(R)` bounds the memory interference of the busy window: the
//! window's own demand per bank (the victim job plus its same-core
//! preemptors) is delayed by the per-core aggregated demands that remote
//! cores can issue within `R` — one carry-in job plus the in-window
//! releases, `(1 + ⌈(R + J_l)/T_l⌉)·MD_l` per remote task — as priced by
//! the arbiter. The iteration starts at `C_i` and stops at a fixed point
//! or when the deadline is crossed (unschedulable), mirroring §III of the
//! DATE paper.
//!
//! As usual for fixed-priority response-time analyses, the per-task bounds
//! are valid when the whole system is schedulable (an unschedulable remote
//! task could backlog more than one carry-in job).
//!
//! # Example
//!
//! Two cores contending on a shared bank through round-robin arbitration:
//!
//! ```
//! use mia_model::{BankDemand, BankId, Cycles, Platform};
//! use mia_mrta::{analyze, SporadicSystem, SporadicTask};
//! # use mia_model::{arbiter::InterfererDemand, Arbiter, CoreId};
//! # struct Rr;
//! # impl Arbiter for Rr {
//! #     fn name(&self) -> &str { "rr" }
//! #     fn bank_interference(&self, _v: CoreId, d: u64, s: &[InterfererDemand], a: Cycles) -> Cycles {
//! #         a * s.iter().map(|i| d.min(i.accesses)).sum::<u64>()
//! #     }
//! # }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tasks = vec![
//!     SporadicTask::builder("control")
//!         .wcet(Cycles(10))
//!         .period(Cycles(100))
//!         .demand(BankDemand::single(BankId(0), 4))
//!         .build()?,
//!     SporadicTask::builder("logging")
//!         .wcet(Cycles(10))
//!         .period(Cycles(100))
//!         .demand(BankDemand::single(BankId(0), 6))
//!         .build()?,
//! ];
//! let system = SporadicSystem::new(tasks, &[0, 1], Platform::new(2, 2))?;
//! let report = analyze(&system, &Rr);
//! assert!(report.schedulable());
//! // "control" is stalled once per own access: min(4, 6) = 4 cycles.
//! assert_eq!(report.response(0), Cycles(14));
//! # Ok(())
//! # }
//! ```

mod analysis;
mod error;
mod sim;
mod system;
mod task;

pub use analysis::{analyze, analyze_with, MrtaOptions, MrtaReport, MrtaStats, TaskVerdict};
pub use error::MrtaError;
pub use sim::{simulate_sporadic, SporadicSimConfig, SporadicSimResult};
pub use system::{PriorityAssignment, SporadicSystem};
pub use task::{SporadicTask, SporadicTaskBuilder};

// Re-export what users need from the model so the crate is usable alone.
pub use mia_model::{Arbiter, BankDemand, BankId, CoreId, Cycles, Platform};
