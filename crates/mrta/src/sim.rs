//! A cycle-stepped validation simulator for sporadic systems.
//!
//! The analysis in [`crate::analyze`] produces *bounds*; this module
//! executes the system — synchronous release at `t = 0`, strictly periodic
//! arrivals, fixed-priority preemptive scheduling per core, per-bank
//! round-robin bus grants — and reports the worst response time actually
//! observed per task. Soundness testing then checks
//! `observed ≤ analysed bound` (see `tests/` and the workspace's
//! `tests/soundness.rs`).
//!
//! The simulated arrival pattern (synchronous periodic, zero jitter) is the
//! densest legal sporadic pattern, so it is the natural stress case; the
//! simulator intentionally under-approximates the worst case (any single
//! execution does), never over-approximates it.

use mia_model::{BankId, Cycles};

use crate::SporadicSystem;

/// Configuration of a sporadic simulation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SporadicSimConfig {
    /// Releases stop at this horizon (jobs already released still run to
    /// completion). Defaults to the task set's hyperperiod, capped at
    /// 1,048,576 cycles.
    pub horizon: Option<Cycles>,
}

impl SporadicSimConfig {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an explicit release horizon.
    pub fn horizon(mut self, horizon: Cycles) -> Self {
        self.horizon = Some(horizon);
        self
    }
}

/// What a simulation run observed.
#[derive(Debug, Clone)]
pub struct SporadicSimResult {
    max_response: Vec<Option<Cycles>>,
    completed_jobs: Vec<usize>,
    deadline_misses: Vec<usize>,
    horizon: Cycles,
}

impl SporadicSimResult {
    /// Worst response time observed for one task, or `None` if no job of
    /// the task completed within the run.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn max_response(&self, task: usize) -> Option<Cycles> {
        self.max_response[task]
    }

    /// Number of completed jobs of one task.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn completed_jobs(&self, task: usize) -> usize {
        self.completed_jobs[task]
    }

    /// Number of jobs of one task that finished past their deadline.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn deadline_misses(&self, task: usize) -> usize {
        self.deadline_misses[task]
    }

    /// True if no job of any task missed its deadline.
    pub fn all_deadlines_met(&self) -> bool {
        self.deadline_misses.iter().all(|&m| m == 0)
    }

    /// The release horizon the run used.
    pub fn horizon(&self) -> Cycles {
        self.horizon
    }
}

/// One outstanding job in the simulator.
struct Job {
    task: usize,
    release: Cycles,
    /// Work units left; the first `mem_left` of them are memory accesses.
    work_left: u64,
    /// Memory work units left, consumed bank by bank in `bank_plan` order.
    mem_left: u64,
    /// Flattened per-bank access plan: `(bank, units remaining)`.
    bank_plan: Vec<(BankId, u64)>,
}

impl Job {
    /// The bank the job's next work unit needs, if it is a memory unit.
    fn wants_bank(&self) -> Option<BankId> {
        if self.mem_left == 0 {
            return None;
        }
        self.bank_plan
            .iter()
            .find(|&&(_, left)| left > 0)
            .map(|&(b, _)| b)
    }

    /// Consumes one work unit (memory or compute).
    fn progress(&mut self) {
        debug_assert!(self.work_left > 0);
        self.work_left -= 1;
        if self.mem_left > 0 {
            self.mem_left -= 1;
            for entry in &mut self.bank_plan {
                if entry.1 > 0 {
                    entry.1 -= 1;
                    break;
                }
            }
        }
    }
}

/// Simulates the system and reports observed response times.
///
/// Scheduling is fixed-priority preemptive per core; each cycle, every
/// core's highest-priority pending job either computes or issues a memory
/// access, and each bank grants one access per cycle in round-robin order
/// over the contending cores (the §II.A policy). A job's leading
/// `min(total accesses × access_cycles, wcet)` work units are its memory
/// accesses; the rest is pure computation.
///
/// The run releases jobs up to the configured horizon and then drains all
/// outstanding work, so every released job completes and is counted.
pub fn simulate_sporadic(system: &SporadicSystem, config: &SporadicSimConfig) -> SporadicSimResult {
    let n = system.len();
    let cores = system.platform().cores();
    let banks = system.platform().banks();
    let access = system.platform().access_cycles().as_u64().max(1);
    let horizon = config
        .horizon
        .unwrap_or_else(|| hyperperiod(system).min(Cycles(1 << 20)));

    let mut result = SporadicSimResult {
        max_response: vec![None; n],
        completed_jobs: vec![0; n],
        deadline_misses: vec![0; n],
        horizon,
    };
    if n == 0 {
        return result;
    }

    // Jobs pending per core, kept sorted by priority on insertion.
    let mut ready: Vec<Vec<Job>> = (0..cores).map(|_| Vec::new()).collect();
    let mut rr_ptr: Vec<usize> = vec![0; banks]; // per-bank grant pointer
    let mut t = Cycles::ZERO;
    let mut outstanding = 0usize;

    loop {
        // Release phase: strictly periodic arrivals from t = 0.
        if t < horizon {
            for (i, task) in system.tasks().iter().enumerate() {
                if t.as_u64().is_multiple_of(task.period().as_u64()) {
                    let wcet = task.wcet().as_u64();
                    let plan: Vec<(BankId, u64)> =
                        task.demand().iter().map(|(b, d)| (b, d * access)).collect();
                    let mem: u64 = plan.iter().map(|&(_, u)| u).sum::<u64>().min(wcet);
                    let core = system.core_of(i).index();
                    ready[core].push(Job {
                        task: i,
                        release: t,
                        work_left: wcet,
                        mem_left: mem,
                        bank_plan: plan,
                    });
                    ready[core].sort_by_key(|j| system.priority(j.task));
                    outstanding += 1;
                }
            }
        } else if outstanding == 0 {
            break;
        }

        // Pick the running job per core (highest priority = lowest level).
        // Zero-work jobs complete immediately without consuming a cycle.
        let mut running: Vec<Option<usize>> = vec![None; cores];
        for (core, queue) in ready.iter_mut().enumerate() {
            while let Some(pos) = queue.iter().position(|j| j.work_left == 0) {
                let job = queue.remove(pos);
                record_completion(system, &mut result, &job, t);
                outstanding -= 1;
            }
            if !queue.is_empty() {
                running[core] = Some(0); // sorted: front is highest priority
            }
        }

        // Bus phase: for each bank, grant one contender round-robin.
        let mut granted: Vec<bool> = vec![false; cores];
        let mut wants: Vec<Option<BankId>> = vec![None; cores];
        for core in 0..cores {
            if let Some(slot) = running[core] {
                wants[core] = ready[core][slot].wants_bank();
            }
        }
        for (bank, ptr) in rr_ptr.iter_mut().enumerate() {
            let bank_id = BankId::from_index(bank);
            let contenders: Vec<usize> =
                (0..cores).filter(|&c| wants[c] == Some(bank_id)).collect();
            if contenders.is_empty() {
                continue;
            }
            // Round-robin: first contender at or after the pointer.
            let winner = *contenders
                .iter()
                .find(|&&c| c >= *ptr)
                .unwrap_or(&contenders[0]);
            *ptr = (winner + 1) % cores;
            granted[winner] = true;
        }

        // Progress phase: compute units always advance; memory units only
        // when granted. Completions are harvested next cycle (or by the
        // zero-work sweep above).
        for core in 0..cores {
            let Some(slot) = running[core] else { continue };
            let job = &mut ready[core][slot];
            match wants[core] {
                Some(_) if granted[core] => job.progress(),
                Some(_) => {} // stalled on the bus this cycle
                None => job.progress(),
            }
        }

        t += Cycles(1);
        // Safety valve: a system with starving jobs cannot hang the test
        // suite. Generous: every job gets horizon + slack to drain.
        if t > horizon + horizon + Cycles(1 << 20) {
            break;
        }
    }
    result
}

fn record_completion(
    system: &SporadicSystem,
    result: &mut SporadicSimResult,
    job: &Job,
    now: Cycles,
) {
    let response = now - job.release;
    let best = &mut result.max_response[job.task];
    *best = Some(best.map_or(response, |b| b.max(response)));
    result.completed_jobs[job.task] += 1;
    if response > system.tasks()[job.task].deadline() {
        result.deadline_misses[job.task] += 1;
    }
}

/// Least common multiple of all periods (saturating).
fn hyperperiod(system: &SporadicSystem) -> Cycles {
    let mut l: u64 = 1;
    for task in system.tasks() {
        let p = task.period().as_u64();
        let g = gcd(l, p);
        l = (l / g).saturating_mul(p);
    }
    Cycles(l)
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, SporadicSystem, SporadicTask};
    use mia_model::arbiter::{Arbiter, InterfererDemand};
    use mia_model::{BankDemand, CoreId, Platform};

    struct Rr;

    impl Arbiter for Rr {
        fn name(&self) -> &str {
            "rr-test"
        }

        fn bank_interference(
            &self,
            _victim: CoreId,
            demand: u64,
            interferers: &[InterfererDemand],
            access_cycles: Cycles,
        ) -> Cycles {
            access_cycles
                * interferers
                    .iter()
                    .map(|i| demand.min(i.accesses))
                    .sum::<u64>()
        }

        fn is_additive(&self) -> bool {
            true
        }
    }

    fn task(name: &str, wcet: u64, period: u64) -> SporadicTask {
        SporadicTask::builder(name)
            .wcet(Cycles(wcet))
            .period(Cycles(period))
            .build()
            .unwrap()
    }

    #[test]
    fn lone_task_runs_unhindered() {
        let s = SporadicSystem::new(vec![task("a", 5, 10)], &[0], Platform::new(1, 1)).unwrap();
        let r = simulate_sporadic(&s, &SporadicSimConfig::new());
        assert_eq!(r.max_response(0), Some(Cycles(5)));
        assert_eq!(r.completed_jobs(0), 1); // one hyperperiod = one job
        assert!(r.all_deadlines_met());
    }

    #[test]
    fn explicit_horizon_releases_multiple_jobs() {
        let s = SporadicSystem::new(vec![task("a", 5, 10)], &[0], Platform::new(1, 1)).unwrap();
        let r = simulate_sporadic(&s, &SporadicSimConfig::new().horizon(Cycles(35)));
        assert_eq!(r.completed_jobs(0), 4); // releases at 0, 10, 20, 30
        assert_eq!(r.horizon(), Cycles(35));
    }

    #[test]
    fn preemption_by_higher_priority() {
        // DM: t1 (D=7) preempts t2 (D=12). Sync release: t2 finishes at 6.
        let tasks = vec![task("t1", 3, 7), task("t2", 3, 12)];
        let s = SporadicSystem::new(tasks, &[0, 0], Platform::new(1, 1)).unwrap();
        let r = simulate_sporadic(&s, &SporadicSimConfig::new().horizon(Cycles(1)));
        assert_eq!(r.max_response(0), Some(Cycles(3)));
        assert_eq!(r.max_response(1), Some(Cycles(6)));
    }

    #[test]
    fn textbook_example_observed_equals_bound_at_critical_instant() {
        // The {3/7, 3/12, 5/20} set: the synchronous release IS the
        // critical instant, so with re-releases of the high-priority tasks
        // inside the busy window the sim must observe exactly R3 = 20.
        let tasks = vec![task("t1", 3, 7), task("t2", 3, 12), task("t3", 5, 20)];
        let s = SporadicSystem::new(tasks, &[0, 0, 0], Platform::new(1, 1)).unwrap();
        let r = simulate_sporadic(&s, &SporadicSimConfig::new().horizon(Cycles(21)));
        assert_eq!(r.max_response(2), Some(Cycles(20)));
    }

    #[test]
    fn bus_contention_stalls_but_respects_bound() {
        let a = SporadicTask::builder("a")
            .wcet(Cycles(10))
            .period(Cycles(100))
            .demand(BankDemand::single(BankId(0), 4))
            .build()
            .unwrap();
        let b = SporadicTask::builder("b")
            .wcet(Cycles(10))
            .period(Cycles(100))
            .demand(BankDemand::single(BankId(0), 6))
            .build()
            .unwrap();
        let s = SporadicSystem::new(vec![a, b], &[0, 1], Platform::new(2, 2)).unwrap();
        let bound = analyze(&s, &Rr);
        let sim = simulate_sporadic(&s, &SporadicSimConfig::new());
        for i in 0..2 {
            let observed = sim.max_response(i).unwrap();
            assert!(observed > Cycles(10), "contention must show up");
            assert!(
                observed <= bound.response(i),
                "task {i}: observed {observed} exceeds bound {}",
                bound.response(i)
            );
        }
    }

    #[test]
    fn deadline_misses_are_counted() {
        // One core, two tasks at 60% utilization each: the lower-priority
        // task cannot make its deadline.
        let tasks = vec![task("a", 6, 10), task("b", 6, 10)];
        let s = SporadicSystem::new(tasks, &[0, 0], Platform::new(1, 1)).unwrap();
        let r = simulate_sporadic(&s, &SporadicSimConfig::new().horizon(Cycles(10)));
        assert!(!r.all_deadlines_met());
        assert_eq!(r.deadline_misses(0), 0);
        assert!(r.deadline_misses(1) >= 1);
    }

    #[test]
    fn zero_wcet_job_completes_instantly() {
        let s = SporadicSystem::new(vec![task("z", 0, 10)], &[0], Platform::new(1, 1)).unwrap();
        let r = simulate_sporadic(&s, &SporadicSimConfig::new());
        assert_eq!(r.max_response(0), Some(Cycles::ZERO));
        assert!(r.all_deadlines_met());
    }

    #[test]
    fn empty_system() {
        let s = SporadicSystem::new(vec![], &[], Platform::new(1, 1)).unwrap();
        let r = simulate_sporadic(&s, &SporadicSimConfig::new());
        assert!(r.all_deadlines_met());
    }

    #[test]
    fn hyperperiod_of_coprime_periods() {
        let tasks = vec![task("a", 1, 3), task("b", 1, 7)];
        let s = SporadicSystem::new(tasks, &[0, 0], Platform::new(1, 1)).unwrap();
        assert_eq!(super::hyperperiod(&s), Cycles(21));
    }
}
