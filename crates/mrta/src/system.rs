//! A partitioned sporadic system: tasks, core assignment, priorities.

use mia_model::{CoreId, Platform};

use crate::{MrtaError, SporadicTask};

/// How per-core priorities are derived when none are given explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum PriorityAssignment {
    /// Deadline-monotonic: shorter relative deadline → higher priority.
    /// Optimal for constrained-deadline fixed-priority scheduling in the
    /// absence of inter-core interference, and the customary default.
    #[default]
    DeadlineMonotonic,
    /// Rate-monotonic: shorter period → higher priority.
    RateMonotonic,
    /// Declaration order: earlier task → higher priority.
    DeclarationOrder,
}

/// A validated sporadic system: a task set partitioned onto the cores of a
/// [`Platform`], with a fixed-priority order per core.
///
/// Priorities are numeric levels where **lower values mean higher
/// priority** (level 0 is the most urgent), unique among the tasks sharing
/// a core.
#[derive(Debug, Clone)]
pub struct SporadicSystem {
    tasks: Vec<SporadicTask>,
    assignment: Vec<CoreId>,
    priorities: Vec<u32>,
    platform: Platform,
}

impl SporadicSystem {
    /// Builds a system with deadline-monotonic priorities per core.
    ///
    /// `assignment[i]` is the core index task `i` runs on.
    ///
    /// # Errors
    ///
    /// See [`SporadicSystem::with_priorities`]; priority errors cannot occur
    /// here because the derived order is made unique by declaration index.
    pub fn new(
        tasks: Vec<SporadicTask>,
        assignment: &[usize],
        platform: Platform,
    ) -> Result<Self, MrtaError> {
        Self::with_assignment_policy(tasks, assignment, platform, PriorityAssignment::default())
    }

    /// Builds a system deriving priorities with the given policy.
    ///
    /// # Errors
    ///
    /// Same as [`SporadicSystem::new`].
    pub fn with_assignment_policy(
        tasks: Vec<SporadicTask>,
        assignment: &[usize],
        platform: Platform,
        policy: PriorityAssignment,
    ) -> Result<Self, MrtaError> {
        let n = tasks.len();
        // Sort indices by the policy key, then use the rank as the global
        // priority level. Ties break by declaration index, so levels are
        // unique globally (hence per core too).
        let mut order: Vec<usize> = (0..n).collect();
        match policy {
            PriorityAssignment::DeadlineMonotonic => {
                order.sort_by_key(|&i| (tasks[i].deadline(), i));
            }
            PriorityAssignment::RateMonotonic => {
                order.sort_by_key(|&i| (tasks[i].period(), i));
            }
            PriorityAssignment::DeclarationOrder => {}
        }
        let mut priorities = vec![0u32; n];
        for (level, &i) in order.iter().enumerate() {
            priorities[i] = level as u32;
        }
        Self::with_priorities(tasks, assignment, &priorities, platform)
    }

    /// Builds a system with explicit priority levels (lower = more urgent).
    ///
    /// # Errors
    ///
    /// * [`MrtaError::AssignmentLength`] / [`MrtaError::PriorityLength`]
    ///   if the slices do not cover the task set,
    /// * [`MrtaError::CoreOutOfRange`] / [`MrtaError::BankOutOfRange`] if a
    ///   task refers to hardware the platform does not have,
    /// * [`MrtaError::DuplicatePriority`] if two same-core tasks share a
    ///   level.
    pub fn with_priorities(
        tasks: Vec<SporadicTask>,
        assignment: &[usize],
        priorities: &[u32],
        platform: Platform,
    ) -> Result<Self, MrtaError> {
        let n = tasks.len();
        if assignment.len() != n {
            return Err(MrtaError::AssignmentLength {
                tasks: n,
                assigned: assignment.len(),
            });
        }
        if priorities.len() != n {
            return Err(MrtaError::PriorityLength {
                tasks: n,
                priorities: priorities.len(),
            });
        }
        for (task, &core) in tasks.iter().zip(assignment) {
            if core >= platform.cores() {
                return Err(MrtaError::CoreOutOfRange {
                    task: task.name().to_owned(),
                    core,
                    cores: platform.cores(),
                });
            }
            for (bank, _) in task.demand().iter() {
                if bank.index() >= platform.banks() {
                    return Err(MrtaError::BankOutOfRange {
                        task: task.name().to_owned(),
                        bank: bank.index(),
                        banks: platform.banks(),
                    });
                }
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if assignment[i] == assignment[j] && priorities[i] == priorities[j] {
                    return Err(MrtaError::DuplicatePriority {
                        first: tasks[i].name().to_owned(),
                        second: tasks[j].name().to_owned(),
                    });
                }
            }
        }
        Ok(SporadicSystem {
            tasks,
            assignment: assignment.iter().map(|&c| CoreId::from_index(c)).collect(),
            priorities: priorities.to_vec(),
            platform,
        })
    }

    /// The task set, in declaration order.
    pub fn tasks(&self) -> &[SporadicTask] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if the system has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The platform the set is partitioned onto.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The core task `i` is assigned to.
    pub fn core_of(&self, i: usize) -> CoreId {
        self.assignment[i]
    }

    /// The priority level of task `i` (lower = more urgent).
    pub fn priority(&self, i: usize) -> u32 {
        self.priorities[i]
    }

    /// Indices of the tasks assigned to `core`.
    pub fn tasks_on(&self, core: CoreId) -> impl Iterator<Item = usize> + '_ {
        (0..self.tasks.len()).filter(move |&i| self.assignment[i] == core)
    }

    /// Indices of the tasks sharing task `i`'s core with a strictly higher
    /// priority (lower level).
    pub fn higher_priority_same_core(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let core = self.assignment[i];
        let level = self.priorities[i];
        (0..self.tasks.len())
            .filter(move |&j| j != i && self.assignment[j] == core && self.priorities[j] < level)
    }

    /// Processor utilization of one core: `Σ C_i/T_i` over its tasks.
    pub fn core_utilization(&self, core: CoreId) -> f64 {
        self.tasks_on(core)
            .map(|i| self.tasks[i].utilization())
            .sum()
    }

    /// The highest per-core utilization; above 1.0 the set is trivially
    /// unschedulable on that core.
    pub fn max_core_utilization(&self) -> f64 {
        (0..self.platform.cores())
            .map(|c| self.core_utilization(CoreId::from_index(c)))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mia_model::{BankDemand, BankId, Cycles};

    fn task(name: &str, wcet: u64, period: u64, deadline: u64) -> SporadicTask {
        SporadicTask::builder(name)
            .wcet(Cycles(wcet))
            .period(Cycles(period))
            .deadline(Cycles(deadline))
            .build()
            .unwrap()
    }

    #[test]
    fn deadline_monotonic_orders_by_deadline() {
        let tasks = vec![
            task("slow", 1, 100, 90),
            task("fast", 1, 100, 10),
            task("mid", 1, 100, 50),
        ];
        let s = SporadicSystem::new(tasks, &[0, 0, 0], Platform::new(1, 1)).unwrap();
        assert!(s.priority(1) < s.priority(2));
        assert!(s.priority(2) < s.priority(0));
        let hp: Vec<usize> = s.higher_priority_same_core(0).collect();
        assert_eq!(hp, vec![1, 2]);
    }

    #[test]
    fn rate_monotonic_orders_by_period() {
        let tasks = vec![task("a", 1, 100, 100), task("b", 1, 10, 10)];
        let s = SporadicSystem::with_assignment_policy(
            tasks,
            &[0, 0],
            Platform::new(1, 1),
            PriorityAssignment::RateMonotonic,
        )
        .unwrap();
        assert!(s.priority(1) < s.priority(0));
    }

    #[test]
    fn declaration_order_keeps_declaration() {
        let tasks = vec![task("a", 1, 100, 100), task("b", 1, 10, 10)];
        let s = SporadicSystem::with_assignment_policy(
            tasks,
            &[0, 0],
            Platform::new(1, 1),
            PriorityAssignment::DeclarationOrder,
        )
        .unwrap();
        assert!(s.priority(0) < s.priority(1));
    }

    #[test]
    fn cross_core_tasks_are_not_higher_priority() {
        let tasks = vec![task("a", 1, 10, 10), task("b", 1, 5, 5)];
        let s = SporadicSystem::new(tasks, &[0, 1], Platform::new(2, 2)).unwrap();
        assert_eq!(s.higher_priority_same_core(0).count(), 0);
        assert_eq!(s.tasks_on(CoreId(0)).collect::<Vec<_>>(), vec![0]);
        assert_eq!(s.tasks_on(CoreId(1)).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn rejects_wrong_assignment_length() {
        let tasks = vec![task("a", 1, 10, 10)];
        let err = SporadicSystem::new(tasks, &[0, 1], Platform::new(2, 2)).unwrap_err();
        assert!(matches!(err, MrtaError::AssignmentLength { .. }));
    }

    #[test]
    fn rejects_core_out_of_range() {
        let tasks = vec![task("a", 1, 10, 10)];
        let err = SporadicSystem::new(tasks, &[5], Platform::new(2, 2)).unwrap_err();
        assert!(matches!(err, MrtaError::CoreOutOfRange { core: 5, .. }));
    }

    #[test]
    fn rejects_bank_out_of_range() {
        let t = SporadicTask::builder("a")
            .wcet(Cycles(1))
            .period(Cycles(10))
            .demand(BankDemand::single(BankId(9), 1))
            .build()
            .unwrap();
        let err = SporadicSystem::new(vec![t], &[0], Platform::new(2, 2)).unwrap_err();
        assert!(matches!(err, MrtaError::BankOutOfRange { bank: 9, .. }));
    }

    #[test]
    fn rejects_duplicate_priorities_on_one_core() {
        let tasks = vec![task("a", 1, 10, 10), task("b", 1, 20, 20)];
        let err = SporadicSystem::with_priorities(tasks, &[0, 0], &[3, 3], Platform::new(1, 1))
            .unwrap_err();
        assert!(matches!(err, MrtaError::DuplicatePriority { .. }));
    }

    #[test]
    fn duplicate_priorities_across_cores_are_fine() {
        let tasks = vec![task("a", 1, 10, 10), task("b", 1, 20, 20)];
        let s =
            SporadicSystem::with_priorities(tasks, &[0, 1], &[3, 3], Platform::new(2, 2)).unwrap();
        assert_eq!(s.priority(0), 3);
        assert_eq!(s.priority(1), 3);
    }

    #[test]
    fn utilization_accounting() {
        let tasks = vec![task("a", 25, 100, 100), task("b", 50, 100, 100)];
        let s = SporadicSystem::new(tasks, &[0, 0], Platform::new(2, 2)).unwrap();
        assert_eq!(s.core_utilization(CoreId(0)), 0.75);
        assert_eq!(s.core_utilization(CoreId(1)), 0.0);
        assert_eq!(s.max_core_utilization(), 0.75);
    }

    #[test]
    fn empty_system_is_valid() {
        let s = SporadicSystem::new(vec![], &[], Platform::new(1, 1)).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.max_core_utilization(), 0.0);
    }
}
