//! The sporadic task model.

use mia_model::{BankDemand, Cycles};

use crate::MrtaError;

/// A sporadic task: a recurring job with a minimum inter-arrival time.
///
/// Each job of the task executes for at most [`wcet`](Self::wcet) cycles in
/// isolation (own memory accesses included, as in the DAG model of
/// `mia-model`) and issues at most the per-bank accesses recorded in
/// [`demand`](Self::demand). Jobs arrive at least [`period`](Self::period)
/// cycles apart, possibly disturbed by a release [`jitter`](Self::jitter),
/// and must finish within the relative [`deadline`](Self::deadline).
///
/// Construct through [`SporadicTask::builder`]:
///
/// ```
/// use mia_model::{BankDemand, BankId, Cycles};
/// use mia_mrta::SporadicTask;
///
/// # fn main() -> Result<(), mia_mrta::MrtaError> {
/// let t = SporadicTask::builder("sensor-fusion")
///     .wcet(Cycles(120))
///     .period(Cycles(1_000))
///     .deadline(Cycles(800))
///     .jitter(Cycles(10))
///     .demand(BankDemand::single(BankId(0), 40))
///     .build()?;
/// assert_eq!(t.utilization(), 0.12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SporadicTask {
    name: String,
    wcet: Cycles,
    period: Cycles,
    deadline: Cycles,
    jitter: Cycles,
    demand: BankDemand,
}

impl SporadicTask {
    /// Starts building a task with the given display name.
    pub fn builder(name: impl Into<String>) -> SporadicTaskBuilder {
        SporadicTaskBuilder {
            name: name.into(),
            wcet: Cycles::ZERO,
            period: None,
            deadline: None,
            jitter: Cycles::ZERO,
            demand: BankDemand::new(),
        }
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Worst-case execution time of one job in isolation.
    pub fn wcet(&self) -> Cycles {
        self.wcet
    }

    /// Minimum inter-arrival time between jobs (`T`).
    pub fn period(&self) -> Cycles {
        self.period
    }

    /// Relative deadline (`D ≤ T`).
    pub fn deadline(&self) -> Cycles {
        self.deadline
    }

    /// Release jitter (`J`): the worst-case delay between the arrival of
    /// the triggering event and the job becoming ready.
    pub fn jitter(&self) -> Cycles {
        self.jitter
    }

    /// Per-bank memory accesses one job may issue.
    pub fn demand(&self) -> &BankDemand {
        &self.demand
    }

    /// Processor utilization `C/T` of the task.
    pub fn utilization(&self) -> f64 {
        self.wcet.as_u64() as f64 / self.period.as_u64() as f64
    }

    /// Maximum number of jobs with releases inside a half-open window of
    /// length `window`, accounting for release jitter:
    /// `⌈(window + J)/T⌉` (the classic request-bound job count).
    pub fn jobs_in(&self, window: Cycles) -> u64 {
        let span = window.as_u64() + self.jitter.as_u64();
        span.div_ceil(self.period.as_u64())
    }
}

/// Builder for [`SporadicTask`] (see [`SporadicTask::builder`]).
#[derive(Debug, Clone)]
pub struct SporadicTaskBuilder {
    name: String,
    wcet: Cycles,
    period: Option<Cycles>,
    deadline: Option<Cycles>,
    jitter: Cycles,
    demand: BankDemand,
}

impl SporadicTaskBuilder {
    /// Sets the worst-case execution time in isolation.
    pub fn wcet(mut self, wcet: Cycles) -> Self {
        self.wcet = wcet;
        self
    }

    /// Sets the minimum inter-arrival time.
    pub fn period(mut self, period: Cycles) -> Self {
        self.period = Some(period);
        self
    }

    /// Sets the relative deadline. Defaults to the period (implicit
    /// deadline) when not called.
    pub fn deadline(mut self, deadline: Cycles) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the release jitter. Defaults to zero.
    pub fn jitter(mut self, jitter: Cycles) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the per-bank memory demand of one job.
    pub fn demand(mut self, demand: BankDemand) -> Self {
        self.demand = demand;
        self
    }

    /// Finishes the task.
    ///
    /// # Errors
    ///
    /// * [`MrtaError::ZeroPeriod`] if no strictly positive period was set,
    /// * [`MrtaError::ZeroDeadline`] if the deadline is zero,
    /// * [`MrtaError::DeadlineExceedsPeriod`] if `D > T` (the analysis is
    ///   constrained-deadline).
    pub fn build(self) -> Result<SporadicTask, MrtaError> {
        let period = self.period.unwrap_or(Cycles::ZERO);
        if period == Cycles::ZERO {
            return Err(MrtaError::ZeroPeriod { task: self.name });
        }
        let deadline = self.deadline.unwrap_or(period);
        if deadline == Cycles::ZERO {
            return Err(MrtaError::ZeroDeadline { task: self.name });
        }
        if deadline > period {
            return Err(MrtaError::DeadlineExceedsPeriod {
                task: self.name,
                deadline,
                period,
            });
        }
        Ok(SporadicTask {
            name: self.name,
            wcet: self.wcet,
            period,
            deadline,
            jitter: self.jitter,
            demand: self.demand,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mia_model::BankId;

    #[test]
    fn builder_defaults_deadline_to_period() {
        let t = SporadicTask::builder("t")
            .wcet(Cycles(5))
            .period(Cycles(50))
            .build()
            .unwrap();
        assert_eq!(t.deadline(), Cycles(50));
        assert_eq!(t.jitter(), Cycles::ZERO);
        assert!(t.demand().is_empty());
    }

    #[test]
    fn missing_period_is_an_error() {
        let err = SporadicTask::builder("t")
            .wcet(Cycles(5))
            .build()
            .unwrap_err();
        assert_eq!(err, MrtaError::ZeroPeriod { task: "t".into() });
    }

    #[test]
    fn unconstrained_deadline_is_an_error() {
        let err = SporadicTask::builder("t")
            .wcet(Cycles(5))
            .period(Cycles(10))
            .deadline(Cycles(11))
            .build()
            .unwrap_err();
        assert!(matches!(err, MrtaError::DeadlineExceedsPeriod { .. }));
    }

    #[test]
    fn zero_deadline_is_an_error() {
        let err = SporadicTask::builder("t")
            .wcet(Cycles(5))
            .period(Cycles(10))
            .deadline(Cycles(0))
            .build()
            .unwrap_err();
        assert_eq!(err, MrtaError::ZeroDeadline { task: "t".into() });
    }

    #[test]
    fn jobs_in_window_uses_ceiling() {
        let t = SporadicTask::builder("t")
            .wcet(Cycles(1))
            .period(Cycles(10))
            .build()
            .unwrap();
        assert_eq!(t.jobs_in(Cycles(0)), 0);
        assert_eq!(t.jobs_in(Cycles(1)), 1);
        assert_eq!(t.jobs_in(Cycles(10)), 1);
        assert_eq!(t.jobs_in(Cycles(11)), 2);
        assert_eq!(t.jobs_in(Cycles(20)), 2);
        assert_eq!(t.jobs_in(Cycles(21)), 3);
    }

    #[test]
    fn jitter_widens_the_window() {
        let t = SporadicTask::builder("t")
            .wcet(Cycles(1))
            .period(Cycles(10))
            .jitter(Cycles(5))
            .build()
            .unwrap();
        // window 6 + jitter 5 = 11 → 2 jobs.
        assert_eq!(t.jobs_in(Cycles(6)), 2);
        assert_eq!(t.jobs_in(Cycles(5)), 1);
    }

    #[test]
    fn utilization() {
        let t = SporadicTask::builder("t")
            .wcet(Cycles(25))
            .period(Cycles(100))
            .build()
            .unwrap();
        assert_eq!(t.utilization(), 0.25);
    }

    #[test]
    fn demand_round_trips() {
        let mut d = BankDemand::new();
        d.add(BankId(0), 3);
        d.add(BankId(2), 7);
        let t = SporadicTask::builder("t")
            .wcet(Cycles(1))
            .period(Cycles(10))
            .demand(d.clone())
            .build()
            .unwrap();
        assert_eq!(t.demand(), &d);
        assert_eq!(t.demand().total(), 10);
    }
}
