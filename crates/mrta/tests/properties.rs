//! Property-based tests for the MRTA analysis: structural invariants and
//! soundness against the cycle-stepped sporadic simulator.

use mia_arbiter::RoundRobin;
use mia_model::{BankDemand, BankId, Cycles, Platform};
use mia_mrta::{
    analyze, analyze_with, simulate_sporadic, MrtaOptions, SporadicSimConfig, SporadicSystem,
    SporadicTask,
};
use proptest::prelude::*;

/// A small random sporadic system: up to 6 tasks on up to 3 cores sharing
/// up to 2 banks, with short periods so the simulated hyperperiod stays
/// tiny.
fn arb_system() -> impl Strategy<Value = SporadicSystem> {
    let task = (1u64..=8, 1u64..=3, 0u64..=4, 0usize..2).prop_map(
        |(period_units, wcet, accesses, bank)| {
            // Periods from {16, 32, 48, ..., 128}: multiples of 16 keep the
            // hyperperiod at ≤ 2^7·... small. WCET well under the period.
            let period = Cycles(16 * period_units);
            let wcet = Cycles(wcet + accesses); // wcet covers own accesses
            let mut demand = BankDemand::new();
            if accesses > 0 {
                demand.add(BankId::from_index(bank), accesses);
            }
            (period, wcet, demand)
        },
    );
    (proptest::collection::vec(task, 1..=6), 1usize..=3).prop_map(|(specs, cores)| {
        let tasks: Vec<SporadicTask> = specs
            .iter()
            .enumerate()
            .map(|(i, (period, wcet, demand))| {
                SporadicTask::builder(format!("t{i}"))
                    .wcet(*wcet)
                    .period(*period)
                    .demand(demand.clone())
                    .build()
                    .expect("valid task")
            })
            .collect();
        let assignment: Vec<usize> = (0..tasks.len()).map(|i| i % cores).collect();
        SporadicSystem::new(tasks, &assignment, Platform::new(cores, 2)).expect("valid system")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A response-time bound is never below the task's isolation WCET.
    #[test]
    fn response_dominates_wcet(system in arb_system()) {
        let report = analyze(&system, &RoundRobin::new());
        for (i, task) in system.tasks().iter().enumerate() {
            prop_assert!(report.response(i) >= task.wcet());
        }
    }

    /// Disabling memory interference can only shrink response times.
    #[test]
    fn memory_interference_only_adds_delay(system in arb_system()) {
        let rr = RoundRobin::new();
        let with_mem = analyze(&system, &rr);
        let without =
            analyze_with(&system, &rr, &MrtaOptions::new().memory_interference(false));
        for i in 0..system.len() {
            // Compare only tasks whose fixed point converged in both runs.
            if with_mem.verdict(i).schedulable {
                prop_assert!(without.response(i) <= with_mem.response(i));
            }
        }
    }

    /// The verdict decomposition adds up: R = C + cpu + mem.
    #[test]
    fn response_decomposition_is_consistent(system in arb_system()) {
        let report = analyze(&system, &RoundRobin::new());
        for (i, task) in system.tasks().iter().enumerate() {
            let v = report.verdict(i);
            if v.schedulable {
                prop_assert_eq!(
                    v.response,
                    task.wcet() + v.cpu_interference + v.memory_interference
                );
            }
        }
    }

    /// Soundness: on schedulable systems, the worst response the simulator
    /// observes never exceeds the analysed bound.
    #[test]
    fn simulation_never_exceeds_bound(system in arb_system()) {
        let report = analyze(&system, &RoundRobin::new());
        prop_assume!(report.schedulable());
        let sim = simulate_sporadic(&system, &SporadicSimConfig::new());
        for i in 0..system.len() {
            if let Some(observed) = sim.max_response(i) {
                prop_assert!(
                    observed <= report.response(i),
                    "task {}: observed {} > bound {}",
                    i, observed, report.response(i)
                );
            }
        }
    }

    /// On schedulable systems the simulator sees no deadline miss.
    #[test]
    fn schedulable_systems_simulate_cleanly(system in arb_system()) {
        let report = analyze(&system, &RoundRobin::new());
        prop_assume!(report.schedulable());
        let sim = simulate_sporadic(&system, &SporadicSimConfig::new());
        prop_assert!(sim.all_deadlines_met());
    }

    /// Dropping a task never increases anyone else's response time
    /// (§II.C: "adding a new task … can only increase the interference").
    #[test]
    fn removing_a_task_is_monotone(system in arb_system()) {
        prop_assume!(system.len() >= 2);
        let rr = RoundRobin::new();
        let full = analyze(&system, &rr);

        // Rebuild without the last task, keeping priorities' relative order
        // (deadline-monotonic assignment is order-preserving under removal).
        let reduced_tasks: Vec<SporadicTask> =
            system.tasks()[..system.len() - 1].to_vec();
        let assignment: Vec<usize> =
            (0..reduced_tasks.len()).map(|i| system.core_of(i).index()).collect();
        let reduced = SporadicSystem::new(
            reduced_tasks,
            &assignment,
            system.platform().clone(),
        ).expect("still valid");
        let report = analyze(&reduced, &rr);
        for i in 0..reduced.len() {
            if full.verdict(i).schedulable {
                prop_assert!(report.response(i) <= full.response(i));
            }
        }
    }
}
