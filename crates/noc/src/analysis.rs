//! Worst-case flow latency bounds.

use std::collections::BTreeMap;

use mia_model::Cycles;

use crate::{FlowSet, LinkId, Torus};

/// Timing parameters of the NoC links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocConfig {
    /// Cycles to serialize one payload word over a link.
    pub word_cycles: u64,
    /// Fixed per-packet overhead per link (header + routing decision).
    pub header_cycles: u64,
}

impl Default for NocConfig {
    /// One cycle per word, one header cycle per hop.
    fn default() -> Self {
        NocConfig {
            word_cycles: 1,
            header_cycles: 1,
        }
    }
}

impl NocConfig {
    /// Service time of one packet of `payload` words on one link.
    pub fn service(&self, payload: u64) -> Cycles {
        Cycles(self.header_cycles + self.word_cycles * payload)
    }
}

/// Computes a per-flow worst-case traversal latency, indexed by flow id.
///
/// The switching model is **store-and-forward** with per-link round-robin
/// arbitration over whole packets, one packet per flow:
///
/// * base latency — the packet is serialized once per hop:
///   `hops · service(payload)`,
/// * contention — on each link of the route, every *other* flow routed
///   over that link can be granted at most one packet service before ours
///   (round-robin over one-shot packets):
///   `Σ_{links} Σ_{other flows on link} service(their payload)`,
/// * release — the flow's injection instant is added, so bounds are
///   absolute delivery instants when releases are staggered.
///
/// The bound is conservative (a blocker ahead of us on several shared
/// links delays us on the first one only, but is charged on all); the
/// property tests check the simulator never exceeds it.
///
/// # Example
///
/// See the [crate-level documentation](crate).
pub fn worst_case_latencies(torus: &Torus, flows: &FlowSet, config: &NocConfig) -> Vec<Cycles> {
    // Map each link to the flows crossing it.
    let mut on_link: BTreeMap<LinkId, Vec<usize>> = BTreeMap::new();
    let routes: Vec<Vec<LinkId>> = flows
        .iter()
        .map(|(_, f)| torus.route(f.src, f.dst))
        .collect();
    for (i, route) in routes.iter().enumerate() {
        for &l in route {
            on_link.entry(l).or_default().push(i);
        }
    }
    flows
        .iter()
        .map(|(id, f)| {
            let route = &routes[id.index()];
            let mut latency = f.release;
            // Serialization per hop.
            latency += Cycles(route.len() as u64) * config.service(f.payload).as_u64();
            // Contention per link.
            for l in route {
                for &other in &on_link[l] {
                    if other != id.index() {
                        let g = flows.flow(crate::FlowId(other as u32));
                        latency += config.service(g.payload);
                    }
                }
            }
            latency
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Flow;

    #[test]
    fn lone_flow_pays_serialization_only() {
        let t = Torus::new(4, 4);
        let mut flows = FlowSet::new();
        let f = flows.add(Flow::new(t.node(0, 0), t.node(2, 1), 10));
        let lat = worst_case_latencies(&t, &flows, &NocConfig::default());
        // 3 hops × (1 header + 10 words).
        assert_eq!(lat[f.index()], Cycles(33));
    }

    #[test]
    fn zero_hop_flow_is_instant() {
        let t = Torus::new(2, 2);
        let mut flows = FlowSet::new();
        let f = flows.add(Flow::new(t.node(0, 0), t.node(0, 0), 100));
        let lat = worst_case_latencies(&t, &flows, &NocConfig::default());
        assert_eq!(lat[f.index()], Cycles::ZERO);
    }

    #[test]
    fn shared_link_charges_the_other_packet() {
        let t = Torus::new(4, 1);
        let mut flows = FlowSet::new();
        // Both cross link (1,0)→(2,0).
        let a = flows.add(Flow::new(t.node(0, 0), t.node(2, 0), 5));
        let b = flows.add(Flow::new(t.node(1, 0), t.node(2, 0), 7));
        let lat = worst_case_latencies(&t, &flows, &NocConfig::default());
        // a: 2 hops × 6 + one blocking of b's 8 = 20.
        assert_eq!(lat[a.index()], Cycles(20));
        // b: 1 hop × 8 + one blocking of a's 6 = 14.
        assert_eq!(lat[b.index()], Cycles(14));
    }

    #[test]
    fn disjoint_routes_do_not_interact() {
        let t = Torus::new(4, 4);
        let mut flows = FlowSet::new();
        let a = flows.add(Flow::new(t.node(0, 0), t.node(1, 0), 4));
        let b = flows.add(Flow::new(t.node(0, 2), t.node(1, 2), 4));
        let lat = worst_case_latencies(&t, &flows, &NocConfig::default());
        assert_eq!(lat[a.index()], lat[b.index()]);
        assert_eq!(lat[a.index()], Cycles(5));
    }

    #[test]
    fn release_offsets_are_absolute() {
        let t = Torus::new(2, 1);
        let mut flows = FlowSet::new();
        let f = flows.add(Flow::new(t.node(0, 0), t.node(1, 0), 3).released_at(Cycles(100)));
        let lat = worst_case_latencies(&t, &flows, &NocConfig::default());
        assert_eq!(lat[f.index()], Cycles(104));
    }

    #[test]
    fn custom_timing_scales() {
        let t = Torus::new(2, 1);
        let mut flows = FlowSet::new();
        let f = flows.add(Flow::new(t.node(0, 0), t.node(1, 0), 4));
        let cfg = NocConfig {
            word_cycles: 3,
            header_cycles: 2,
        };
        let lat = worst_case_latencies(&t, &flows, &cfg);
        assert_eq!(lat[f.index()], Cycles(2 + 12));
    }
}
