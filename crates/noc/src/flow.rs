//! Data flows over the NoC.

use std::fmt;

use mia_model::Cycles;

use crate::NodeId;

/// Identifier of a flow within a [`FlowSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

impl FlowId {
    /// The flow's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A one-shot data transfer: `payload` words from `src` to `dst`,
/// injected at `release`.
///
/// One flow models one inter-cluster dependency edge of a task graph (the
/// words a producer writes to a consumer's cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Source cluster.
    pub src: NodeId,
    /// Destination cluster.
    pub dst: NodeId,
    /// Payload size in words (one flit per word).
    pub payload: u64,
    /// Injection instant (defaults to 0).
    pub release: Cycles,
}

impl Flow {
    /// A flow released at time zero.
    pub fn new(src: NodeId, dst: NodeId, payload: u64) -> Self {
        Flow {
            src,
            dst,
            payload,
            release: Cycles::ZERO,
        }
    }

    /// Sets the injection instant.
    pub fn released_at(mut self, release: Cycles) -> Self {
        self.release = release;
        self
    }
}

/// An indexed collection of flows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowSet {
    flows: Vec<Flow>,
}

impl FlowSet {
    /// An empty set.
    pub fn new() -> Self {
        FlowSet::default()
    }

    /// Adds a flow and returns its id.
    pub fn add(&mut self, flow: Flow) -> FlowId {
        let id = FlowId(self.flows.len() as u32);
        self.flows.push(flow);
        id
    }

    /// The flow with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn flow(&self, id: FlowId) -> Flow {
        self.flows[id.index()]
    }

    /// All flows, by id.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, Flow)> + '_ {
        self.flows
            .iter()
            .enumerate()
            .map(|(i, &f)| (FlowId(i as u32), f))
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True if the set has no flows.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }
}

impl FromIterator<Flow> for FlowSet {
    fn from_iter<I: IntoIterator<Item = Flow>>(iter: I) -> Self {
        FlowSet {
            flows: iter.into_iter().collect(),
        }
    }
}

impl Extend<Flow> for FlowSet {
    fn extend<I: IntoIterator<Item = Flow>>(&mut self, iter: I) {
        self.flows.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Torus;

    #[test]
    fn ids_are_dense() {
        let t = Torus::new(2, 2);
        let mut set = FlowSet::new();
        let a = set.add(Flow::new(t.node(0, 0), t.node(1, 0), 4));
        let b = set.add(Flow::new(t.node(1, 1), t.node(0, 0), 8));
        assert_eq!(a, FlowId(0));
        assert_eq!(b, FlowId(1));
        assert_eq!(set.len(), 2);
        assert_eq!(set.flow(b).payload, 8);
        assert_eq!(set.iter().count(), 2);
        assert_eq!(a.to_string(), "f0");
    }

    #[test]
    fn collect_and_extend() {
        let t = Torus::new(2, 2);
        let mut set: FlowSet = [Flow::new(t.node(0, 0), t.node(1, 1), 1)]
            .into_iter()
            .collect();
        set.extend([Flow::new(t.node(1, 0), t.node(0, 1), 2)]);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }

    #[test]
    fn released_at_sets_release() {
        let t = Torus::new(2, 2);
        let f = Flow::new(t.node(0, 0), t.node(1, 0), 4).released_at(Cycles(7));
        assert_eq!(f.release, Cycles(7));
    }
}
