//! Inter-cluster network-on-chip model — the many-core substrate *around*
//! the paper's compute cluster.
//!
//! The DATE 2020 paper analyses memory interference **inside** one
//! Kalray MPPA-256 compute cluster (16 cores, 16 SMEM banks). The full
//! chip has 16 such clusters connected by a 2D-torus network-on-chip;
//! applications spanning clusters receive their inputs over that NoC, so
//! a task's *minimal release date* (the `min_rel` input of Algorithm 1)
//! must cover the worst-case arrival of remote data.
//!
//! This crate models that substrate:
//!
//! * [`Torus`] — a 2D torus of routers with X-then-Y dimension-order
//!   routing (deadlock-free, the MPPA D-NoC discipline) and shortest-wrap
//!   direction choice,
//! * [`Flow`] / [`FlowSet`] — one-shot data flows (source cluster,
//!   destination cluster, payload words),
//! * [`worst_case_latencies`] — per-flow worst-case traversal bounds
//!   under store-and-forward switching with per-link round-robin
//!   arbitration (each interfering packet blocks at most one service time
//!   per shared link),
//! * [`simulate_flows`] — a cycle-stepped packet simulator used by the
//!   property tests to check the bounds from below.
//!
//! # Example
//!
//! Bound the delivery of two flows that share a link, then use the bound
//! as a task's minimal release date:
//!
//! ```
//! use mia_model::Cycles;
//! use mia_noc::{worst_case_latencies, Flow, FlowSet, NocConfig, Torus};
//!
//! let torus = Torus::new(4, 4); // the MPPA-256 cluster grid
//! let mut flows = FlowSet::new();
//! let f0 = flows.add(Flow::new(torus.node(0, 0), torus.node(2, 0), 16));
//! let f1 = flows.add(Flow::new(torus.node(1, 0), torus.node(3, 0), 16));
//! let bounds = worst_case_latencies(&torus, &flows, &NocConfig::default());
//! // f0 crosses links (0,0)→(1,0)→(2,0); f1 shares the second hop.
//! assert!(bounds[f0.index()] >= Cycles(2 * 17)); // two store-and-forward hops
//! assert!(bounds[f1.index()] >= bounds[f0.index()] - Cycles(17));
//! ```

mod analysis;
mod flow;
mod sim;
mod topology;

pub use analysis::{worst_case_latencies, NocConfig};
pub use flow::{Flow, FlowId, FlowSet};
pub use sim::{simulate_flows, NocSimResult};
pub use topology::{Direction, LinkId, NodeId, Torus};
