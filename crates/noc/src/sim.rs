//! A cycle-stepped store-and-forward packet simulator, used to validate
//! the analytical bounds from below.

use std::collections::BTreeMap;

use mia_model::Cycles;

use crate::{FlowId, FlowSet, LinkId, NocConfig, Torus};

/// Delivery instants observed by one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NocSimResult {
    delivered: Vec<Cycles>,
}

impl NocSimResult {
    /// The instant the flow's packet fully arrived at its destination.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of range.
    pub fn delivered(&self, flow: FlowId) -> Cycles {
        self.delivered[flow.index()]
    }

    /// The latest delivery.
    pub fn makespan(&self) -> Cycles {
        self.delivered.iter().copied().max().unwrap_or(Cycles::ZERO)
    }
}

/// One in-flight packet.
struct Packet {
    route: Vec<LinkId>,
    /// Next hop to traverse.
    hop: usize,
    /// Cycles of service remaining on the current link (0 = waiting for a
    /// grant).
    serving: u64,
    release: Cycles,
    delivered: Option<Cycles>,
}

/// Simulates the flow set: every packet traverses its dimension-order
/// route hop by hop; each link serves one packet at a time, picking among
/// the waiting packets in round-robin order (rotating by flow id).
///
/// The returned delivery instants are one concrete execution — by
/// construction they never exceed [`worst_case_latencies`]
/// (property-tested in `tests/bounds.rs`).
///
/// [`worst_case_latencies`]: crate::worst_case_latencies
pub fn simulate_flows(torus: &Torus, flows: &FlowSet, config: &NocConfig) -> NocSimResult {
    let n = flows.len();
    let mut packets: Vec<Packet> = flows
        .iter()
        .map(|(_, f)| {
            let route = torus.route(f.src, f.dst);
            Packet {
                route,
                hop: 0,
                serving: 0,
                release: f.release,
                delivered: None,
            }
        })
        .collect();

    // Zero-hop flows deliver at their release instant.
    for p in &mut packets {
        if p.route.is_empty() {
            p.delivered = Some(p.release);
        }
    }

    let mut rr: BTreeMap<LinkId, usize> = BTreeMap::new();
    let mut link_busy: BTreeMap<LinkId, usize> = BTreeMap::new(); // packet being served
    let mut t = Cycles::ZERO;
    let total_work: u64 = flows
        .iter()
        .map(|(_, f)| config.service(f.payload).as_u64() * torus.hops(f.src, f.dst) as u64)
        .sum();
    let horizon = Cycles(total_work * (n as u64 + 1) + 1_000)
        + flows
            .iter()
            .map(|(_, f)| f.release)
            .max()
            .unwrap_or(Cycles::ZERO);

    while packets.iter().any(|p| p.delivered.is_none()) && t < horizon {
        // Grant free links to waiting packets, round-robin by flow index.
        let mut waiting: BTreeMap<LinkId, Vec<usize>> = BTreeMap::new();
        for (i, p) in packets.iter().enumerate() {
            if p.delivered.is_some() || p.serving > 0 || p.release > t {
                continue;
            }
            waiting.entry(p.route[p.hop]).or_default().push(i);
        }
        for (link, waiters) in waiting {
            if link_busy.contains_key(&link) {
                continue;
            }
            let ptr = rr.entry(link).or_insert(0);
            let winner = *waiters.iter().find(|&&i| i >= *ptr).unwrap_or(&waiters[0]);
            *ptr = winner + 1;
            let payload = flows.flow(FlowId(winner as u32)).payload;
            packets[winner].serving = config.service(payload).as_u64();
            link_busy.insert(link, winner);
        }

        // Advance service by one cycle.
        let mut freed: Vec<LinkId> = Vec::new();
        for (&link, &i) in &link_busy {
            let p = &mut packets[i];
            p.serving -= 1;
            if p.serving == 0 {
                p.hop += 1;
                freed.push(link);
                if p.hop == p.route.len() {
                    p.delivered = Some(t + Cycles(1));
                }
            }
        }
        for link in freed {
            link_busy.remove(&link);
        }
        t += Cycles(1);
    }

    NocSimResult {
        delivered: packets
            .into_iter()
            .map(|p| p.delivered.unwrap_or(Cycles::MAX))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Flow;

    #[test]
    fn lone_packet_arrives_after_serialization() {
        let t = Torus::new(4, 4);
        let mut flows = FlowSet::new();
        let f = flows.add(Flow::new(t.node(0, 0), t.node(2, 0), 10));
        let r = simulate_flows(&t, &flows, &NocConfig::default());
        // 2 hops × 11 cycles of store-and-forward.
        assert_eq!(r.delivered(f), Cycles(22));
    }

    #[test]
    fn zero_hop_packet_is_instant() {
        let t = Torus::new(2, 2);
        let mut flows = FlowSet::new();
        let f = flows.add(Flow::new(t.node(1, 1), t.node(1, 1), 50).released_at(Cycles(9)));
        let r = simulate_flows(&t, &flows, &NocConfig::default());
        assert_eq!(r.delivered(f), Cycles(9));
    }

    #[test]
    fn contending_packets_serialize_on_the_shared_link() {
        let t = Torus::new(4, 1);
        let mut flows = FlowSet::new();
        let a = flows.add(Flow::new(t.node(1, 0), t.node(2, 0), 5));
        let b = flows.add(Flow::new(t.node(1, 0), t.node(2, 0), 5));
        let r = simulate_flows(&t, &flows, &NocConfig::default());
        // One serializes 0..6, the other 6..12.
        let (first, second) = (
            r.delivered(a).min(r.delivered(b)),
            r.delivered(a).max(r.delivered(b)),
        );
        assert_eq!(first, Cycles(6));
        assert_eq!(second, Cycles(12));
    }

    #[test]
    fn release_delays_injection() {
        let t = Torus::new(2, 1);
        let mut flows = FlowSet::new();
        let f = flows.add(Flow::new(t.node(0, 0), t.node(1, 0), 3).released_at(Cycles(10)));
        let r = simulate_flows(&t, &flows, &NocConfig::default());
        assert_eq!(r.delivered(f), Cycles(14));
        assert_eq!(r.makespan(), Cycles(14));
    }

    #[test]
    fn empty_flow_set() {
        let t = Torus::new(2, 2);
        let r = simulate_flows(&t, &FlowSet::new(), &NocConfig::default());
        assert_eq!(r.makespan(), Cycles::ZERO);
    }
}
