//! The 2D torus and its dimension-order routing.

use std::fmt;

/// A router/cluster position on the torus grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId {
    /// Column (X coordinate).
    pub x: u16,
    /// Row (Y coordinate).
    pub y: u16,
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// The four mesh directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Towards larger X (wrapping).
    East,
    /// Towards smaller X (wrapping).
    West,
    /// Towards larger Y (wrapping).
    North,
    /// Towards smaller Y (wrapping).
    South,
}

/// A directed link: the output port of `from` towards `dir`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId {
    /// The upstream router.
    pub from: NodeId,
    /// Encoded direction (see [`Direction`]); kept as the raw discriminant
    /// so `LinkId` stays `Ord` for use as a map key.
    dir: u8,
}

impl LinkId {
    fn new(from: NodeId, dir: Direction) -> Self {
        LinkId {
            from,
            dir: dir as u8,
        }
    }

    /// The link's direction.
    pub fn direction(&self) -> Direction {
        match self.dir {
            0 => Direction::East,
            1 => Direction::West,
            2 => Direction::North,
            _ => Direction::South,
        }
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let arrow = match self.direction() {
            Direction::East => "→E",
            Direction::West => "→W",
            Direction::North => "→N",
            Direction::South => "→S",
        };
        write!(f, "{}{arrow}", self.from)
    }
}

/// A `cols × rows` 2D torus (every row and column wraps around), the
/// MPPA-256 inter-cluster topology (4 × 4 compute clusters).
///
/// Routing is X-then-Y dimension-order with the shorter wrap direction
/// per dimension (ties resolved towards East/North) — deterministic and
/// deadlock-free, which is what a worst-case analysis needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Torus {
    cols: u16,
    rows: u16,
}

impl Torus {
    /// A torus with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: u16, rows: u16) -> Self {
        assert!(cols > 0 && rows > 0, "torus dimensions must be positive");
        Torus { cols, rows }
    }

    /// The MPPA-256 compute-cluster grid (4 × 4).
    pub fn mppa256() -> Self {
        Torus::new(4, 4)
    }

    /// A 4 × 8 torus: two MPPA-256 compute-cluster grids side by side,
    /// the ROADMAP's "larger NoC topology" axis. Non-square and with an
    /// even ring of 8, so wrap-around distances of exactly half the ring
    /// (4 hops) occur — the tie-break cases `route`/`hops` must agree on.
    pub fn torus4x8() -> Self {
        Torus::new(4, 8)
    }

    /// Number of columns.
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// True for the degenerate 0-node torus (cannot be constructed; kept
    /// for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The node at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the grid.
    pub fn node(&self, x: u16, y: u16) -> NodeId {
        assert!(x < self.cols && y < self.rows, "({x},{y}) outside torus");
        NodeId { x, y }
    }

    /// All nodes, row-major.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.rows).flat_map(move |y| (0..self.cols).map(move |x| NodeId { x, y }))
    }

    /// The neighbour of `node` in `dir` (wrapping).
    pub fn step(&self, node: NodeId, dir: Direction) -> NodeId {
        match dir {
            Direction::East => NodeId {
                x: (node.x + 1) % self.cols,
                y: node.y,
            },
            Direction::West => NodeId {
                x: (node.x + self.cols - 1) % self.cols,
                y: node.y,
            },
            Direction::North => NodeId {
                x: node.x,
                y: (node.y + 1) % self.rows,
            },
            Direction::South => NodeId {
                x: node.x,
                y: (node.y + self.rows - 1) % self.rows,
            },
        }
    }

    /// The X-then-Y dimension-order route from `src` to `dst` as a list of
    /// directed links (empty when `src == dst`).
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        let mut links = Vec::new();
        let mut at = src;
        // X dimension: choose the shorter wrap (ties → East).
        let east = (dst.x + self.cols - at.x) % self.cols;
        let west = (at.x + self.cols - dst.x) % self.cols;
        let (steps, dir) = if east <= west {
            (east, Direction::East)
        } else {
            (west, Direction::West)
        };
        for _ in 0..steps {
            links.push(LinkId::new(at, dir));
            at = self.step(at, dir);
        }
        // Y dimension (ties → North).
        let north = (dst.y + self.rows - at.y) % self.rows;
        let south = (at.y + self.rows - dst.y) % self.rows;
        let (steps, dir) = if north <= south {
            (north, Direction::North)
        } else {
            (south, Direction::South)
        };
        for _ in 0..steps {
            links.push(LinkId::new(at, dir));
            at = self.step(at, dir);
        }
        debug_assert_eq!(at, dst);
        links
    }

    /// Number of hops of the dimension-order route.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        let east = (dst.x + self.cols - src.x) % self.cols;
        let west = (src.x + self.cols - dst.x) % self.cols;
        let north = (dst.y + self.rows - src.y) % self.rows;
        let south = (src.y + self.rows - dst.y) % self.rows;
        east.min(west) as usize + north.min(south) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_display_and_bounds() {
        let t = Torus::new(4, 2);
        assert_eq!(t.node(3, 1).to_string(), "(3,1)");
        assert_eq!(t.len(), 8);
        assert!(!t.is_empty());
        assert_eq!(t.nodes().count(), 8);
    }

    #[test]
    #[should_panic(expected = "outside torus")]
    fn out_of_grid_node_panics() {
        let _ = Torus::new(2, 2).node(2, 0);
    }

    #[test]
    fn wrapping_steps() {
        let t = Torus::new(4, 4);
        assert_eq!(t.step(t.node(3, 0), Direction::East), t.node(0, 0));
        assert_eq!(t.step(t.node(0, 0), Direction::West), t.node(3, 0));
        assert_eq!(t.step(t.node(0, 3), Direction::North), t.node(0, 0));
        assert_eq!(t.step(t.node(0, 0), Direction::South), t.node(0, 3));
    }

    #[test]
    fn route_is_x_then_y() {
        let t = Torus::new(4, 4);
        let r = t.route(t.node(0, 0), t.node(2, 1));
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].from, t.node(0, 0));
        assert!(matches!(r[0].direction(), Direction::East));
        assert!(matches!(r[1].direction(), Direction::East));
        assert!(matches!(r[2].direction(), Direction::North));
        assert_eq!(r[2].from, t.node(2, 0));
    }

    #[test]
    fn route_takes_the_short_wrap() {
        let t = Torus::new(4, 4);
        // 0 → 3 is one hop West (wrap), not three East.
        let r = t.route(t.node(0, 0), t.node(3, 0));
        assert_eq!(r.len(), 1);
        assert!(matches!(r[0].direction(), Direction::West));
        // Y: 0 → 3 is one hop South.
        let r = t.route(t.node(0, 0), t.node(0, 3));
        assert_eq!(r.len(), 1);
        assert!(matches!(r[0].direction(), Direction::South));
    }

    #[test]
    fn self_route_is_empty() {
        let t = Torus::new(3, 3);
        assert!(t.route(t.node(1, 1), t.node(1, 1)).is_empty());
        assert_eq!(t.hops(t.node(1, 1), t.node(1, 1)), 0);
    }

    #[test]
    fn hops_matches_route_length() {
        let t = Torus::new(5, 3);
        for a in t.nodes() {
            for b in t.nodes() {
                assert_eq!(t.route(a, b).len(), t.hops(a, b), "{a} → {b}");
            }
        }
    }

    #[test]
    fn max_hops_is_half_each_dimension() {
        let t = Torus::new(4, 4);
        let worst = t
            .nodes()
            .flat_map(|a| t.nodes().map(move |b| t.hops(a, b)))
            .max()
            .unwrap();
        assert_eq!(worst, 2 + 2);
    }

    #[test]
    fn link_display() {
        let t = Torus::new(2, 2);
        let r = t.route(t.node(0, 0), t.node(1, 1));
        assert_eq!(r[0].to_string(), "(0,0)→E");
    }
}
