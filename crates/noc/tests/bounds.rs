//! The analytical latency bounds dominate every simulated execution, for
//! random flow sets on random tori.

use mia_model::Cycles;
use mia_noc::{simulate_flows, worst_case_latencies, Flow, FlowSet, NocConfig, Torus};
use proptest::prelude::*;

fn arb_case() -> impl Strategy<Value = (Torus, FlowSet, NocConfig)> {
    let dims = (1u16..=4, 1u16..=4);
    let cfg = (1u64..=3, 0u64..=2).prop_map(|(word_cycles, header_cycles)| NocConfig {
        word_cycles,
        header_cycles,
    });
    (
        dims,
        cfg,
        proptest::collection::vec((any::<u16>(), any::<u16>(), 1u64..=16, 0u64..=8), 0..10),
    )
        .prop_map(|((cols, rows), cfg, specs)| {
            let torus = Torus::new(cols, rows);
            let flows: FlowSet = specs
                .into_iter()
                .map(|(sx, sy, payload, release)| {
                    Flow::new(
                        torus.node(sx % cols, sy % rows),
                        torus.node((sx / 7) % cols, (sy / 5) % rows),
                        payload,
                    )
                    .released_at(Cycles(release))
                })
                .collect();
            (torus, flows, cfg)
        })
}

/// Exhaustive route/hops audit of one torus: the dimension-order route
/// is a valid link path of exactly `hops` steps, and no pair is further
/// apart than half of each ring (shorter-wrap routing).
fn audit_routing(torus: &Torus) {
    let worst = (torus.cols() / 2 + torus.rows() / 2) as usize;
    for a in torus.nodes() {
        for b in torus.nodes() {
            let route = torus.route(a, b);
            let hops = torus.hops(a, b);
            assert_eq!(route.len(), hops, "{a} → {b} on {torus:?}");
            assert!(hops <= worst, "{a} → {b} on {torus:?}: {hops} > {worst}");
            // The route is a connected path from a to b.
            let mut at = a;
            for link in &route {
                assert_eq!(link.from, at, "{a} → {b}: broken link chain");
                at = torus.step(at, link.direction());
            }
            assert_eq!(at, b, "{a} → {b}: route ends elsewhere");
        }
    }
}

/// The ISSUE-flagged audit: on non-square tori with even dimensions the
/// wrap-around distance can be exactly half the ring, where an
/// inconsistent tie-break between `route` (which walks) and `hops`
/// (which counts) would diverge. Audited exhaustively on the 4×8
/// preset and its transpose: both pick East/North on ties, so they
/// agree — this test pins that.
#[test]
fn route_and_hops_agree_on_even_non_square_tori() {
    audit_routing(&Torus::torus4x8());
    audit_routing(&Torus::new(8, 4));
    audit_routing(&Torus::mppa256());
    audit_routing(&Torus::new(1, 6));
    audit_routing(&Torus::new(5, 2));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Randomized version of the routing audit over arbitrary dimensions
    /// (odd, even, degenerate 1×k rings).
    #[test]
    fn route_matches_hops_on_random_tori(cols in 1u16..=9, rows in 1u16..=9) {
        audit_routing(&Torus::new(cols, rows));
    }

    /// Soundness: no simulated delivery exceeds its analytical bound.
    #[test]
    fn simulation_never_exceeds_bound((torus, flows, cfg) in arb_case()) {
        let bounds = worst_case_latencies(&torus, &flows, &cfg);
        let sim = simulate_flows(&torus, &flows, &cfg);
        for (id, _) in flows.iter() {
            prop_assert!(
                sim.delivered(id) <= bounds[id.index()],
                "{id}: simulated {} > bound {}",
                sim.delivered(id),
                bounds[id.index()]
            );
        }
    }

    /// Adding a flow never improves anyone's bound (interference
    /// monotonicity, the NoC analogue of the paper's §II.C assumption).
    #[test]
    fn bounds_are_monotone_in_the_flow_set((torus, flows, cfg) in arb_case()) {
        prop_assume!(!flows.is_empty());
        let full = worst_case_latencies(&torus, &flows, &cfg);
        let reduced: FlowSet = flows
            .iter()
            .take(flows.len() - 1)
            .map(|(_, f)| f)
            .collect();
        let fewer = worst_case_latencies(&torus, &reduced, &cfg);
        for i in 0..reduced.len() {
            prop_assert!(fewer[i] <= full[i]);
        }
    }

    /// Bounds grow with payload.
    #[test]
    fn bounds_are_monotone_in_payload((torus, flows, cfg) in arb_case()) {
        prop_assume!(!flows.is_empty());
        let base = worst_case_latencies(&torus, &flows, &cfg);
        let grown: FlowSet = flows
            .iter()
            .map(|(_, f)| Flow { payload: f.payload + 1, ..f })
            .collect();
        let bigger = worst_case_latencies(&torus, &grown, &cfg);
        for (id, f) in flows.iter() {
            if torus.hops(f.src, f.dst) > 0 {
                prop_assert!(bigger[id.index()] > base[id.index()]);
            }
        }
    }
}

/// The 4×8 preset carries a full analysis: bulk flows spanning the long
/// dimension (including exact half-ring wraps) get sound, finite bounds.
#[test]
fn torus4x8_analysis_is_sound() {
    let torus = Torus::torus4x8();
    assert_eq!((torus.cols(), torus.rows()), (4, 8));
    assert_eq!(torus.len(), 32);
    let mut flows = FlowSet::new();
    // A frame crossing exactly half of each ring (2 + 4 hops)…
    let frame = flows.add(Flow::new(torus.node(0, 0), torus.node(2, 4), 96));
    assert_eq!(torus.hops(torus.node(0, 0), torus.node(2, 4)), 6);
    // …contended by bulk traffic along the long dimension and a local
    // flow sitting on the frame's own column segment (X-then-Y routing
    // climbs column 2 from y=0 to y=4).
    let bulk = flows.add(Flow::new(torus.node(0, 7), torus.node(0, 3), 256));
    let local = flows.add(Flow::new(torus.node(2, 1), torus.node(2, 3), 16));
    let cfg = NocConfig::default();
    let bounds = worst_case_latencies(&torus, &flows, &cfg);
    let sim = simulate_flows(&torus, &flows, &cfg);
    for id in [frame, bulk, local] {
        assert!(sim.delivered(id) <= bounds[id.index()], "{id}");
    }
    // The frame and the local flow share the (2,1)→(2,2) link, so the
    // frame's bound must exceed its isolation latency.
    let alone: FlowSet =
        std::iter::once(Flow::new(torus.node(0, 0), torus.node(2, 4), 96)).collect();
    let isolated = worst_case_latencies(&torus, &alone, &cfg);
    assert!(bounds[frame.index()] > isolated[0]);
}
