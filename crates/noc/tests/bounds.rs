//! The analytical latency bounds dominate every simulated execution, for
//! random flow sets on random tori.

use mia_model::Cycles;
use mia_noc::{simulate_flows, worst_case_latencies, Flow, FlowSet, NocConfig, Torus};
use proptest::prelude::*;

fn arb_case() -> impl Strategy<Value = (Torus, FlowSet, NocConfig)> {
    let dims = (1u16..=4, 1u16..=4);
    let cfg = (1u64..=3, 0u64..=2).prop_map(|(word_cycles, header_cycles)| NocConfig {
        word_cycles,
        header_cycles,
    });
    (
        dims,
        cfg,
        proptest::collection::vec((any::<u16>(), any::<u16>(), 1u64..=16, 0u64..=8), 0..10),
    )
        .prop_map(|((cols, rows), cfg, specs)| {
            let torus = Torus::new(cols, rows);
            let flows: FlowSet = specs
                .into_iter()
                .map(|(sx, sy, payload, release)| {
                    Flow::new(
                        torus.node(sx % cols, sy % rows),
                        torus.node((sx / 7) % cols, (sy / 5) % rows),
                        payload,
                    )
                    .released_at(Cycles(release))
                })
                .collect();
            (torus, flows, cfg)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Soundness: no simulated delivery exceeds its analytical bound.
    #[test]
    fn simulation_never_exceeds_bound((torus, flows, cfg) in arb_case()) {
        let bounds = worst_case_latencies(&torus, &flows, &cfg);
        let sim = simulate_flows(&torus, &flows, &cfg);
        for (id, _) in flows.iter() {
            prop_assert!(
                sim.delivered(id) <= bounds[id.index()],
                "{id}: simulated {} > bound {}",
                sim.delivered(id),
                bounds[id.index()]
            );
        }
    }

    /// Adding a flow never improves anyone's bound (interference
    /// monotonicity, the NoC analogue of the paper's §II.C assumption).
    #[test]
    fn bounds_are_monotone_in_the_flow_set((torus, flows, cfg) in arb_case()) {
        prop_assume!(!flows.is_empty());
        let full = worst_case_latencies(&torus, &flows, &cfg);
        let reduced: FlowSet = flows
            .iter()
            .take(flows.len() - 1)
            .map(|(_, f)| f)
            .collect();
        let fewer = worst_case_latencies(&torus, &reduced, &cfg);
        for i in 0..reduced.len() {
            prop_assert!(fewer[i] <= full[i]);
        }
    }

    /// Bounds grow with payload.
    #[test]
    fn bounds_are_monotone_in_payload((torus, flows, cfg) in arb_case()) {
        prop_assume!(!flows.is_empty());
        let base = worst_case_latencies(&torus, &flows, &cfg);
        let grown: FlowSet = flows
            .iter()
            .map(|(_, f)| Flow { payload: f.payload + 1, ..f })
            .collect();
        let bigger = worst_case_latencies(&torus, &grown, &cfg);
        for (id, f) in flows.iter() {
            if torus.hops(f.src, f.dst) > 0 {
                prop_assert!(bigger[id.index()] > base[id.index()]);
            }
        }
    }
}
