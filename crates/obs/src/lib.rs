//! Runtime telemetry for the analyzer itself: metric registry + spans.
//!
//! The paper's pitch is scale, and every perf PR needs to see where the
//! cycles go. This crate is the stdlib-only instrumentation layer the
//! rest of the workspace records into:
//!
//! * [`Registry`] — named atomic [`Counter`]s, [`Gauge`]s and fixed
//!   log2-bucket latency [`Histogram`]s (p50/p90/p99/max derivable from
//!   the buckets). Snapshots serialize to JSON for the `mia serve`
//!   `metrics` method and the bench artefacts.
//! * [`span!`] — RAII phase timing with explicit thread ids and a
//!   monotonic clock, buffered per thread and drained with
//!   [`take_spans`] into Chrome trace-event JSON (`mia_trace`).
//!
//! # The enable-gate contract
//!
//! All *global* telemetry (the process registry, spans) sits behind a
//! single relaxed [`AtomicBool`]: the disabled path of every
//! instrumentation site is one load + one branch, so the analysis hot
//! loops stay unperturbed when nobody is profiling. Telemetry is
//! execution-side data in the sense of `mia_core`'s `ParallelInfo`: it
//! lives OFF `AnalysisStats` and off every compared report, so
//! conformance bit-identity holds with the gate on or off.
//!
//! Instantiated [`Registry`] values (the serve daemon owns one per
//! server) are *not* gated — a daemon's request histograms are part of
//! its service surface and always collected.

mod metrics;
mod span;

pub use metrics::{
    Counter, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot, NamedCounter, NamedHistogram,
    Registry, RegistrySnapshot,
};
pub use span::{now_ns, record_span, span, spans_dropped, take_spans, thread_id, SpanRecord};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The process-wide enable gate. Relaxed ordering is deliberate: the
/// gate only decides whether telemetry is *recorded*, never what the
/// analysis computes, so no site needs ordering guarantees from it.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when global telemetry collection is on.
///
/// Instrumentation sites call this first and skip all recording work
/// when it is off — one relaxed load + one branch.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns global telemetry collection on or off (the `--profile` flag).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide registry global instrumentation records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Serializes tests that touch the process-global gate or drain the
/// global span buffers (they would race inside one test binary).
#[cfg(test)]
pub(crate) fn test_gate_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<std::sync::Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_toggles_and_global_registry_is_one_instance() {
        let _serial = test_gate_lock();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        let a = global() as *const Registry;
        let b = global() as *const Registry;
        assert_eq!(a, b);
    }
}
