//! The metric registry: atomic counters, gauges and log2 histograms.
//!
//! Everything here is lock-free on the record path (the registry's name
//! map is only locked on handle lookup; hot sites cache the returned
//! `Arc` handles) and snapshot-consistent enough for monitoring: a
//! snapshot taken concurrently with writers may be mid-update by a few
//! observations, but every observation lands in exactly one bucket and
//! the per-histogram invariants (bucket sum == count) hold for any
//! quiescent read.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// Number of histogram buckets: one zero bucket + one per power of two
/// up to `u64::MAX` (bucket `i ≥ 1` covers `[2^(i-1), 2^i)`).
pub const BUCKETS: usize = 65;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomic up/down gauge (queue depth, busy workers).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log2 latency histogram.
///
/// Bucket 0 counts zero observations; bucket `i ≥ 1` counts values in
/// `[2^(i-1), 2^i)`, so any `u64` lands in exactly one bucket and
/// quantiles are derivable from the buckets alone (to within a factor
/// of two, tightened by the recorded exact maximum).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// The bucket index a value lands in.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the whole histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A serializable copy of a [`Histogram`], with quantile estimation and
/// order-free merging.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (`BUCKETS` entries; trailing empty
    /// buckets may be trimmed by [`HistogramSnapshot::trimmed`]).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, modulo 2^64.
    pub sum: u64,
    /// Exact maximum observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// The inclusive value range bucket `i` covers.
    fn bucket_range(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 0)
        } else if i >= 64 {
            (1 << 63, u64::MAX)
        } else {
            (1 << (i - 1), (1 << i) - 1)
        }
    }

    /// Bounds `(lo, hi)` bracketing the `q`-quantile (`0 ≤ q ≤ 1`) of
    /// the recorded distribution: the true nearest-rank quantile lies in
    /// `lo ..= hi`. Both are 0 for an empty histogram.
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        // Nearest-rank: the k-th smallest observation, 1-based.
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_sign_loss, clippy::cast_precision_loss)]
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (lo, hi) = HistogramSnapshot::bucket_range(i);
                return (lo, hi.min(self.max));
            }
        }
        (self.max, self.max)
    }

    /// A point estimate of the `q`-quantile: the upper bound of the
    /// bucket holding the nearest-rank observation, clamped to the exact
    /// recorded maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).1
    }

    /// Mean observed value (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            let m = self.sum as f64 / self.count as f64;
            m
        }
    }

    /// Merges another snapshot in (bucket-wise sum; commutative and
    /// associative, so shard merges are order-free).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        // Wrapping, matching the atomic adds on the record path: the
        // merged sum stays "sum of all observations mod 2^64", so
        // merging equals observing the concatenation.
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b = b.wrapping_add(o);
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// A copy with trailing empty buckets trimmed (compact JSON).
    #[must_use]
    pub fn trimmed(&self) -> HistogramSnapshot {
        let mut s = self.clone();
        while s.buckets.last() == Some(&0) {
            s.buckets.pop();
        }
        s
    }
}

/// A named counter value in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NamedCounter {
    /// Metric name.
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// A named gauge value in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Gauge value.
    pub value: i64,
}

/// A named histogram in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NamedHistogram {
    /// Metric name.
    pub name: String,
    /// The histogram contents.
    pub hist: HistogramSnapshot,
}

/// A point-in-time, name-sorted copy of a whole [`Registry`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<NamedCounter>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<NamedHistogram>,
}

impl RegistrySnapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| &h.hist)
    }
}

/// A set of named metrics. Handle lookup locks the name map once; the
/// returned `Arc` handles record lock-free, so hot sites resolve their
/// metrics up front and keep the handles.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter map");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge map");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram map");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// A point-in-time copy of every metric, name-sorted (the `BTreeMap`
    /// iteration order), with histogram buckets trimmed for compactness.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .lock()
                .expect("counter map")
                .iter()
                .map(|(name, c)| NamedCounter {
                    name: name.clone(),
                    value: c.get(),
                })
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("gauge map")
                .iter()
                .map(|(name, g)| GaugeSnapshot {
                    name: name.clone(),
                    value: g.get(),
                })
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("histogram map")
                .iter()
                .map(|(name, h)| NamedHistogram {
                    name: name.clone(),
                    hist: h.snapshot().trimmed(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_covers_the_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Every bucket's range round-trips through bucket_of.
        for i in 0..BUCKETS {
            let (lo, hi) = HistogramSnapshot::bucket_range(i);
            assert_eq!(bucket_of(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_of(hi), i, "hi of bucket {i}");
        }
    }

    #[test]
    fn histogram_quantiles_and_mean() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        let (lo, hi) = s.quantile_bounds(0.5);
        assert!(lo <= 50 && 50 <= hi, "p50 in [{lo}, {hi}]");
        assert_eq!(s.quantile(1.0), 100);
        assert!((s.mean() - 50.5).abs() < 1e-9);
        // Empty histogram.
        let empty = Histogram::default().snapshot();
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = Histogram::default();
        let b = Histogram::default();
        a.observe(3);
        a.observe(1000);
        b.observe(0);
        b.observe(u64::MAX);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 4);
        assert_eq!(m.max, u64::MAX);
        assert_eq!(m.buckets.iter().sum::<u64>(), 4);
    }

    #[test]
    fn registry_round_trips_through_json() {
        let r = Registry::new();
        r.counter("req").add(7);
        r.gauge("depth").set(-2);
        r.histogram("lat").observe(42);
        r.histogram("lat").observe(7);
        let snap = r.snapshot();
        assert_eq!(snap.counter("req"), Some(7));
        assert_eq!(snap.gauge("depth"), Some(-2));
        assert_eq!(snap.histogram("lat").map(|h| h.count), Some(2));
        assert_eq!(snap.counter("absent"), None);
        let json = serde_json::to_string_pretty(&snap).expect("serialize");
        let back: RegistrySnapshot = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, snap);
        // The same name returns the same metric.
        assert_eq!(r.counter("req").get(), 7);
    }

    #[test]
    fn trimmed_drops_trailing_empty_buckets_only() {
        let h = Histogram::default();
        h.observe(5);
        let full = h.snapshot();
        let t = full.trimmed();
        assert_eq!(t.buckets.len(), bucket_of(5) + 1);
        assert_eq!(t.quantile(0.5), full.quantile(0.5));
        let mut merged = t.clone();
        merged.merge(&full);
        assert_eq!(merged.count, 2);
    }
}
