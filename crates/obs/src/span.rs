//! Span timing: RAII phase guards buffered per thread.
//!
//! A [`span!`] guard stamps its start on construction and records a
//! [`SpanRecord`] on drop — but only when the global gate is on, so an
//! un-profiled run pays one relaxed load + branch per site. Records go
//! into a per-thread buffer (one uncontended mutex per thread, shared
//! only with the drain) registered in a process-wide list; pool worker
//! threads never have to cooperate in a flush, [`take_spans`] drains
//! every live buffer. Timestamps are nanoseconds on a single monotonic
//! clock (the first use pins the epoch), thread ids are small integers
//! assigned in first-use order — exactly what the Chrome trace-event
//! exporter in `mia_trace` wants for `ts`/`tid`.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Per-thread span cap: a runaway profiled run drops spans (counted in
/// [`spans_dropped`]) instead of growing without bound.
const MAX_SPANS_PER_THREAD: usize = 1 << 18;

/// One completed timed phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Phase name (`analysis.close_open`, `serve.queue_wait`, …).
    pub name: String,
    /// Small-integer id of the recording thread.
    pub tid: u64,
    /// Start, nanoseconds since the process-wide monotonic epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Nanoseconds since the process-wide monotonic epoch (pinned on first
/// use, so all spans share one timeline).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// This thread's small-integer id (assigned in first-use order).
pub fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: Cell<Option<u64>> = const { Cell::new(None) };
    }
    TID.with(|tid| {
        if let Some(id) = tid.get() {
            return id;
        }
        let id = NEXT.fetch_add(1, Ordering::Relaxed);
        tid.set(Some(id));
        id
    })
}

/// One thread's span buffer, shared between that thread and the drain.
type SharedBuffer = Arc<Mutex<Vec<SpanRecord>>>;

/// All per-thread buffers, so the drain can reach threads that are
/// still alive (pool workers park between phases and never exit).
fn buffers() -> &'static Mutex<Vec<SharedBuffer>> {
    static BUFFERS: OnceLock<Mutex<Vec<SharedBuffer>>> = OnceLock::new();
    BUFFERS.get_or_init(|| Mutex::new(Vec::new()))
}

static DROPPED: AtomicU64 = AtomicU64::new(0);

fn with_buffer(f: impl FnOnce(&mut Vec<SpanRecord>)) {
    thread_local! {
        static BUF: OnceLock<SharedBuffer> = const { OnceLock::new() };
    }
    BUF.with(|cell| {
        let buf = cell.get_or_init(|| {
            let buf = Arc::new(Mutex::new(Vec::new()));
            buffers()
                .lock()
                .expect("span buffers")
                .push(Arc::clone(&buf));
            buf
        });
        let mut records = buf.lock().expect("span buffer");
        if records.len() >= MAX_SPANS_PER_THREAD {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        } else {
            f(&mut records);
        }
    });
}

/// Records a completed span retroactively (for phases whose duration is
/// only known after the fact, like a queue wait measured at dequeue).
/// No-op while the global gate is off.
pub fn record_span(name: &str, start_ns: u64, dur_ns: u64) {
    if !crate::enabled() {
        return;
    }
    let tid = thread_id();
    with_buffer(|records| {
        records.push(SpanRecord {
            name: name.to_owned(),
            tid,
            start_ns,
            dur_ns,
        });
    });
}

/// Drains every thread's buffered spans, sorted by start time. Spans
/// recorded concurrently with the drain land in the next drain.
pub fn take_spans() -> Vec<SpanRecord> {
    let buffers = buffers().lock().expect("span buffers");
    let mut all = Vec::new();
    for buf in buffers.iter() {
        all.append(&mut buf.lock().expect("span buffer"));
    }
    all.sort_by_key(|s| (s.start_ns, s.tid));
    all
}

/// Spans dropped because a thread hit its buffer cap.
pub fn spans_dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// An in-flight timed phase; records its [`SpanRecord`] on drop.
///
/// Construct through [`span()`] or the [`span!`] macro. When the global
/// gate is off the guard is inert (no clock reads, nothing recorded).
#[must_use = "a span guard times until it is dropped"]
pub struct SpanGuard {
    name: &'static str,
    /// Start timestamp; `None` when the gate was off at construction.
    start_ns: Option<u64>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start_ns) = self.start_ns {
            let dur_ns = now_ns().saturating_sub(start_ns);
            let tid = thread_id();
            with_buffer(|records| {
                records.push(SpanRecord {
                    name: self.name.to_owned(),
                    tid,
                    start_ns,
                    dur_ns,
                });
            });
        }
    }
}

/// Starts timing a phase; the returned guard records on drop.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        name,
        start_ns: crate::enabled().then(now_ns),
    }
}

/// `span!("phase_name")` — starts an RAII phase timer; the span is
/// recorded when the guard leaves scope.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_only_while_enabled() {
        let _serial = crate::test_gate_lock();
        crate::set_enabled(false);
        {
            let _off = span("test.off");
        }
        crate::set_enabled(true);
        {
            let _on = span("test.on");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        record_span("test.retro", now_ns(), 5);
        crate::set_enabled(false);
        let spans = take_spans();
        assert!(spans.iter().all(|s| s.name != "test.off"), "{spans:?}");
        let on = spans.iter().find(|s| s.name == "test.on").expect("on span");
        assert!(on.dur_ns >= 1_000_000, "{on:?}");
        assert!(spans.iter().any(|s| s.name == "test.retro"));
        // Drained means gone.
        assert!(take_spans().iter().all(|s| !s.name.starts_with("test.")));
    }

    #[test]
    fn spans_from_other_threads_are_drained_without_cooperation() {
        let _serial = crate::test_gate_lock();
        crate::set_enabled(true);
        let main_tid = thread_id();
        std::thread::spawn(|| {
            let _s = span!("test.worker");
        })
        .join()
        .expect("worker");
        // A second thread that records and then *stays alive* briefly —
        // its buffer must still be drainable.
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let alive = std::thread::spawn(move || {
            record_span("test.alive", now_ns(), 1);
            rx.recv().ok();
        });
        // Wait until the live thread's span is visible to the drain.
        let mut spans = Vec::new();
        for _ in 0..1000 {
            spans.extend(take_spans());
            if spans.iter().any(|s| s.name == "test.alive") {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        crate::set_enabled(false);
        tx.send(()).ok();
        alive.join().expect("alive thread");
        let worker = spans
            .iter()
            .find(|s| s.name == "test.worker")
            .expect("worker span");
        assert_ne!(worker.tid, main_tid);
        assert!(spans.iter().any(|s| s.name == "test.alive"));
    }

    #[test]
    fn timestamps_are_monotonic_and_tids_stable() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
        assert_eq!(thread_id(), thread_id());
    }
}
