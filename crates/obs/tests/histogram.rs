//! Property tests for the log2 histogram: the invariants every
//! consumer (quantile reports, bench artefacts, shard merges) relies
//! on, over arbitrary observation streams.

use mia_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// Mixed-magnitude observations: small latencies, mid-range values and
/// full-range u64s, so every bucket region gets exercised.
fn observations() -> BoxedStrategy<Vec<u64>> {
    let value = prop_oneof![
        0u64..16,
        1u64..4096,
        1u64..u64::MAX / 2,
        Just(0u64),
        Just(u64::MAX),
    ];
    proptest::collection::vec(value, 0..256)
}

fn filled(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::default();
    for &v in values {
        h.observe(v);
    }
    h.snapshot()
}

/// The nearest-rank quantile of a value set (the exact answer the
/// histogram's bucket walk approximates).
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    #[allow(clippy::cast_sign_loss, clippy::cast_precision_loss)]
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Bucket counts always sum to the observation count, and every
    /// observation is within [0, max].
    #[test]
    fn bucket_counts_sum_to_observation_count(values in observations()) {
        let s = filled(&values);
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        prop_assert_eq!(s.max, values.iter().copied().max().unwrap_or(0));
        prop_assert_eq!(s.sum, values.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
    }

    /// Buckets are monotone in bound: the cumulative count through
    /// bucket i equals the number of observations ≤ the bucket's upper
    /// bound (buckets partition the value range in increasing order).
    #[test]
    fn buckets_are_monotone_in_bound(values in observations()) {
        let s = filled(&values);
        let mut cumulative = 0u64;
        let mut prev = 0u64;
        for (i, &n) in s.buckets.iter().enumerate() {
            cumulative += n;
            // Upper inclusive bound of bucket i.
            let bound = if i == 0 { 0 } else if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
            let at_most = values.iter().filter(|&&v| v <= bound).count() as u64;
            prop_assert_eq!(cumulative, at_most, "through bucket {}", i);
            prop_assert!(cumulative >= prev);
            prev = cumulative;
        }
        prop_assert_eq!(cumulative, s.count);
    }

    /// Merge is commutative and agrees with observing the concatenation.
    #[test]
    fn merge_is_commutative(a in observations(), b in observations()) {
        let (sa, sb) = (filled(&a), filled(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);
        let together: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(&ab.trimmed(), &filled(&together).trimmed());
    }

    /// Merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn merge_is_associative(
        a in observations(),
        b in observations(),
        c in observations(),
    ) {
        let (sa, sb, sc) = (filled(&a), filled(&b), filled(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Quantile bounds bracket the true nearest-rank quantile, and the
    /// point estimate is the upper bound clamped to the exact max.
    #[test]
    fn quantile_estimates_bracket_the_true_value(
        values in observations().prop_filter("non-empty", |v| !v.is_empty()),
        q in 0.0f64..1.0,
    ) {
        let s = filled(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let truth = true_quantile(&sorted, q);
        let (lo, hi) = s.quantile_bounds(q);
        prop_assert!(lo <= truth && truth <= hi, "{} not in [{}, {}]", truth, lo, hi);
        prop_assert_eq!(s.quantile(q), hi);
        prop_assert!(hi <= s.max);
        // The tail quantile is exact: max is recorded, not estimated.
        prop_assert_eq!(s.quantile(1.0), *sorted.last().unwrap());
    }

    /// Snapshots survive a JSON round trip bit-for-bit.
    #[test]
    fn snapshot_json_round_trips(values in observations()) {
        let s = filled(&values).trimmed();
        let json = serde_json::to_string(&s).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, s);
    }
}
