//! Channel buffer sizing: worst-case token occupancy over one iteration.
//!
//! When an SDF graph is compiled to run on scratchpad memory (the MPPA's
//! SMEM), every channel needs a statically allocated buffer. A sufficient
//! size is the maximal occupancy reached during a *periodic admissible
//! sequential schedule* (Lee & Messerschmitt's PASS): data-driven firing,
//! one actor at a time, until every actor has fired its repetition count.
//! Any valid static-order execution of the same iteration reorders those
//! firings but can only interleave them more tightly, so the PASS maximum
//! (taken over the canonical eager order used here) is the budget the
//! code generator reserves.

use crate::{SdfError, SdfGraph};

/// Per-channel buffer requirements, in tokens and in memory words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferBounds {
    tokens: Vec<u64>,
    words: Vec<u64>,
}

impl BufferBounds {
    /// Maximal simultaneous tokens on channel `ch` (indexed as in
    /// [`SdfGraph::channels`]).
    ///
    /// # Panics
    ///
    /// Panics if `ch` is out of range.
    pub fn tokens(&self, ch: usize) -> u64 {
        self.tokens[ch]
    }

    /// The same bound in memory words (`tokens × words_per_token`).
    ///
    /// # Panics
    ///
    /// Panics if `ch` is out of range.
    pub fn words(&self, ch: usize) -> u64 {
        self.words[ch]
    }

    /// Total scratchpad footprint in words over all channels.
    pub fn total_words(&self) -> u64 {
        self.words.iter().sum()
    }

    /// Per-channel token bounds, in channel order.
    pub fn all_tokens(&self) -> &[u64] {
        &self.tokens
    }
}

impl SdfGraph {
    /// Computes buffer bounds by simulating one iteration of the eager
    /// sequential schedule: repeatedly fire the lowest-indexed enabled
    /// actor with remaining repetitions, tracking every channel's token
    /// count and its running maximum.
    ///
    /// # Errors
    ///
    /// * Propagates [`SdfGraph::repetition_vector`] errors,
    /// * [`SdfError::Deadlock`] if no enabled actor remains while
    ///   repetitions are outstanding (insufficient initial tokens).
    ///
    /// # Example
    ///
    /// ```
    /// use mia_model::Cycles;
    /// use mia_sdf::SdfGraph;
    ///
    /// # fn main() -> Result<(), mia_sdf::SdfError> {
    /// let mut g = SdfGraph::new();
    /// let a = g.add_actor("a", Cycles(10), 0)?;
    /// let b = g.add_actor("b", Cycles(5), 0)?;
    /// g.add_channel(a, b, 2, 1, 0, 4)?; // 2 tokens/firing of 4 words each
    /// let bounds = g.buffer_bounds()?;
    /// assert_eq!(bounds.tokens(0), 2); // a fires once before b drains it
    /// assert_eq!(bounds.words(0), 8);
    /// # Ok(())
    /// # }
    /// ```
    pub fn buffer_bounds(&self) -> Result<BufferBounds, SdfError> {
        let q = self.repetition_vector()?;
        let channels = self.channels();
        let mut tokens: Vec<u64> = channels.iter().map(|c| c.initial).collect();
        let mut peak = tokens.clone();
        let mut remaining: Vec<u64> = q.clone();
        let n = self.actors().len();

        let enabled = |actor: usize, tokens: &[u64]| {
            channels
                .iter()
                .enumerate()
                .all(|(i, c)| c.dst.index() != actor || tokens[i] >= c.consume)
        };

        let mut outstanding: u64 = remaining.iter().sum();
        while outstanding > 0 {
            let Some(actor) = (0..n).find(|&a| remaining[a] > 0 && enabled(a, &tokens)) else {
                return Err(SdfError::Deadlock);
            };
            for (i, c) in channels.iter().enumerate() {
                if c.dst.index() == actor {
                    tokens[i] -= c.consume;
                }
            }
            for (i, c) in channels.iter().enumerate() {
                if c.src.index() == actor {
                    tokens[i] += c.produce;
                    peak[i] = peak[i].max(tokens[i]);
                }
            }
            remaining[actor] -= 1;
            outstanding -= 1;
        }
        // One iteration returns every channel to its initial marking — the
        // defining property of the repetition vector.
        debug_assert!(tokens.iter().zip(channels).all(|(&t, c)| t == c.initial));

        let words = peak
            .iter()
            .zip(channels)
            .map(|(&t, c)| t * c.words_per_token)
            .collect();
        Ok(BufferBounds {
            tokens: peak,
            words,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mia_model::Cycles;

    #[test]
    fn downsampler_peaks_at_producer_burst() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(1), 0).unwrap();
        let b = g.add_actor("b", Cycles(1), 0).unwrap();
        // q = [1, 3]: a makes 3 tokens, b eats one per firing.
        g.add_channel(a, b, 3, 1, 0, 2).unwrap();
        let bounds = g.buffer_bounds().unwrap();
        assert_eq!(bounds.tokens(0), 3);
        assert_eq!(bounds.words(0), 6);
        assert_eq!(bounds.total_words(), 6);
    }

    #[test]
    fn upsampler_never_buffers_more_than_one_input() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(1), 0).unwrap();
        let b = g.add_actor("b", Cycles(1), 0).unwrap();
        // q = [3, 1]: b needs all 3 before it fires once.
        g.add_channel(a, b, 1, 3, 0, 1).unwrap();
        let bounds = g.buffer_bounds().unwrap();
        assert_eq!(bounds.tokens(0), 3);
    }

    #[test]
    fn initial_tokens_count_toward_the_peak() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(1), 0).unwrap();
        let b = g.add_actor("b", Cycles(1), 0).unwrap();
        g.add_channel(a, b, 1, 1, 5, 1).unwrap();
        let bounds = g.buffer_bounds().unwrap();
        // Eager order fires a first: occupancy touches 6.
        assert_eq!(bounds.tokens(0), 6);
    }

    #[test]
    fn cycle_with_enough_delay_executes() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(1), 0).unwrap();
        let b = g.add_actor("b", Cycles(1), 0).unwrap();
        g.add_channel(a, b, 1, 1, 0, 1).unwrap();
        g.add_channel(b, a, 1, 1, 1, 1).unwrap(); // feedback with 1 delay
        let bounds = g.buffer_bounds().unwrap();
        assert_eq!(bounds.tokens(0), 1);
        assert_eq!(bounds.tokens(1), 1);
    }

    #[test]
    fn cycle_without_delay_deadlocks() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(1), 0).unwrap();
        let b = g.add_actor("b", Cycles(1), 0).unwrap();
        g.add_channel(a, b, 1, 1, 0, 1).unwrap();
        g.add_channel(b, a, 1, 1, 0, 1).unwrap();
        assert_eq!(g.buffer_bounds().unwrap_err(), SdfError::Deadlock);
    }

    #[test]
    fn multi_channel_pipeline_totals() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(1), 0).unwrap();
        let b = g.add_actor("b", Cycles(1), 0).unwrap();
        let c = g.add_actor("c", Cycles(1), 0).unwrap();
        g.add_channel(a, b, 2, 1, 0, 4).unwrap();
        g.add_channel(b, c, 1, 2, 0, 8).unwrap();
        let bounds = g.buffer_bounds().unwrap();
        assert_eq!(bounds.all_tokens().len(), 2);
        assert!(bounds.total_words() >= bounds.words(0));
    }
}
