//! SDF → task-graph expansion (the classic HSDF transformation).

use mia_model::{Task, TaskGraph, TaskId};

use crate::{ActorId, SdfError, SdfGraph};

/// The result of expanding an SDF graph: one task per actor firing.
#[derive(Debug, Clone)]
pub struct Expansion {
    /// The expanded dependency graph; edge weights are memory words
    /// (tokens × words-per-token).
    pub graph: TaskGraph,
    /// For every task, the actor it instantiates and the firing index.
    pub firings: Vec<(ActorId, u64)>,
    /// The repetition vector used (for one iteration).
    pub repetition: Vec<u64>,
}

impl Expansion {
    /// The task instantiating firing `k` of `actor`, if within range.
    pub fn task_of(&self, actor: ActorId, firing: u64) -> Option<TaskId> {
        self.firings
            .iter()
            .position(|&(a, f)| a == actor && f == firing)
            .map(TaskId::from_index)
    }
}

impl SdfGraph {
    /// Expands `iterations` back-to-back iterations of the graph into a
    /// task graph with one task per firing.
    ///
    /// For a channel with rates `p → c` and `d` initial tokens, consumer
    /// firing `j` (0-based) consumes tokens `[j·c, (j+1)·c)`; token `k`
    /// (counting initial tokens first) was produced by producer firing
    /// `(k − d) / p` when `k ≥ d`. Every producer→consumer firing pair
    /// exchanging at least one token becomes an edge whose weight is the
    /// token count times the channel's words-per-token.
    ///
    /// # Errors
    ///
    /// * [`SdfError::Inconsistent`] / [`SdfError::TooLarge`] from the
    ///   repetition vector,
    /// * [`SdfError::Deadlock`] if a cyclic dependency (including a firing
    ///   depending on itself) survives — i.e. the initial tokens are
    ///   insufficient for the schedule to exist.
    pub fn expand(&self, iterations: u64) -> Result<Expansion, SdfError> {
        let q = self.repetition_vector()?;
        let total_firings: u64 = q.iter().map(|&x| x * iterations).sum();
        if total_firings > 4_000_000 {
            return Err(SdfError::TooLarge);
        }
        let mut graph = TaskGraph::with_capacity(total_firings as usize);
        let mut firings = Vec::with_capacity(total_firings as usize);
        // Task ids per actor, in firing order.
        let mut instance: Vec<Vec<TaskId>> = Vec::with_capacity(self.actors().len());
        for (idx, actor) in self.actors().iter().enumerate() {
            let count = q[idx] * iterations;
            let mut ids = Vec::with_capacity(count as usize);
            for k in 0..count {
                let id = graph.add_task(
                    Task::builder(format!("{}#{k}", actor.name))
                        .wcet(actor.wcet)
                        .private_demand(mia_model::BankDemand::single(
                            mia_model::BankId(0),
                            actor.accesses,
                        )),
                );
                firings.push((ActorId(idx as u32), k));
                ids.push(id);
            }
            instance.push(ids);
        }
        for ch in self.channels() {
            let producers = &instance[ch.src.index()];
            let consumers = &instance[ch.dst.index()];
            let (p, c, d) = (ch.produce, ch.consume, ch.initial);
            for (j, &dst_task) in consumers.iter().enumerate() {
                let j = j as u64;
                let first_token = j * c;
                let last_token = (j + 1) * c - 1;
                if last_token < d {
                    continue; // fully served by initial tokens
                }
                let first_prod = first_token.saturating_sub(d) / p;
                let last_prod = (last_token - d) / p;
                for i in first_prod..=last_prod {
                    let Some(&src_task) = producers.get(i as usize) else {
                        // Tokens produced beyond the expanded horizon: the
                        // consumer of a later iteration would need them;
                        // within `iterations` iterations this cannot
                        // happen for a consistent graph.
                        continue;
                    };
                    // Tokens this producer firing contributes to consumer j.
                    let prod_first = d + i * p;
                    let prod_last = d + (i + 1) * p - 1;
                    let lo = prod_first.max(first_token);
                    let hi = prod_last.min(last_token);
                    let tokens = hi - lo + 1;
                    if src_task == dst_task {
                        return Err(SdfError::Deadlock);
                    }
                    match graph.add_edge(src_task, dst_task, tokens * ch.words_per_token) {
                        Ok(_) => {}
                        Err(mia_model::ModelError::DuplicateEdge(..)) => {
                            // Two channels between the same firing pair:
                            // fold the weight into the existing edge is not
                            // supported by TaskGraph, so keep the first.
                        }
                        Err(mia_model::ModelError::SelfLoop(_)) => return Err(SdfError::Deadlock),
                        Err(_) => unreachable!("endpoints are valid by construction"),
                    }
                }
            }
        }
        // A cyclic SDF graph without enough initial tokens produces a
        // cyclic expansion: reject it.
        if graph.topological_order().is_err() {
            return Err(SdfError::Deadlock);
        }
        Ok(Expansion {
            graph,
            firings,
            repetition: q,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mia_model::Cycles;

    #[test]
    fn pipeline_expansion_edges() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(10), 5).unwrap();
        let b = g.add_actor("b", Cycles(20), 0).unwrap();
        g.add_channel(a, b, 1, 2, 0, 4).unwrap();
        // q = (2, 1): two a-firings feed one b-firing, 1 token (4 words) each.
        let e = g.expand(1).unwrap();
        assert_eq!(e.graph.len(), 3);
        assert_eq!(e.graph.edge_count(), 2);
        for edge in e.graph.edges() {
            assert_eq!(edge.words, 4);
        }
        let b0 = e.task_of(b, 0).unwrap();
        assert_eq!(e.graph.in_degree(b0), 2);
    }

    #[test]
    fn initial_tokens_remove_dependencies() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(10), 0).unwrap();
        let b = g.add_actor("b", Cycles(10), 0).unwrap();
        g.add_channel(a, b, 1, 1, 1, 2).unwrap();
        // One initial token: b#0 needs no producer; with one iteration
        // (q = 1,1) the graph has no edge at all.
        let e = g.expand(1).unwrap();
        assert_eq!(e.graph.edge_count(), 0);
        // With two iterations, b#1 consumes the token a#0 produced.
        let e = g.expand(2).unwrap();
        assert_eq!(e.graph.edge_count(), 1);
        let edge = e.graph.edges()[0];
        assert_eq!(edge.src, e.task_of(a, 0).unwrap());
        assert_eq!(edge.dst, e.task_of(b, 1).unwrap());
    }

    #[test]
    fn multi_iteration_chain_grows_linearly() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(10), 0).unwrap();
        let b = g.add_actor("b", Cycles(10), 0).unwrap();
        g.add_channel(a, b, 2, 3, 0, 1).unwrap();
        // q = (3, 2); 4 iterations → 12 a-firings, 8 b-firings.
        let e = g.expand(4).unwrap();
        assert_eq!(e.graph.len(), 20);
        // Every b firing consumes 3 tokens produced by ≤ 3 a-firings; the
        // expansion stays acyclic and topologically orderable.
        assert!(e.graph.topological_order().is_ok());
    }

    #[test]
    fn deadlocked_cycle_is_rejected() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(1), 0).unwrap();
        let b = g.add_actor("b", Cycles(1), 0).unwrap();
        g.add_channel(a, b, 1, 1, 0, 1).unwrap();
        g.add_channel(b, a, 1, 1, 0, 1).unwrap();
        assert!(matches!(g.expand(1), Err(SdfError::Deadlock)));
    }

    #[test]
    fn cycle_with_tokens_executes() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(1), 0).unwrap();
        let b = g.add_actor("b", Cycles(1), 0).unwrap();
        g.add_channel(a, b, 1, 1, 0, 1).unwrap();
        g.add_channel(b, a, 1, 1, 1, 1).unwrap();
        let e = g.expand(2).unwrap();
        // a#0 → b#0 → a#1 → b#1 plus the token-deferred back edges.
        assert!(e.graph.topological_order().is_ok());
        assert_eq!(e.graph.len(), 4);
    }

    #[test]
    fn token_counts_scale_edge_words() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(1), 0).unwrap();
        let b = g.add_actor("b", Cycles(1), 0).unwrap();
        g.add_channel(a, b, 4, 4, 0, 3).unwrap();
        let e = g.expand(1).unwrap();
        assert_eq!(e.graph.edge_count(), 1);
        // 4 tokens × 3 words.
        assert_eq!(e.graph.edges()[0].words, 12);
    }

    #[test]
    fn firing_metadata_is_consistent() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(1), 0).unwrap();
        let b = g.add_actor("b", Cycles(1), 0).unwrap();
        g.add_channel(a, b, 1, 2, 0, 1).unwrap();
        let e = g.expand(1).unwrap();
        assert_eq!(e.repetition, vec![2, 1]);
        assert_eq!(e.firings.len(), 3);
        assert_eq!(e.task_of(a, 1), Some(TaskId(1)));
        assert_eq!(e.task_of(b, 0), Some(TaskId(2)));
        assert_eq!(e.task_of(b, 5), None);
    }
}
