//! Synchronous-dataflow (SDF) front-end.
//!
//! The paper's task DAGs are "typically obtained by compilation of a
//! high-level dataflow language" (§I): a dataflow application is divided
//! into computational blocks and compiled into a DAG of tasks partially
//! ordered by their dependencies (§I, referencing \[5\] and \[7\], which
//! analyse synchronous dataflow programs). This crate is that front-end
//! (see `DESIGN.md` §5):
//!
//! * [`SdfGraph`] — actors with per-firing WCET and memory accesses,
//!   channels with production/consumption rates, initial tokens and token
//!   sizes,
//! * [`SdfGraph::repetition_vector`] — the balance-equation solution
//!   (smallest positive firing counts per iteration),
//! * [`SdfGraph::expand`] — expansion of `k` graph iterations into a
//!   [`TaskGraph`](mia_model::TaskGraph) of firing instances with word-weighted dependency
//!   edges (the classic SDF→HSDF transformation),
//! * [`parse`] — a small text format for writing applications by hand,
//! * [`parse_sdf3`] / [`to_sdf3`] — import/export of the SDF3 XML
//!   interchange format, so published dataflow benchmarks run unmodified,
//! * [`rosace()`] — the ROSACE avionics case study as a built-in preset.
//!
//! # Example
//!
//! A two-stage downsampling pipeline: `src` fires 3 times per iteration,
//! `sink` once, each `sink` firing consuming what 3 `src` firings produce.
//!
//! ```
//! use mia_sdf::SdfGraph;
//! use mia_model::Cycles;
//!
//! # fn main() -> Result<(), mia_sdf::SdfError> {
//! let mut sdf = SdfGraph::new();
//! let src = sdf.add_actor("src", Cycles(100), 0)?;
//! let sink = sdf.add_actor("sink", Cycles(250), 0)?;
//! sdf.add_channel(src, sink, 1, 3, 0, 8)?;
//!
//! let q = sdf.repetition_vector()?;
//! assert_eq!(q, vec![3, 1]);
//!
//! let expansion = sdf.expand(1)?;
//! assert_eq!(expansion.graph.len(), 4); // 3 × src + 1 × sink
//! assert_eq!(expansion.graph.edge_count(), 3); // each src firing feeds sink
//! # Ok(())
//! # }
//! ```

mod buffers;
mod expand;
mod parser;
pub mod rosace;
pub mod sdf3;

pub use buffers::BufferBounds;
pub use expand::Expansion;
pub use parser::parse;
pub use rosace::rosace;
pub use sdf3::{parse_sdf3, to_sdf3};

/// Parses SDF source text, selecting the format from the file name it
/// was read from: `.sdf3` / `.xml` means [`parse_sdf3`], anything else
/// the [`parse`] text format. This is the single dispatch rule shared by
/// every consumer (`mia` workload inputs, the sweep's `sdf3:<path>`
/// family), so the extension mapping cannot drift between them.
///
/// # Errors
///
/// Whatever the selected parser returns (see [`parse`] /
/// [`parse_sdf3`]).
pub fn parse_named(path: &str, text: &str) -> Result<SdfGraph, SdfError> {
    if path.ends_with(".sdf3") || path.ends_with(".xml") {
        parse_sdf3(text)
    } else {
        parse(text)
    }
}

use std::error::Error;
use std::fmt;

use mia_model::Cycles;

/// Identifier of an actor within an [`SdfGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub u32);

impl ActorId {
    /// The actor's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// An actor: a computational block firing repeatedly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Actor {
    /// Human-readable name (unique within the graph).
    pub name: String,
    /// WCET in isolation of one firing.
    pub wcet: Cycles,
    /// Private memory accesses of one firing (on top of channel traffic).
    pub accesses: u64,
}

/// A FIFO channel between two actors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Channel {
    /// Producing actor.
    pub src: ActorId,
    /// Consuming actor.
    pub dst: ActorId,
    /// Tokens produced per `src` firing.
    pub produce: u64,
    /// Tokens consumed per `dst` firing.
    pub consume: u64,
    /// Tokens initially present (delays); they let cyclic graphs execute.
    pub initial: u64,
    /// Memory words per token (scales the task-graph edge weights).
    pub words_per_token: u64,
}

/// Errors of SDF construction, analysis and expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SdfError {
    /// A channel references an unknown actor.
    UnknownActor(ActorId),
    /// A rate is zero (every channel must move tokens on both ends).
    ZeroRate,
    /// The balance equations admit no positive integer solution.
    Inconsistent {
        /// A channel witnessing the inconsistency.
        src: ActorId,
        dst: ActorId,
    },
    /// The graph deadlocks: a dependency cycle without enough initial
    /// tokens survives into the expansion.
    Deadlock,
    /// The repetition vector overflows practical bounds.
    TooLarge,
    /// Parse error with line number and message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Actor name referenced by the textual format does not exist.
    UnknownName(String),
    /// An actor with this name already exists in the graph.
    DuplicateActor(String),
    /// A deadline-to-iterations conversion was requested but the graph
    /// declares no hyper-period (see [`SdfGraph::set_hyper_period`]).
    NoHyperPeriod,
}

impl fmt::Display for SdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdfError::UnknownActor(a) => write!(f, "unknown actor {a}"),
            SdfError::ZeroRate => write!(f, "channel rates must be non-zero"),
            SdfError::Inconsistent { src, dst } => {
                write!(f, "inconsistent rates on channel {src} -> {dst}")
            }
            SdfError::Deadlock => write!(f, "graph deadlocks (insufficient initial tokens)"),
            SdfError::TooLarge => write!(f, "repetition vector exceeds practical bounds"),
            SdfError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            SdfError::UnknownName(n) => write!(f, "unknown actor name `{n}`"),
            SdfError::DuplicateActor(n) => write!(f, "duplicate actor `{n}`"),
            SdfError::NoHyperPeriod => {
                write!(
                    f,
                    "graph declares no hyper-period (cannot derive iterations from a deadline)"
                )
            }
        }
    }
}

impl Error for SdfError {}

/// A synchronous-dataflow graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SdfGraph {
    actors: Vec<Actor>,
    channels: Vec<Channel>,
    /// Wall-clock duration of one graph iteration in cycles, if declared.
    hyper_period: Option<Cycles>,
}

impl SdfGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        SdfGraph::default()
    }

    /// Declares the wall-clock duration of one graph iteration
    /// (hyper-period) in cycles. Multi-rate periodic task sets compiled
    /// to SDF — like the built-in [`rosace()`] preset — carry this so
    /// tools can translate a deadline expressed in cycles into an
    /// iteration count (`mia analyze rosace --deadline N` derives
    /// `--iterations` from it). The SDF3 writer emits it as a
    /// `<hyperPeriod time="…"/>` property and the reader restores it;
    /// foreign SDF3 files simply leave it undeclared.
    pub fn set_hyper_period(&mut self, period: Cycles) {
        self.hyper_period = Some(period);
    }

    /// The declared duration of one graph iteration, if any.
    pub fn hyper_period(&self) -> Option<Cycles> {
        self.hyper_period
    }

    /// The smallest iteration count whose total hyper-period covers
    /// `deadline` (i.e. `k · hyper_period ≥ deadline`, k ≥ 1).
    ///
    /// # Errors
    ///
    /// * [`SdfError::NoHyperPeriod`] if the graph declares no (or a
    ///   zero) hyper-period — there is no time base to divide by,
    /// * [`SdfError::TooLarge`] if the required count exceeds the
    ///   expansion bounds (the deadline is infeasibly far out).
    pub fn iterations_for_deadline(&self, deadline: Cycles) -> Result<u64, SdfError> {
        let period = match self.hyper_period {
            Some(p) if p > Cycles::ZERO => p,
            _ => return Err(SdfError::NoHyperPeriod),
        };
        let k = deadline.as_u64().div_ceil(period.as_u64()).max(1);
        // Mirror the expansion's firing cap so the error arrives before
        // an enormous expansion is attempted.
        let per_iteration: u64 = self.repetition_vector()?.iter().sum();
        if per_iteration.saturating_mul(k) > 4_000_000 {
            return Err(SdfError::TooLarge);
        }
        Ok(k)
    }

    /// Adds an actor and returns its id.
    ///
    /// # Errors
    ///
    /// [`SdfError::DuplicateActor`] if the name is already taken —
    /// duplicate names would make [`SdfGraph::actor_by_name`] ambiguous,
    /// so programmatic construction rejects them exactly like the
    /// textual and SDF3 parsers do.
    pub fn add_actor(
        &mut self,
        name: impl Into<String>,
        wcet: Cycles,
        accesses: u64,
    ) -> Result<ActorId, SdfError> {
        let name = name.into();
        if self.actor_by_name(&name).is_some() {
            return Err(SdfError::DuplicateActor(name));
        }
        let id = ActorId(self.actors.len() as u32);
        self.actors.push(Actor {
            name,
            wcet,
            accesses,
        });
        Ok(id)
    }

    /// Adds a channel `src → dst` producing `produce` tokens per source
    /// firing, consuming `consume` per destination firing, with `initial`
    /// tokens already present and `words_per_token` memory words each.
    ///
    /// # Errors
    ///
    /// [`SdfError::UnknownActor`] for dangling endpoints and
    /// [`SdfError::ZeroRate`] if either rate is zero.
    pub fn add_channel(
        &mut self,
        src: ActorId,
        dst: ActorId,
        produce: u64,
        consume: u64,
        initial: u64,
        words_per_token: u64,
    ) -> Result<(), SdfError> {
        if src.index() >= self.actors.len() {
            return Err(SdfError::UnknownActor(src));
        }
        if dst.index() >= self.actors.len() {
            return Err(SdfError::UnknownActor(dst));
        }
        if produce == 0 || consume == 0 {
            return Err(SdfError::ZeroRate);
        }
        self.channels.push(Channel {
            src,
            dst,
            produce,
            consume,
            initial,
            words_per_token,
        });
        Ok(())
    }

    /// The actors, indexed by [`ActorId`].
    pub fn actors(&self) -> &[Actor] {
        &self.actors
    }

    /// The channels.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Looks an actor up by name.
    pub fn actor_by_name(&self, name: &str) -> Option<ActorId> {
        self.actors
            .iter()
            .position(|a| a.name == name)
            .map(|i| ActorId(i as u32))
    }

    /// Solves the balance equations `q[src]·produce = q[dst]·consume` for
    /// the smallest positive integer repetition vector.
    ///
    /// Actors in different weakly-connected components are normalised
    /// independently (each component's smallest firing count is minimal).
    ///
    /// # Errors
    ///
    /// * [`SdfError::Inconsistent`] if the rates admit no solution,
    /// * [`SdfError::TooLarge`] if counts overflow `u32::MAX`.
    pub fn repetition_vector(&self) -> Result<Vec<u64>, SdfError> {
        let n = self.actors.len();
        // Fractions q_i = num/den relative to the component root.
        let mut frac: Vec<Option<(u64, u64)>> = vec![None; n];
        let mut adj: Vec<Vec<(usize, u64, u64)>> = vec![Vec::new(); n];
        for c in &self.channels {
            // src rate p, dst rate q: q_dst = q_src * p / q.
            adj[c.src.index()].push((c.dst.index(), c.produce, c.consume));
            adj[c.dst.index()].push((c.src.index(), c.consume, c.produce));
        }
        let mut component = vec![usize::MAX; n];
        let mut n_components = 0;
        for root in 0..n {
            if frac[root].is_some() {
                continue;
            }
            frac[root] = Some((1, 1));
            component[root] = n_components;
            let mut stack = vec![root];
            while let Some(u) = stack.pop() {
                let (nu, du) = frac[u].expect("set before push");
                for &(v, p, q) in &adj[u] {
                    // q_v = q_u * p / q.
                    let g1 = gcd(nu * p, du * q);
                    let cand = ((nu * p) / g1, (du * q) / g1);
                    match frac[v] {
                        None => {
                            frac[v] = Some(cand);
                            component[v] = n_components;
                            stack.push(v);
                        }
                        Some(existing) => {
                            if existing != cand {
                                return Err(SdfError::Inconsistent {
                                    src: ActorId(u as u32),
                                    dst: ActorId(v as u32),
                                });
                            }
                        }
                    }
                }
            }
            n_components += 1;
        }
        // Scale each component by the lcm of denominators, then divide by
        // the gcd of numerators.
        let mut result = vec![0u64; n];
        for comp in 0..n_components {
            let members: Vec<usize> = (0..n).filter(|&i| component[i] == comp).collect();
            let mut l = 1u64;
            for &i in &members {
                let (_, d) = frac[i].expect("all fractions set");
                l = lcm(l, d);
                if l > u32::MAX as u64 {
                    return Err(SdfError::TooLarge);
                }
            }
            let mut g = 0u64;
            for &i in &members {
                let (num, den) = frac[i].expect("all fractions set");
                let scaled = num * (l / den);
                g = gcd(g, scaled);
            }
            for &i in &members {
                let (num, den) = frac[i].expect("all fractions set");
                let scaled = num * (l / den);
                result[i] = scaled / g.max(1);
                if result[i] > u32::MAX as u64 {
                    return Err(SdfError::TooLarge);
                }
            }
        }
        Ok(result)
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        0
    } else {
        a / gcd(a, b) * b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_pipeline_repetition() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(10), 0).unwrap();
        let b = g.add_actor("b", Cycles(10), 0).unwrap();
        g.add_channel(a, b, 2, 3, 0, 1).unwrap();
        assert_eq!(g.repetition_vector().unwrap(), vec![3, 2]);
    }

    #[test]
    fn chain_of_three() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(1), 0).unwrap();
        let b = g.add_actor("b", Cycles(1), 0).unwrap();
        let c = g.add_actor("c", Cycles(1), 0).unwrap();
        g.add_channel(a, b, 3, 2, 0, 1).unwrap();
        g.add_channel(b, c, 1, 3, 0, 1).unwrap();
        // q_a·3 = q_b·2, q_b·1 = q_c·3 → q = (2, 3, 1).
        assert_eq!(g.repetition_vector().unwrap(), vec![2, 3, 1]);
    }

    #[test]
    fn inconsistent_rates_detected() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(1), 0).unwrap();
        let b = g.add_actor("b", Cycles(1), 0).unwrap();
        g.add_channel(a, b, 1, 1, 0, 1).unwrap();
        g.add_channel(a, b, 2, 1, 0, 1).unwrap();
        assert!(matches!(
            g.repetition_vector(),
            Err(SdfError::Inconsistent { .. })
        ));
    }

    #[test]
    fn disconnected_components_normalise_independently() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(1), 0).unwrap();
        let b = g.add_actor("b", Cycles(1), 0).unwrap();
        let c = g.add_actor("c", Cycles(1), 0).unwrap();
        let d = g.add_actor("d", Cycles(1), 0).unwrap();
        g.add_channel(a, b, 1, 2, 0, 1).unwrap();
        g.add_channel(c, d, 5, 5, 0, 1).unwrap();
        assert_eq!(g.repetition_vector().unwrap(), vec![2, 1, 1, 1]);
    }

    #[test]
    fn isolated_actor_fires_once() {
        let mut g = SdfGraph::new();
        let _ = g.add_actor("solo", Cycles(1), 0).unwrap();
        assert_eq!(g.repetition_vector().unwrap(), vec![1]);
    }

    #[test]
    fn cyclic_graph_is_balanced() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(1), 0).unwrap();
        let b = g.add_actor("b", Cycles(1), 0).unwrap();
        g.add_channel(a, b, 2, 1, 0, 1).unwrap();
        g.add_channel(b, a, 1, 2, 2, 1).unwrap();
        assert_eq!(g.repetition_vector().unwrap(), vec![1, 2]);
    }

    #[test]
    fn zero_rate_rejected() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(1), 0).unwrap();
        let b = g.add_actor("b", Cycles(1), 0).unwrap();
        assert_eq!(g.add_channel(a, b, 0, 1, 0, 1), Err(SdfError::ZeroRate));
    }

    #[test]
    fn unknown_actor_rejected() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(1), 0).unwrap();
        assert!(matches!(
            g.add_channel(a, ActorId(7), 1, 1, 0, 1),
            Err(SdfError::UnknownActor(ActorId(7)))
        ));
    }

    #[test]
    fn duplicate_actor_rejected_programmatically() {
        // Mirrors `parser.rs::duplicate_actor_rejected`: the builder API
        // used to silently accept duplicate names, leaving
        // `actor_by_name` ambiguous for programmatically-built graphs.
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(1), 0).unwrap();
        assert_eq!(
            g.add_actor("a", Cycles(2), 3),
            Err(SdfError::DuplicateActor("a".to_owned()))
        );
        // The failed insertion must not have touched the graph.
        assert_eq!(g.actors().len(), 1);
        assert_eq!(g.actor_by_name("a"), Some(a));
        assert_eq!(g.actors()[0].wcet, Cycles(1));
    }

    #[test]
    fn actor_lookup_by_name() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("alpha", Cycles(1), 0).unwrap();
        assert_eq!(g.actor_by_name("alpha"), Some(a));
        assert_eq!(g.actor_by_name("beta"), None);
    }
}
