//! A small line-oriented text format for SDF graphs.
//!
//! ```text
//! # A downsampling pipeline.
//! actor src   wcet=100 accesses=20
//! actor filt  wcet=400 accesses=50
//! actor sink  wcet=80
//! channel src  -> filt produce=1 consume=4 words=8
//! channel filt -> sink produce=2 consume=2 tokens=2 words=4
//! ```
//!
//! * `actor NAME wcet=N [accesses=N]` declares an actor,
//! * `channel SRC -> DST produce=N consume=N [tokens=N] [words=N]`
//!   declares a channel (`tokens` = initial tokens, default 0; `words` =
//!   words per token, default 1),
//! * `#` starts a comment; blank lines are ignored.

use mia_model::Cycles;

use crate::{SdfError, SdfGraph};

/// Parses the textual SDF format.
///
/// # Errors
///
/// [`SdfError::Parse`] with a 1-based line number for syntax errors and
/// [`SdfError::UnknownName`]-style conditions (reported as parse errors
/// with the same line number).
///
/// # Example
///
/// ```
/// let text = "
/// actor a wcet=10
/// actor b wcet=20 accesses=5
/// channel a -> b produce=2 consume=1 words=4
/// ";
/// let graph = mia_sdf::parse(text)?;
/// assert_eq!(graph.actors().len(), 2);
/// assert_eq!(graph.repetition_vector()?, vec![1, 2]);
/// # Ok::<(), mia_sdf::SdfError>(())
/// ```
pub fn parse(text: &str) -> Result<SdfGraph, SdfError> {
    let mut graph = SdfGraph::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        match words.next() {
            Some("actor") => parse_actor(&mut graph, words, line_no)?,
            Some("channel") => parse_channel(&mut graph, words, line_no)?,
            Some(other) => {
                return Err(SdfError::Parse {
                    line: line_no,
                    message: format!("unknown directive `{other}`"),
                })
            }
            None => unreachable!("line is non-empty"),
        }
    }
    Ok(graph)
}

fn parse_actor<'a>(
    graph: &mut SdfGraph,
    mut words: impl Iterator<Item = &'a str>,
    line: usize,
) -> Result<(), SdfError> {
    let name = words.next().ok_or_else(|| SdfError::Parse {
        line,
        message: "actor needs a name".into(),
    })?;
    let mut wcet = None;
    let mut accesses = 0;
    for kv in words {
        let (key, value) = split_kv(kv, line)?;
        match key {
            "wcet" => wcet = Some(parse_u64(value, line)?),
            "accesses" => accesses = parse_u64(value, line)?,
            _ => {
                return Err(SdfError::Parse {
                    line,
                    message: format!("unknown actor attribute `{key}`"),
                })
            }
        }
    }
    let wcet = wcet.ok_or_else(|| SdfError::Parse {
        line,
        message: "actor needs wcet=N".into(),
    })?;
    graph
        .add_actor(name, Cycles(wcet), accesses)
        .map_err(|e| SdfError::Parse {
            line,
            message: e.to_string(),
        })?;
    Ok(())
}

fn parse_channel<'a>(
    graph: &mut SdfGraph,
    mut words: impl Iterator<Item = &'a str>,
    line: usize,
) -> Result<(), SdfError> {
    let src_name = words.next().ok_or_else(|| SdfError::Parse {
        line,
        message: "channel needs `SRC -> DST`".into(),
    })?;
    let arrow = words.next();
    if arrow != Some("->") {
        return Err(SdfError::Parse {
            line,
            message: "expected `->` after the source actor".into(),
        });
    }
    let dst_name = words.next().ok_or_else(|| SdfError::Parse {
        line,
        message: "channel needs a destination actor".into(),
    })?;
    let src = graph
        .actor_by_name(src_name)
        .ok_or_else(|| SdfError::Parse {
            line,
            message: format!("unknown actor `{src_name}`"),
        })?;
    let dst = graph
        .actor_by_name(dst_name)
        .ok_or_else(|| SdfError::Parse {
            line,
            message: format!("unknown actor `{dst_name}`"),
        })?;
    let (mut produce, mut consume, mut tokens, mut token_words) = (None, None, 0, 1);
    for kv in words {
        let (key, value) = split_kv(kv, line)?;
        let value = parse_u64(value, line)?;
        match key {
            "produce" => produce = Some(value),
            "consume" => consume = Some(value),
            "tokens" => tokens = value,
            "words" => token_words = value,
            _ => {
                return Err(SdfError::Parse {
                    line,
                    message: format!("unknown channel attribute `{key}`"),
                })
            }
        }
    }
    let produce = produce.ok_or_else(|| SdfError::Parse {
        line,
        message: "channel needs produce=N".into(),
    })?;
    let consume = consume.ok_or_else(|| SdfError::Parse {
        line,
        message: "channel needs consume=N".into(),
    })?;
    graph
        .add_channel(src, dst, produce, consume, tokens, token_words)
        .map_err(|e| SdfError::Parse {
            line,
            message: e.to_string(),
        })
}

fn split_kv(kv: &str, line: usize) -> Result<(&str, &str), SdfError> {
    kv.split_once('=').ok_or_else(|| SdfError::Parse {
        line,
        message: format!("expected key=value, found `{kv}`"),
    })
}

fn parse_u64(value: &str, line: usize) -> Result<u64, SdfError> {
    value.parse().map_err(|_| SdfError::Parse {
        line,
        message: format!("invalid number `{value}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pipeline() {
        let g = parse(
            "
            # comment line
            actor src  wcet=100 accesses=20
            actor sink wcet=80          # trailing comment
            channel src -> sink produce=1 consume=2 tokens=0 words=8
            ",
        )
        .unwrap();
        assert_eq!(g.actors().len(), 2);
        assert_eq!(g.channels().len(), 1);
        assert_eq!(g.channels()[0].words_per_token, 8);
        assert_eq!(g.repetition_vector().unwrap(), vec![2, 1]);
    }

    #[test]
    fn defaults_for_optional_attributes() {
        let g =
            parse("actor a wcet=1\nactor b wcet=1\nchannel a -> b produce=1 consume=1").unwrap();
        let ch = g.channels()[0];
        assert_eq!(ch.initial, 0);
        assert_eq!(ch.words_per_token, 1);
        assert_eq!(g.actors()[0].accesses, 0);
    }

    #[test]
    fn error_reports_line_numbers() {
        let err = parse("actor a wcet=1\nbogus directive").unwrap_err();
        assert!(matches!(err, SdfError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn missing_wcet_is_an_error() {
        let err = parse("actor a accesses=3").unwrap_err();
        assert!(err.to_string().contains("wcet"));
    }

    #[test]
    fn unknown_actor_in_channel() {
        let err = parse("actor a wcet=1\nchannel a -> ghost produce=1 consume=1").unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn duplicate_actor_rejected() {
        let err = parse("actor a wcet=1\nactor a wcet=2").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn malformed_attribute_rejected() {
        let err = parse("actor a wcet").unwrap_err();
        assert!(err.to_string().contains("key=value"));
        let err = parse("actor a wcet=abc").unwrap_err();
        assert!(err.to_string().contains("invalid number"));
    }

    #[test]
    fn zero_rate_via_parser_is_reported_with_line() {
        let err = parse("actor a wcet=1\nactor b wcet=1\nchannel a -> b produce=0 consume=1")
            .unwrap_err();
        assert!(matches!(err, SdfError::Parse { line: 3, .. }));
    }
}
