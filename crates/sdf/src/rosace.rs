//! The ROSACE longitudinal flight controller as a built-in workload.
//!
//! ROSACE (Pagetti, Saussié, Gratia, Noulard, Siron — "The ROSACE case
//! study: from Simulink specification to multi/many-core execution",
//! RTAS 2014) is the standard open avionics case study: a longitudinal
//! flight controller holding altitude and airspeed, specified as a
//! multi-rate harmonic task set (200 Hz / 100 Hz / 50 Hz) with explicit
//! data flow. It is exactly the application class the paper's
//! introduction motivates ("avionics or autonomous vehicles applications
//! … heavily coupled to time"), so it serves as the repo's built-in
//! real-benchmark counterpart to the synthetic Tobita–Kasahara DAGs.
//!
//! [`rosace`] models the controller as a synchronous-dataflow graph over
//! one 20 ms hyper-period: the 200 Hz actors (aircraft dynamics and the
//! elevator/engine actuators) fire four times per iteration, the 100 Hz
//! filters twice, the 50 Hz control laws once. Harmonic rate transitions
//! become SDF rates (a 100 Hz filter consumes 2 tokens per firing from a
//! 200 Hz producer), and the actuator→dynamics feedback loops carry one
//! hyper-period of initial tokens — the sample delay that makes the
//! closed loop schedulable. Expanding `k` iterations with
//! [`SdfGraph::expand`](crate::SdfGraph::expand) yields the temporal DAG
//! the interference analysis consumes: 25 firings per hyper-period.
//!
//! Per-firing WCETs follow the case study's published execution-time
//! measurements (sub-10 µs per task), scaled to cycles at 100 cycles/µs;
//! private memory accesses model the controller state each task reads
//! and writes. Every firing's total demand (private + channel traffic)
//! stays below its WCET, so `mia simulate` accepts the expanded
//! workloads.
//!
//! # Example
//!
//! ```
//! let rosace = mia_sdf::rosace();
//! let q = rosace.repetition_vector()?;
//! assert_eq!(q.iter().sum::<u64>(), 25); // firings per 20 ms hyper-period
//! let dag = rosace.expand(2)?; // two hyper-periods → 50 tasks
//! assert_eq!(dag.graph.len(), 50);
//! # Ok::<(), mia_sdf::SdfError>(())
//! ```

use mia_model::Cycles;

use crate::SdfGraph;

/// Firings of the 200 Hz actors per 20 ms hyper-period (and the initial
/// tokens on the actuator→dynamics feedback loops: one hyper-period of
/// delay).
const FAST_RATE: u64 = 4;

/// Duration of one hyper-period (one graph iteration): 20 ms at the
/// crate's 100 cycles/µs scale. Declared on the graph so a deadline in
/// cycles can be translated into an iteration count
/// ([`SdfGraph::iterations_for_deadline`](crate::SdfGraph::iterations_for_deadline)).
pub const HYPER_PERIOD: Cycles = Cycles(2_000_000);

/// Builds the ROSACE longitudinal flight controller as an [`SdfGraph`].
///
/// Actors, in definition order (period, WCET in cycles):
///
/// | Actor | Rate | WCET | Role |
/// |-------|------|------|------|
/// | `engine` | 200 Hz | 120 | thrust actuator |
/// | `elevator` | 200 Hz | 120 | elevator actuator |
/// | `aircraft_dynamics` | 200 Hz | 870 | longitudinal dynamics integration |
/// | `h_filter` | 100 Hz | 80 | altitude anti-aliasing filter |
/// | `az_filter` | 100 Hz | 70 | vertical-acceleration filter |
/// | `vz_filter` | 100 Hz | 70 | vertical-speed filter |
/// | `q_filter` | 100 Hz | 70 | pitch-rate filter |
/// | `va_filter` | 100 Hz | 70 | airspeed filter |
/// | `altitude_hold` | 50 Hz | 60 | outer altitude loop |
/// | `vz_control` | 50 Hz | 70 | vertical-speed control law |
/// | `va_control` | 50 Hz | 60 | airspeed control law |
///
/// Data flow follows the case study's block diagram: the dynamics feed
/// the five filters, the filters feed the control laws, `altitude_hold`
/// cascades into `vz_control`, and the control laws command the
/// actuators, which close the loop back into the dynamics with one
/// hyper-period of delay tokens.
pub fn rosace() -> SdfGraph {
    let mut g = SdfGraph::new();
    let actor = |g: &mut SdfGraph, name: &str, wcet: u64, accesses: u64| {
        g.add_actor(name, Cycles(wcet), accesses)
            .expect("ROSACE actor names are unique")
    };
    // 200 Hz: actuators and dynamics.
    let engine = actor(&mut g, "engine", 120, 8);
    let elevator = actor(&mut g, "elevator", 120, 8);
    let dynamics = actor(&mut g, "aircraft_dynamics", 870, 60);
    // 100 Hz: the measurement filters.
    let h_filter = actor(&mut g, "h_filter", 80, 10);
    let az_filter = actor(&mut g, "az_filter", 70, 10);
    let vz_filter = actor(&mut g, "vz_filter", 70, 10);
    let q_filter = actor(&mut g, "q_filter", 70, 10);
    let va_filter = actor(&mut g, "va_filter", 70, 10);
    // 50 Hz: the control laws.
    let altitude_hold = actor(&mut g, "altitude_hold", 60, 12);
    let vz_control = actor(&mut g, "vz_control", 70, 12);
    let va_control = actor(&mut g, "va_control", 60, 12);

    let ch = |g: &mut SdfGraph, src, dst, produce, consume, initial, words| {
        g.add_channel(src, dst, produce, consume, initial, words)
            .expect("ROSACE channels are rate-consistent")
    };
    // Closed loop: actuator outputs feed the dynamics with one
    // hyper-period of delay (T and delta_e, one sample each).
    ch(&mut g, engine, dynamics, 1, 1, FAST_RATE, 2);
    ch(&mut g, elevator, dynamics, 1, 1, FAST_RATE, 2);
    // 200 Hz → 100 Hz downsampling into the filters (h, az, Vz, q, Va).
    for filter in [h_filter, az_filter, vz_filter, q_filter, va_filter] {
        ch(&mut g, dynamics, filter, 1, 2, 0, 2);
    }
    // 100 Hz → 50 Hz into the control laws.
    ch(&mut g, h_filter, altitude_hold, 1, 2, 0, 2);
    for filter in [az_filter, vz_filter, q_filter] {
        ch(&mut g, filter, vz_control, 1, 2, 0, 2);
    }
    for filter in [vz_filter, q_filter, va_filter] {
        ch(&mut g, filter, va_control, 1, 2, 0, 2);
    }
    // The outer loop cascades into the vertical-speed law.
    ch(&mut g, altitude_hold, vz_control, 1, 1, 0, 2);
    // 50 Hz commands drive the 200 Hz actuators (delta_e_c, delta_th_c).
    ch(&mut g, vz_control, elevator, FAST_RATE, 1, 0, 2);
    ch(&mut g, va_control, engine, FAST_RATE, 1, 0, 2);
    g.set_hyper_period(HYPER_PERIOD);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repetition_vector_matches_the_rates() {
        // 200 Hz actors fire 4×, 100 Hz 2×, 50 Hz 1× per hyper-period.
        let q = rosace().repetition_vector().unwrap();
        assert_eq!(q, vec![4, 4, 4, 2, 2, 2, 2, 2, 1, 1, 1]);
    }

    #[test]
    fn expansion_is_acyclic_and_sized() {
        let g = rosace();
        for iterations in [1, 2, 5] {
            let e = g.expand(iterations).unwrap();
            assert_eq!(e.graph.len() as u64, 25 * iterations);
            assert!(e.graph.topological_order().is_ok(), "{iterations} iters");
        }
    }

    #[test]
    fn feedback_needs_the_delay_tokens() {
        // Without the hyper-period of initial tokens the closed loop
        // deadlocks — the delay is load-bearing, not decorative.
        let mut g = SdfGraph::new();
        let engine = g.add_actor("engine", Cycles(120), 8).unwrap();
        let dynamics = g.add_actor("dynamics", Cycles(870), 60).unwrap();
        let va_filter = g.add_actor("va_filter", Cycles(70), 10).unwrap();
        let va_control = g.add_actor("va_control", Cycles(60), 12).unwrap();
        g.add_channel(engine, dynamics, 1, 1, 0, 2).unwrap(); // no delay
        g.add_channel(dynamics, va_filter, 1, 2, 0, 2).unwrap();
        g.add_channel(va_filter, va_control, 1, 2, 0, 2).unwrap();
        g.add_channel(va_control, engine, 4, 1, 0, 2).unwrap();
        assert!(matches!(g.expand(1), Err(crate::SdfError::Deadlock)));
    }

    #[test]
    fn per_firing_demand_stays_under_wcet() {
        // `mia simulate` requires total demand ≤ WCET at 1 cycle/access.
        // A firing's demand is its private accesses plus the words of all
        // incident expansion edges.
        let e = rosace().expand(3).unwrap();
        let g = rosace();
        for (task_id, task) in e.graph.iter() {
            let (actor, _) = e.firings[task_id.index()];
            let mut demand = g.actors()[actor.index()].accesses;
            demand += e
                .graph
                .edges()
                .iter()
                .filter(|edge| edge.src == task_id || edge.dst == task_id)
                .map(|edge| edge.words)
                .sum::<u64>();
            assert!(
                demand <= task.wcet().as_u64(),
                "{}: demand {demand} > wcet {}",
                task.name(),
                task.wcet()
            );
        }
    }

    #[test]
    fn declares_the_20ms_hyper_period() {
        let g = rosace();
        assert_eq!(g.hyper_period(), Some(HYPER_PERIOD));
        // One hyper-period covers any deadline up to 20 ms of cycles…
        assert_eq!(g.iterations_for_deadline(Cycles(1)).unwrap(), 1);
        assert_eq!(g.iterations_for_deadline(Cycles(2_000_000)).unwrap(), 1);
        // …and the count grows by whole hyper-periods past that.
        assert_eq!(g.iterations_for_deadline(Cycles(2_000_001)).unwrap(), 2);
        assert_eq!(g.iterations_for_deadline(Cycles(10_000_000)).unwrap(), 5);
        // An absurd deadline overflows the expansion bound with a clear
        // error instead of attempting a gigantic expansion.
        assert!(matches!(
            g.iterations_for_deadline(Cycles(u64::MAX)),
            Err(crate::SdfError::TooLarge)
        ));
        // Graphs without a declared period cannot serve deadlines.
        let mut bare = SdfGraph::new();
        bare.add_actor("a", Cycles(10), 0).unwrap();
        assert!(matches!(
            bare.iterations_for_deadline(Cycles(100)),
            Err(crate::SdfError::NoHyperPeriod)
        ));
    }

    #[test]
    fn buffers_are_bounded() {
        let bounds = rosace().buffer_bounds().unwrap();
        assert!(bounds.total_words() > 0);
    }

    #[test]
    fn round_trips_through_sdf3() {
        let g = rosace();
        let back = crate::parse_sdf3(&crate::to_sdf3(&g, "rosace")).unwrap();
        assert_eq!(back, g);
    }
}
