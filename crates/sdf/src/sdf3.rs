//! SDF3 XML import/export for [`SdfGraph`].
//!
//! [SDF3] (Stuijk, Geilen, Basten — "SDF³: SDF For Free", ACSD 2006) is
//! the de-facto interchange format for synchronous-dataflow benchmarks:
//! the MP3/H.263/modem graphs of the SDF3 benchmark suite, and most
//! published SDF case studies, ship as `.sdf3` / `.xml` files. This
//! module reads that format into an [`SdfGraph`] — and writes one back —
//! so real benchmark applications flow through the same
//! expand→map→analyze pipeline as the hand-written text format of
//! [`crate::parse`].
//!
//! The reader is a small hand-rolled XML scanner (no external XML
//! dependency): tags, attributes and 1-based line numbers, with text
//! content, comments, processing instructions and DOCTYPE skipped. It
//! understands the subset of SDF3 the analysis needs:
//!
//! * `<actor name=…>` with `<port type="in|out" name=… rate=…>` children
//!   (rate defaults to 1),
//! * `<channel srcActor=… srcPort=… dstActor=… dstPort=…
//!   [initialTokens=…]>` — production/consumption rates come from the
//!   referenced ports,
//! * `<actorProperties actor=…>` → `<executionTime time=…>` (the
//!   per-firing WCET; the `default="true"` processor wins when several
//!   are given) and `<stateSize max=…>` (mapped onto the actor's private
//!   memory accesses),
//! * `<channelProperties channel=…>` → `<tokenSize sz=…>` (memory words
//!   per token, default 1),
//! * `<hyperPeriod time=…>` inside `<sdfProperties>` — a small dialect
//!   extension declaring the wall-clock duration of one graph iteration
//!   in cycles ([`SdfGraph::hyper_period`]), which lets the CLI derive
//!   `--iterations` from a `--deadline`; foreign files simply omit it.
//!
//! Everything else (`bufferSize`, throughput constraints, …) is ignored.
//! Errors follow the text parser's contract: [`SdfError::Parse`] with a
//! 1-based line number for malformed XML, unknown actor/port references,
//! zero rates, duplicate actors and missing execution times.
//!
//! # Example
//!
//! ```
//! let xml = r#"<?xml version="1.0"?>
//! <sdf3 type="sdf" version="1.0">
//!   <applicationGraph name="pipeline">
//!     <sdf name="pipeline" type="G">
//!       <actor name="src" type="a">
//!         <port name="out" type="out" rate="3"/>
//!       </actor>
//!       <actor name="sink" type="a">
//!         <port name="in" type="in" rate="1"/>
//!       </actor>
//!       <channel name="c0" srcActor="src" srcPort="out"
//!                dstActor="sink" dstPort="in"/>
//!     </sdf>
//!     <sdfProperties>
//!       <actorProperties actor="src">
//!         <processor type="cluster" default="true">
//!           <executionTime time="100"/>
//!         </processor>
//!       </actorProperties>
//!       <actorProperties actor="sink">
//!         <processor type="cluster" default="true">
//!           <executionTime time="250"/>
//!         </processor>
//!       </actorProperties>
//!       <channelProperties channel="c0">
//!         <tokenSize sz="8"/>
//!       </channelProperties>
//!     </sdfProperties>
//!   </applicationGraph>
//! </sdf3>"#;
//! let g = mia_sdf::parse_sdf3(xml)?;
//! assert_eq!(g.actors().len(), 2);
//! assert_eq!(g.repetition_vector()?, vec![1, 3]);
//! # Ok::<(), mia_sdf::SdfError>(())
//! ```
//!
//! [SDF3]: https://www.es.ele.tue.nl/sdf3/

use std::collections::HashMap;

use mia_model::Cycles;

use crate::{SdfError, SdfGraph};

// ─── The XML scanner ────────────────────────────────────────────────────

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TagKind {
    Open,
    Close,
    Empty,
}

#[derive(Debug)]
struct Tag<'a> {
    name: &'a str,
    attrs: Vec<(&'a str, String)>,
    kind: TagKind,
    line: usize,
}

impl Tag<'_> {
    fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

struct Scanner<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Scanner<'a> {
    fn new(src: &'a str) -> Self {
        Scanner {
            src,
            pos: 0,
            line: 1,
        }
    }

    fn error(&self, line: usize, message: impl Into<String>) -> SdfError {
        SdfError::Parse {
            line,
            message: message.into(),
        }
    }

    /// Advances past `self.src[self.pos..self.pos + n]`, counting lines.
    fn advance(&mut self, n: usize) {
        let skipped = &self.src[self.pos..self.pos + n];
        self.line += skipped.bytes().filter(|&b| b == b'\n').count();
        self.pos += n;
    }

    /// Skips to just after the next occurrence of `needle`, or errors.
    fn skip_past(&mut self, needle: &str, what: &str) -> Result<(), SdfError> {
        let start = self.line;
        match self.src[self.pos..].find(needle) {
            Some(i) => {
                self.advance(i + needle.len());
                Ok(())
            }
            None => Err(self.error(start, format!("malformed XML: unterminated {what}"))),
        }
    }

    /// The next tag, or `None` at end of input.
    fn next_tag(&mut self) -> Result<Option<Tag<'a>>, SdfError> {
        loop {
            let Some(lt) = self.src[self.pos..].find('<') else {
                self.advance(self.src.len() - self.pos);
                return Ok(None);
            };
            self.advance(lt);
            let rest = &self.src[self.pos..];
            if rest.starts_with("<?") {
                self.skip_past("?>", "processing instruction")?;
            } else if rest.starts_with("<!--") {
                self.skip_past("-->", "comment")?;
            } else if rest.starts_with("<!") {
                self.skip_past(">", "declaration")?;
            } else {
                return self.parse_tag().map(Some);
            }
        }
    }

    /// Parses the tag starting at `self.pos` (which points at `<`).
    fn parse_tag(&mut self) -> Result<Tag<'a>, SdfError> {
        let line = self.line;
        self.advance(1); // consume '<'
        let closing = self.src[self.pos..].starts_with('/');
        if closing {
            self.advance(1);
        }
        let name_len = self.src[self.pos..]
            .find(|c: char| c.is_whitespace() || c == '>' || c == '/')
            .ok_or_else(|| self.error(line, "malformed XML: unterminated tag"))?;
        let name = &self.src[self.pos..self.pos + name_len];
        if name.is_empty() {
            return Err(self.error(line, "malformed XML: tag without a name"));
        }
        self.advance(name_len);
        let mut attrs = Vec::new();
        loop {
            // Skip whitespace between attributes.
            let ws = self.src[self.pos..]
                .find(|c: char| !c.is_whitespace())
                .ok_or_else(|| self.error(line, "malformed XML: unterminated tag"))?;
            self.advance(ws);
            let rest = &self.src[self.pos..];
            if rest.starts_with("/>") {
                self.advance(2);
                if closing {
                    return Err(self.error(line, "malformed XML: `</…/>` tag"));
                }
                return Ok(Tag {
                    name,
                    attrs,
                    kind: TagKind::Empty,
                    line,
                });
            }
            if rest.starts_with('>') {
                self.advance(1);
                return Ok(Tag {
                    name,
                    attrs,
                    kind: if closing {
                        TagKind::Close
                    } else {
                        TagKind::Open
                    },
                    line,
                });
            }
            // An attribute: name="value" (or single quotes).
            let key_len = self.src[self.pos..]
                .find(|c: char| c.is_whitespace() || c == '=' || c == '>' || c == '/')
                .ok_or_else(|| self.error(line, "malformed XML: unterminated tag"))?;
            let key = &self.src[self.pos..self.pos + key_len];
            self.advance(key_len);
            let eq = self.src[self.pos..]
                .find(|c: char| !c.is_whitespace())
                .ok_or_else(|| self.error(line, "malformed XML: unterminated tag"))?;
            self.advance(eq);
            if !self.src[self.pos..].starts_with('=') {
                return Err(self.error(
                    self.line,
                    format!("malformed XML: attribute `{key}` has no value"),
                ));
            }
            self.advance(1);
            let q = self.src[self.pos..]
                .find(|c: char| !c.is_whitespace())
                .ok_or_else(|| self.error(line, "malformed XML: unterminated tag"))?;
            self.advance(q);
            let quote = self.src[self.pos..].chars().next();
            let quote = match quote {
                Some(c @ ('"' | '\'')) => c,
                _ => {
                    return Err(self.error(
                        self.line,
                        format!("malformed XML: attribute `{key}` value is not quoted"),
                    ))
                }
            };
            self.advance(1);
            let val_len = self.src[self.pos..].find(quote).ok_or_else(|| {
                self.error(
                    self.line,
                    format!("malformed XML: unterminated value of attribute `{key}`"),
                )
            })?;
            let raw = &self.src[self.pos..self.pos + val_len];
            self.advance(val_len + 1);
            attrs.push((key, unescape(raw)));
        }
    }
}

/// Expands the five predefined XML entities.
fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_owned();
    }
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Escapes a string for use inside a double-quoted XML attribute.
fn escape(s: &str) -> String {
    if !s.contains(['&', '<', '>', '"']) {
        return s.to_owned();
    }
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

// ─── The SDF3 reader ────────────────────────────────────────────────────

#[derive(Debug, Default)]
struct ActorDef {
    line: usize,
    /// Port name → (rate, defining line).
    ports: HashMap<String, (u64, usize)>,
    wcet: Option<u64>,
    /// Whether the recorded `wcet` came from a `default="true"` processor
    /// (which wins over non-default ones).
    wcet_is_default: bool,
    accesses: Option<u64>,
    /// Same default-wins rule as `wcet_is_default`, for `accesses`.
    accesses_is_default: bool,
}

#[derive(Debug)]
struct ChannelDef {
    line: usize,
    name: Option<String>,
    src_actor: String,
    src_port: String,
    dst_actor: String,
    dst_port: String,
    initial: u64,
    words_per_token: u64,
}

fn required<'t>(tag: &'t Tag<'_>, attr: &str) -> Result<&'t str, SdfError> {
    tag.attr(attr).ok_or_else(|| SdfError::Parse {
        line: tag.line,
        message: format!("<{}> needs a `{attr}` attribute", tag.name),
    })
}

fn parse_u64(value: &str, line: usize, what: &str) -> Result<u64, SdfError> {
    value.trim().parse().map_err(|_| SdfError::Parse {
        line,
        message: format!("invalid number `{value}` for {what}"),
    })
}

/// Parses an SDF3 XML document into an [`SdfGraph`].
///
/// See the [module documentation](self) for the recognised subset and an
/// example document.
///
/// # Errors
///
/// [`SdfError::Parse`] with a 1-based line number for malformed XML,
/// duplicate actors, unknown actor/port references, zero rates, missing
/// execution times and malformed numbers.
pub fn parse_sdf3(text: &str) -> Result<SdfGraph, SdfError> {
    let mut scanner = Scanner::new(text);
    // Definition order matters: actors get ids in document order.
    let mut actor_order: Vec<String> = Vec::new();
    let mut actors: HashMap<String, ActorDef> = HashMap::new();
    let mut channels: Vec<ChannelDef> = Vec::new();

    let mut stack: Vec<&str> = Vec::new();
    // Contexts carried between nested tags.
    let mut current_actor: Option<String> = None; // inside <sdf><actor>
    let mut props_actor: Option<String> = None; // inside <actorProperties>
    let mut props_channel: Option<String> = None; // inside <channelProperties>
    let mut in_default_processor = false;
    let mut saw_sdf3_root = false;
    let mut hyper_period: Option<u64> = None;

    while let Some(tag) = scanner.next_tag()? {
        match tag.kind {
            TagKind::Close => {
                match stack.pop() {
                    Some(open) if open == tag.name => {}
                    Some(open) => {
                        return Err(SdfError::Parse {
                            line: tag.line,
                            message: format!("malformed XML: `</{}>` closes `<{open}>`", tag.name),
                        })
                    }
                    None => {
                        return Err(SdfError::Parse {
                            line: tag.line,
                            message: format!("malformed XML: unmatched `</{}>`", tag.name),
                        })
                    }
                }
                match tag.name {
                    "actor" => current_actor = None,
                    "actorProperties" => props_actor = None,
                    "channelProperties" => props_channel = None,
                    "processor" => in_default_processor = false,
                    _ => {}
                }
            }
            TagKind::Open | TagKind::Empty => {
                handle_open(
                    &tag,
                    &stack,
                    &mut actor_order,
                    &mut actors,
                    &mut channels,
                    &mut current_actor,
                    &mut props_actor,
                    &mut props_channel,
                    &mut in_default_processor,
                    &mut saw_sdf3_root,
                    &mut hyper_period,
                )?;
                if tag.kind == TagKind::Open {
                    stack.push(tag.name);
                } else {
                    // A self-closing context element (`<actor …/>`,
                    // `<actorProperties …/>`) has no children and gets
                    // no Close event — drop its context immediately so
                    // later stray elements are not attributed to it.
                    match tag.name {
                        "actor" => current_actor = None,
                        "actorProperties" => props_actor = None,
                        "channelProperties" => props_channel = None,
                        "processor" => in_default_processor = false,
                        _ => {}
                    }
                }
            }
        }
    }
    if let Some(open) = stack.pop() {
        return Err(SdfError::Parse {
            line: scanner.line,
            message: format!("malformed XML: `<{open}>` is never closed"),
        });
    }
    if !saw_sdf3_root {
        return Err(SdfError::Parse {
            line: 1,
            message: "not an SDF3 document (no <sdf3> root element)".into(),
        });
    }

    let mut graph = build_graph(actor_order, actors, channels)?;
    if let Some(period) = hyper_period {
        graph.set_hyper_period(Cycles(period));
    }
    Ok(graph)
}

#[allow(clippy::too_many_arguments)]
fn handle_open(
    tag: &Tag<'_>,
    stack: &[&str],
    actor_order: &mut Vec<String>,
    actors: &mut HashMap<String, ActorDef>,
    channels: &mut Vec<ChannelDef>,
    current_actor: &mut Option<String>,
    props_actor: &mut Option<String>,
    props_channel: &mut Option<String>,
    in_default_processor: &mut bool,
    saw_sdf3_root: &mut bool,
    hyper_period: &mut Option<u64>,
) -> Result<(), SdfError> {
    // Full SDF3 files also describe architectures and mappings, which
    // reuse element names (`<actor name=…>` bindings inside
    // `<mapping>`, `<channel>` connections inside `<architectureGraph>`,
    // …). Only the application graph (`<sdf>`) and its property section
    // (`<sdfProperties>`) feed the SdfGraph; everything else is ignored.
    let in_graph = stack.last() == Some(&"sdf");
    let in_properties = stack.contains(&"sdfProperties");
    match tag.name {
        "sdf3" => *saw_sdf3_root = true,
        "actor" if in_graph => {
            let name = required(tag, "name")?.to_owned();
            if actors.contains_key(&name) {
                return Err(SdfError::Parse {
                    line: tag.line,
                    message: SdfError::DuplicateActor(name).to_string(),
                });
            }
            actors.insert(
                name.clone(),
                ActorDef {
                    line: tag.line,
                    ..ActorDef::default()
                },
            );
            actor_order.push(name.clone());
            *current_actor = Some(name);
        }
        "port" => {
            let Some(actor) = current_actor.as_ref() else {
                return Ok(()); // a <port> outside <actor> (e.g. in a csdf extension): ignore
            };
            let name = required(tag, "name")?.to_owned();
            let rate = match tag.attr("rate") {
                Some(r) => parse_u64(r, tag.line, "port rate")?,
                None => 1,
            };
            if rate == 0 {
                return Err(SdfError::Parse {
                    line: tag.line,
                    message: format!(
                        "channel rates must be non-zero (port `{name}` of actor `{actor}`)"
                    ),
                });
            }
            let def = actors.get_mut(actor).expect("current actor is registered");
            if def.ports.insert(name.clone(), (rate, tag.line)).is_some() {
                return Err(SdfError::Parse {
                    line: tag.line,
                    message: format!("duplicate port `{name}` on actor `{actor}`"),
                });
            }
        }
        "channel" if in_graph => {
            channels.push(ChannelDef {
                line: tag.line,
                name: tag.attr("name").map(str::to_owned),
                src_actor: required(tag, "srcActor")?.to_owned(),
                src_port: required(tag, "srcPort")?.to_owned(),
                dst_actor: required(tag, "dstActor")?.to_owned(),
                dst_port: required(tag, "dstPort")?.to_owned(),
                initial: match tag.attr("initialTokens") {
                    Some(v) => parse_u64(v, tag.line, "initialTokens")?,
                    None => 0,
                },
                words_per_token: 1,
            });
        }
        "actorProperties" if in_properties => {
            *props_actor = Some(required(tag, "actor")?.to_owned())
        }
        "channelProperties" if in_properties => {
            *props_channel = Some(required(tag, "channel")?.to_owned())
        }
        "processor" => *in_default_processor = tag.attr("default") == Some("true"),
        "executionTime" => {
            let Some(actor) = props_actor.as_ref() else {
                return Ok(());
            };
            let time = parse_u64(required(tag, "time")?, tag.line, "executionTime")?;
            let def = actors.get_mut(actor).ok_or_else(|| SdfError::Parse {
                line: tag.line,
                message: format!("unknown actor `{actor}` in actorProperties"),
            })?;
            if def.wcet.is_none() || (*in_default_processor && !def.wcet_is_default) {
                def.wcet = Some(time);
                def.wcet_is_default = *in_default_processor;
            }
        }
        "stateSize" => {
            let Some(actor) = props_actor.as_ref() else {
                return Ok(());
            };
            let max = parse_u64(required(tag, "max")?, tag.line, "stateSize")?;
            let def = actors.get_mut(actor).ok_or_else(|| SdfError::Parse {
                line: tag.line,
                message: format!("unknown actor `{actor}` in actorProperties"),
            })?;
            // Same rule as executionTime: the default processor's value
            // wins, otherwise first one seen.
            if def.accesses.is_none() || (*in_default_processor && !def.accesses_is_default) {
                def.accesses = Some(max);
                def.accesses_is_default = *in_default_processor;
            }
        }
        "hyperPeriod" if in_properties => {
            *hyper_period = Some(parse_u64(required(tag, "time")?, tag.line, "hyperPeriod")?);
        }
        "tokenSize" => {
            let Some(channel) = props_channel.as_ref() else {
                return Ok(());
            };
            let sz = parse_u64(required(tag, "sz")?, tag.line, "tokenSize")?;
            let def = channels
                .iter_mut()
                .find(|c| c.name.as_deref() == Some(channel.as_str()))
                .ok_or_else(|| SdfError::Parse {
                    line: tag.line,
                    message: format!("unknown channel `{channel}` in channelProperties"),
                })?;
            def.words_per_token = sz;
        }
        _ => {} // every other element (bufferSize, throughput, …) is ignored
    }
    Ok(())
}

fn build_graph(
    actor_order: Vec<String>,
    mut actors: HashMap<String, ActorDef>,
    channels: Vec<ChannelDef>,
) -> Result<SdfGraph, SdfError> {
    let mut graph = SdfGraph::new();
    let mut ports: HashMap<String, HashMap<String, (u64, usize)>> = HashMap::new();
    for name in &actor_order {
        let def = actors.remove(name).expect("ordered actors are registered");
        let wcet = def.wcet.ok_or_else(|| SdfError::Parse {
            line: def.line,
            message: format!("actor `{name}` has no executionTime"),
        })?;
        graph
            .add_actor(name.clone(), Cycles(wcet), def.accesses.unwrap_or(0))
            .map_err(|e| SdfError::Parse {
                line: def.line,
                message: e.to_string(),
            })?;
        ports.insert(name.clone(), def.ports);
    }
    for ch in channels {
        let resolve = |actor: &str, port: &str, role: &str| -> Result<u64, SdfError> {
            let actor_ports = ports.get(actor).ok_or_else(|| SdfError::Parse {
                line: ch.line,
                message: format!("unknown actor `{actor}` in channel"),
            })?;
            actor_ports
                .get(port)
                .map(|&(rate, _)| rate)
                .ok_or_else(|| SdfError::Parse {
                    line: ch.line,
                    message: format!("unknown {role} port `{port}` on actor `{actor}`"),
                })
        };
        let produce = resolve(&ch.src_actor, &ch.src_port, "source")?;
        let consume = resolve(&ch.dst_actor, &ch.dst_port, "destination")?;
        let src = graph
            .actor_by_name(&ch.src_actor)
            .expect("source actor resolved above");
        let dst = graph
            .actor_by_name(&ch.dst_actor)
            .expect("destination actor resolved above");
        graph
            .add_channel(src, dst, produce, consume, ch.initial, ch.words_per_token)
            .map_err(|e| SdfError::Parse {
                line: ch.line,
                message: e.to_string(),
            })?;
    }
    Ok(graph)
}

// ─── The SDF3 writer ────────────────────────────────────────────────────

/// Serializes a graph as a canonical SDF3 XML document (the exact subset
/// [`parse_sdf3`] reads): one `out`/`in` port pair per channel,
/// `executionTime` on a `default="true"` processor, `stateSize` carrying
/// the private accesses and `tokenSize` carrying the words per token.
///
/// `parse_sdf3(&to_sdf3(&g, "name")) == g` for every graph — pinned by
/// the round-trip tests in this module and the property tests of the
/// crate.
pub fn to_sdf3(graph: &SdfGraph, name: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let name = escape(name);
    let _ = writeln!(out, r#"<?xml version="1.0"?>"#);
    let _ = writeln!(out, r#"<sdf3 type="sdf" version="1.0">"#);
    let _ = writeln!(out, r#"  <applicationGraph name="{name}">"#);
    let _ = writeln!(out, r#"    <sdf name="{name}" type="G">"#);
    for (idx, actor) in graph.actors().iter().enumerate() {
        let _ = writeln!(
            out,
            r#"      <actor name="{}" type="{}">"#,
            escape(&actor.name),
            escape(&actor.name)
        );
        for (ch_idx, ch) in graph.channels().iter().enumerate() {
            if ch.src.index() == idx {
                let _ = writeln!(
                    out,
                    r#"        <port name="o{ch_idx}" type="out" rate="{}"/>"#,
                    ch.produce
                );
            }
            if ch.dst.index() == idx {
                let _ = writeln!(
                    out,
                    r#"        <port name="i{ch_idx}" type="in" rate="{}"/>"#,
                    ch.consume
                );
            }
        }
        let _ = writeln!(out, "      </actor>");
    }
    for (ch_idx, ch) in graph.channels().iter().enumerate() {
        let src = escape(&graph.actors()[ch.src.index()].name);
        let dst = escape(&graph.actors()[ch.dst.index()].name);
        let _ = write!(
            out,
            r#"      <channel name="ch{ch_idx}" srcActor="{src}" srcPort="o{ch_idx}" dstActor="{dst}" dstPort="i{ch_idx}""#
        );
        if ch.initial > 0 {
            let _ = write!(out, r#" initialTokens="{}""#, ch.initial);
        }
        let _ = writeln!(out, "/>");
    }
    let _ = writeln!(out, "    </sdf>");
    let _ = writeln!(out, "    <sdfProperties>");
    if let Some(period) = graph.hyper_period() {
        let _ = writeln!(out, r#"      <hyperPeriod time="{}"/>"#, period.as_u64());
    }
    for actor in graph.actors() {
        let _ = writeln!(
            out,
            r#"      <actorProperties actor="{}">"#,
            escape(&actor.name)
        );
        let _ = writeln!(out, r#"        <processor type="cluster" default="true">"#);
        let _ = writeln!(
            out,
            r#"          <executionTime time="{}"/>"#,
            actor.wcet.as_u64()
        );
        if actor.accesses > 0 {
            let _ = writeln!(out, "          <memory>");
            let _ = writeln!(out, r#"            <stateSize max="{}"/>"#, actor.accesses);
            let _ = writeln!(out, "          </memory>");
        }
        let _ = writeln!(out, "        </processor>");
        let _ = writeln!(out, "      </actorProperties>");
    }
    for (ch_idx, ch) in graph.channels().iter().enumerate() {
        let _ = writeln!(out, r#"      <channelProperties channel="ch{ch_idx}">"#);
        let _ = writeln!(out, r#"        <tokenSize sz="{}"/>"#, ch.words_per_token);
        let _ = writeln!(out, "      </channelProperties>");
    }
    let _ = writeln!(out, "    </sdfProperties>");
    let _ = writeln!(out, "  </applicationGraph>");
    let _ = writeln!(out, "</sdf3>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    /// The downsampling pipeline of the crate docs, in both formats.
    const TEXT: &str = "
        actor src  wcet=100 accesses=20
        actor filt wcet=400 accesses=50
        actor sink wcet=80
        channel src  -> filt produce=1 consume=4 words=8
        channel filt -> sink produce=2 consume=2 tokens=2 words=4
    ";

    fn pipeline_sdf3() -> String {
        r#"<?xml version="1.0"?>
<sdf3 type="sdf" version="1.0">
  <applicationGraph name="pipeline">
    <sdf name="pipeline" type="G">
      <actor name="src" type="a"><port name="out" type="out" rate="1"/></actor>
      <actor name="filt" type="a">
        <port name="in" type="in" rate="4"/>
        <port name="out" type="out" rate="2"/>
      </actor>
      <actor name="sink" type="a"><port name="in" type="in" rate="2"/></actor>
      <channel name="c0" srcActor="src" srcPort="out" dstActor="filt" dstPort="in"/>
      <channel name="c1" srcActor="filt" srcPort="out" dstActor="sink" dstPort="in" initialTokens="2"/>
    </sdf>
    <sdfProperties>
      <actorProperties actor="src">
        <processor type="cluster" default="true">
          <executionTime time="100"/>
          <memory><stateSize max="20"/></memory>
        </processor>
      </actorProperties>
      <actorProperties actor="filt">
        <processor type="cluster" default="true">
          <executionTime time="400"/>
          <memory><stateSize max="50"/></memory>
        </processor>
      </actorProperties>
      <actorProperties actor="sink">
        <processor type="cluster" default="true">
          <executionTime time="80"/>
        </processor>
      </actorProperties>
      <channelProperties channel="c0"><tokenSize sz="8"/></channelProperties>
      <channelProperties channel="c1"><tokenSize sz="4"/></channelProperties>
    </sdfProperties>
  </applicationGraph>
</sdf3>"#
            .to_owned()
    }

    #[test]
    fn sdf3_matches_the_text_format() {
        // The same application written in both front-end formats parses
        // to the identical graph — actors, rates, tokens and all.
        let from_text = parse(TEXT).unwrap();
        let from_xml = parse_sdf3(&pipeline_sdf3()).unwrap();
        assert_eq!(from_text, from_xml);
    }

    #[test]
    fn writer_round_trips() {
        let g = parse(TEXT).unwrap();
        let xml = to_sdf3(&g, "pipeline");
        let back = parse_sdf3(&xml).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn writer_round_trips_awkward_names() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a<b>&\"q\"", Cycles(3), 1).unwrap();
        let b = g.add_actor("plain", Cycles(4), 0).unwrap();
        g.add_channel(a, b, 2, 3, 1, 5).unwrap();
        let back = parse_sdf3(&to_sdf3(&g, "x&y")).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn rate_defaults_to_one_and_expansion_works() {
        let xml = r#"<sdf3 type="sdf" version="1.0"><applicationGraph name="g">
            <sdf name="g" type="G">
              <actor name="a"><port name="o" type="out"/></actor>
              <actor name="b"><port name="i" type="in" rate="2"/></actor>
              <channel name="c" srcActor="a" srcPort="o" dstActor="b" dstPort="i"/>
            </sdf>
            <sdfProperties>
              <actorProperties actor="a"><processor type="p" default="true"><executionTime time="10"/></processor></actorProperties>
              <actorProperties actor="b"><processor type="p" default="true"><executionTime time="20"/></processor></actorProperties>
            </sdfProperties>
        </applicationGraph></sdf3>"#;
        let g = parse_sdf3(xml).unwrap();
        assert_eq!(g.repetition_vector().unwrap(), vec![2, 1]);
        assert_eq!(g.channels()[0].words_per_token, 1);
        let e = g.expand(1).unwrap();
        assert_eq!(e.graph.len(), 3);
    }

    #[test]
    fn default_processor_wins_over_other_processors() {
        let xml = r#"<sdf3><applicationGraph name="g"><sdf name="g" type="G">
              <actor name="a"/>
            </sdf>
            <sdfProperties>
              <actorProperties actor="a">
                <processor type="slow"><executionTime time="999"/></processor>
                <processor type="fast" default="true"><executionTime time="10"/></processor>
              </actorProperties>
            </sdfProperties>
        </applicationGraph></sdf3>"#;
        let g = parse_sdf3(xml).unwrap();
        assert_eq!(g.actors()[0].wcet.as_u64(), 10);
    }

    #[test]
    fn hyper_period_round_trips_and_parses() {
        // A graph with a declared hyper-period keeps it across the
        // writer/reader pair; one without stays bare.
        let mut g = parse(TEXT).unwrap();
        assert_eq!(g.hyper_period(), None);
        let bare = parse_sdf3(&to_sdf3(&g, "p")).unwrap();
        assert_eq!(bare.hyper_period(), None);
        g.set_hyper_period(Cycles(123_456));
        let xml = to_sdf3(&g, "p");
        assert!(xml.contains(r#"<hyperPeriod time="123456"/>"#), "{xml}");
        let back = parse_sdf3(&xml).unwrap();
        assert_eq!(back.hyper_period(), Some(Cycles(123_456)));
        assert_eq!(back, g);
    }

    #[test]
    fn malformed_hyper_period_is_a_parse_error() {
        let g = parse(TEXT).unwrap();
        let xml = to_sdf3(&g, "p").replace(
            "    <sdfProperties>",
            "    <sdfProperties>\n      <hyperPeriod time=\"soon\"/>",
        );
        let err = parse_sdf3(&xml).unwrap_err();
        assert!(err.to_string().contains("hyperPeriod"), "{err}");
    }

    #[test]
    fn comments_and_doctype_are_skipped() {
        let xml = "<?xml version=\"1.0\"?>\n<!DOCTYPE sdf3>\n<!-- a\nmultiline comment -->\n<sdf3><applicationGraph name=\"g\"><sdf name=\"g\" type=\"G\"><actor name=\"a\"/></sdf>\n<sdfProperties><actorProperties actor=\"a\"><processor type=\"p\" default=\"true\"><executionTime time=\"5\"/></processor></actorProperties></sdfProperties>\n</applicationGraph></sdf3>";
        let g = parse_sdf3(xml).unwrap();
        assert_eq!(g.actors().len(), 1);
        assert_eq!(g.actors()[0].wcet.as_u64(), 5);
    }

    // ── Error contract: 1-based line numbers, like the text parser ──

    fn err_at(xml: &str) -> (usize, String) {
        match parse_sdf3(xml).unwrap_err() {
            SdfError::Parse { line, message } => (line, message),
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_xml_is_reported_with_lines() {
        let (line, msg) = err_at("<sdf3>\n<actor name=\"a\"");
        assert_eq!(line, 2, "{msg}");
        assert!(msg.contains("malformed XML"), "{msg}");

        let (line, msg) = err_at("<sdf3>\n<!-- never closed");
        assert_eq!(line, 2, "{msg}");
        assert!(msg.contains("unterminated comment"), "{msg}");

        let (line, msg) = err_at("<sdf3>\n  <actor name=a/>\n</sdf3>");
        assert_eq!(line, 2, "{msg}");
        assert!(msg.contains("not quoted"), "{msg}");

        let (line, msg) = err_at("<sdf3>\n<sdf>\n</sdfProperties>\n</sdf3>");
        assert_eq!(line, 3, "{msg}");
        assert!(msg.contains("closes"), "{msg}");

        let (line, msg) = err_at("<sdf3>\n<sdf>");
        assert_eq!(line, 2, "{msg}");
        assert!(msg.contains("never closed"), "{msg}");
    }

    #[test]
    fn non_sdf3_document_is_rejected() {
        let err = parse_sdf3("<html><body/></html>").unwrap_err();
        assert!(err.to_string().contains("no <sdf3> root"), "{err}");
    }

    #[test]
    fn unknown_actor_refs_are_reported_with_lines() {
        // Channel naming a ghost actor (line 4).
        let (line, msg) = err_at(
            "<sdf3><applicationGraph name=\"g\">\n<sdf name=\"g\" type=\"G\">\n<actor name=\"a\"><port name=\"o\" type=\"out\"/></actor>\n<channel name=\"c\" srcActor=\"a\" srcPort=\"o\" dstActor=\"ghost\" dstPort=\"i\"/>\n</sdf>\n<sdfProperties><actorProperties actor=\"a\"><processor type=\"p\" default=\"true\"><executionTime time=\"1\"/></processor></actorProperties></sdfProperties>\n</applicationGraph></sdf3>",
        );
        assert_eq!(line, 4, "{msg}");
        assert!(msg.contains("ghost"), "{msg}");

        // actorProperties naming a ghost actor (line 3).
        let (line, msg) = err_at(
            "<sdf3><applicationGraph name=\"g\">\n<sdf name=\"g\" type=\"G\"><actor name=\"a\"/></sdf>\n<sdfProperties><actorProperties actor=\"ghost\"><processor type=\"p\"><executionTime time=\"1\"/></processor></actorProperties></sdfProperties>\n</applicationGraph></sdf3>",
        );
        assert_eq!(line, 3, "{msg}");
        assert!(msg.contains("ghost"), "{msg}");

        // Channel naming a ghost port (line 4).
        let (line, msg) = err_at(
            "<sdf3><applicationGraph name=\"g\">\n<sdf name=\"g\" type=\"G\">\n<actor name=\"a\"><port name=\"o\" type=\"out\"/></actor><actor name=\"b\"><port name=\"i\" type=\"in\"/></actor>\n<channel name=\"c\" srcActor=\"a\" srcPort=\"nope\" dstActor=\"b\" dstPort=\"i\"/>\n</sdf>\n<sdfProperties><actorProperties actor=\"a\"><processor type=\"p\" default=\"true\"><executionTime time=\"1\"/></processor></actorProperties><actorProperties actor=\"b\"><processor type=\"p\" default=\"true\"><executionTime time=\"1\"/></processor></actorProperties></sdfProperties>\n</applicationGraph></sdf3>",
        );
        assert_eq!(line, 4, "{msg}");
        assert!(msg.contains("nope"), "{msg}");
    }

    #[test]
    fn zero_rates_are_reported_with_lines() {
        let (line, msg) = err_at(
            "<sdf3><applicationGraph name=\"g\"><sdf name=\"g\" type=\"G\">\n<actor name=\"a\">\n<port name=\"o\" type=\"out\" rate=\"0\"/>\n</actor></sdf></applicationGraph></sdf3>",
        );
        assert_eq!(line, 3, "{msg}");
        assert!(msg.contains("non-zero"), "{msg}");
    }

    #[test]
    fn duplicate_actor_is_reported_with_line() {
        let (line, msg) = err_at(
            "<sdf3><applicationGraph name=\"g\"><sdf name=\"g\" type=\"G\">\n<actor name=\"a\"/>\n<actor name=\"a\"/>\n</sdf></applicationGraph></sdf3>",
        );
        assert_eq!(line, 3, "{msg}");
        assert!(msg.contains("duplicate actor"), "{msg}");
    }

    #[test]
    fn missing_execution_time_is_an_error() {
        let (line, msg) = err_at(
            "<sdf3><applicationGraph name=\"g\"><sdf name=\"g\" type=\"G\">\n<actor name=\"a\"/>\n</sdf></applicationGraph></sdf3>",
        );
        assert_eq!(line, 2, "{msg}");
        assert!(msg.contains("executionTime"), "{msg}");
    }

    #[test]
    fn malformed_numbers_are_errors() {
        let (_, msg) = err_at(
            "<sdf3><applicationGraph name=\"g\"><sdf name=\"g\" type=\"G\"><actor name=\"a\"><port name=\"o\" type=\"out\" rate=\"abc\"/></actor></sdf></applicationGraph></sdf3>",
        );
        assert!(msg.contains("invalid number"), "{msg}");
    }

    #[test]
    fn missing_required_attributes_are_errors() {
        let (_, msg) = err_at("<sdf3><sdf><actor/></sdf></sdf3>");
        assert!(msg.contains("`name` attribute"), "{msg}");
        let (_, msg) = err_at(
            "<sdf3><sdf><actor name=\"a\"/><channel name=\"c\" srcActor=\"a\"/></sdf></sdf3>",
        );
        assert!(msg.contains("srcPort"), "{msg}");
    }

    #[test]
    fn self_closing_context_tags_do_not_leak() {
        // An empty-element <actor/> produces no Close event; a later
        // stray <port> (e.g. in an ignored extension section) must not
        // be attributed to it.
        let xml = r#"<sdf3><applicationGraph name="g"><sdf name="g" type="G">
              <actor name="a"/>
              <port name="stray" type="in" rate="7"/>
            </sdf>
            <sdfProperties>
              <actorProperties actor="a"/>
              <executionTime time="999"/>
              <actorProperties actor="a"><processor type="p" default="true"><executionTime time="5"/></processor></actorProperties>
            </sdfProperties>
        </applicationGraph></sdf3>"#;
        let g = parse_sdf3(xml).unwrap();
        assert_eq!(g.actors().len(), 1);
        // The stray executionTime after the empty actorProperties did
        // not overwrite a's WCET; the real properties block did set it.
        assert_eq!(g.actors()[0].wcet.as_u64(), 5);
    }

    #[test]
    fn architecture_and_mapping_sections_are_ignored() {
        // Full SDF3 tool output also carries architecture and mapping
        // sections whose elements reuse the names <actor>/<channel>;
        // only the application graph and sdfProperties feed the import.
        let xml = r#"<sdf3 type="sdf" version="1.0"><applicationGraph name="g">
            <sdf name="g" type="G">
              <actor name="a"><port name="o" type="out"/></actor>
              <actor name="b"><port name="i" type="in"/></actor>
              <channel name="c" srcActor="a" srcPort="o" dstActor="b" dstPort="i"/>
            </sdf>
            <sdfProperties>
              <actorProperties actor="a"><processor type="p" default="true"><executionTime time="10"/></processor></actorProperties>
              <actorProperties actor="b"><processor type="p" default="true"><executionTime time="20"/></processor></actorProperties>
            </sdfProperties>
          </applicationGraph>
          <architectureGraph name="arch">
            <tile name="t0"/>
            <channel name="bus" srcActor="ignored" dstActor="alsoIgnored"/>
          </architectureGraph>
          <mapping appGraph="g" archGraph="arch">
            <actor name="a"><tile name="t0"/></actor>
            <actor name="b"><tile name="t0"/></actor>
          </mapping>
        </sdf3>"#;
        let g = parse_sdf3(xml).unwrap();
        assert_eq!(g.actors().len(), 2);
        assert_eq!(g.channels().len(), 1);
        assert_eq!(g.repetition_vector().unwrap(), vec![1, 1]);
    }

    #[test]
    fn default_processor_state_size_wins() {
        // stateSize follows the same default-wins rule as executionTime:
        // a later non-default processor must not overwrite the default
        // processor's memory accesses.
        let xml = r#"<sdf3><applicationGraph name="g"><sdf name="g" type="G">
              <actor name="a"/>
            </sdf>
            <sdfProperties>
              <actorProperties actor="a">
                <processor type="fast" default="true">
                  <executionTime time="10"/>
                  <memory><stateSize max="10"/></memory>
                </processor>
                <processor type="slow">
                  <executionTime time="999"/>
                  <memory><stateSize max="999"/></memory>
                </processor>
              </actorProperties>
            </sdfProperties>
        </applicationGraph></sdf3>"#;
        let g = parse_sdf3(xml).unwrap();
        assert_eq!(g.actors()[0].wcet.as_u64(), 10);
        assert_eq!(g.actors()[0].accesses, 10);
    }

    #[test]
    fn entities_in_attributes_are_unescaped() {
        let xml = "<sdf3><applicationGraph name=\"g\"><sdf name=\"g\" type=\"G\"><actor name=\"a&amp;b\"/></sdf><sdfProperties><actorProperties actor=\"a&amp;b\"><processor type=\"p\" default=\"true\"><executionTime time=\"1\"/></processor></actorProperties></sdfProperties></applicationGraph></sdf3>";
        let g = parse_sdf3(xml).unwrap();
        assert_eq!(g.actors()[0].name, "a&b");
    }
}
