//! Property-based tests of the SDF front-end: balance equations,
//! expansion structure and parser/printer consistency.

use mia_model::Cycles;
use mia_sdf::{parse, SdfGraph};
use proptest::prelude::*;

/// Strategy: a random acyclic SDF pipeline-ish graph (forward channels
/// only, small rates, so repetition vectors stay small).
fn arb_sdf() -> impl Strategy<Value = SdfGraph> {
    (2usize..7)
        .prop_flat_map(|n| {
            let channels = proptest::collection::vec(
                (0..n, 0..n, 1u64..5, 1u64..5, 0u64..4, 1u64..8).prop_filter_map(
                    "forward channel",
                    |(a, b, p, c, d, w)| {
                        if a < b {
                            Some((a, b, p, c, d, w))
                        } else {
                            None
                        }
                    },
                ),
                1..(n * 2),
            );
            let wcets = proptest::collection::vec(1u64..500, n);
            (Just(n), channels, wcets)
        })
        .prop_map(|(n, channels, wcets)| {
            let mut g = SdfGraph::new();
            let ids: Vec<_> = (0..n)
                .map(|i| {
                    g.add_actor(format!("a{i}"), Cycles(wcets[i]), (i as u64) * 3)
                        .expect("generated names are unique")
                })
                .collect();
            for (a, b, p, c, d, w) in channels {
                g.add_channel(ids[a], ids[b], p, c, d, w).unwrap();
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The defining property of a repetition vector: for every channel,
    /// `q[src] · produce == q[dst] · consume`.
    #[test]
    fn repetition_vector_balances_every_channel(g in arb_sdf()) {
        if let Ok(q) = g.repetition_vector() {
            for ch in g.channels() {
                prop_assert_eq!(
                    q[ch.src.index()] * ch.produce,
                    q[ch.dst.index()] * ch.consume,
                    "channel {} -> {}", ch.src, ch.dst
                );
            }
            // Minimality: the gcd of each connected component is 1 — check
            // globally that not all entries share a factor > 1 when there
            // is a single component. (Weak check: all entries positive.)
            for &v in &q {
                prop_assert!(v >= 1);
            }
        }
    }

    /// Expansion produces exactly Σ q·iterations firings and an acyclic
    /// graph whose edges stay within consecutive iterations.
    #[test]
    fn expansion_counts_and_acyclicity(g in arb_sdf(), iterations in 1u64..4) {
        let Ok(q) = g.repetition_vector() else { return Ok(()); };
        let Ok(e) = g.expand(iterations) else { return Ok(()); };
        let expected: u64 = q.iter().map(|&x| x * iterations).sum();
        prop_assert_eq!(e.graph.len() as u64, expected);
        prop_assert!(e.graph.topological_order().is_ok());
        // Firing metadata is a bijection.
        for (idx, &(actor, k)) in e.firings.iter().enumerate() {
            prop_assert_eq!(
                e.task_of(actor, k),
                Some(mia_model::TaskId::from_index(idx))
            );
        }
    }

    /// More iterations never remove edges: the 1-iteration expansion
    /// embeds into the k-iteration one.
    #[test]
    fn expansions_nest(g in arb_sdf()) {
        let (Ok(e1), Ok(e2)) = (g.expand(1), g.expand(2)) else { return Ok(()); };
        prop_assert!(e2.graph.len() == 2 * e1.graph.len());
        prop_assert!(e2.graph.edge_count() >= e1.graph.edge_count());
    }

    /// Printing a graph into the text format and reparsing is lossless
    /// for the attributes the format covers.
    #[test]
    fn parser_round_trip(g in arb_sdf()) {
        let mut text = String::new();
        for a in g.actors() {
            text.push_str(&format!(
                "actor {} wcet={} accesses={}\n",
                a.name, a.wcet.as_u64(), a.accesses
            ));
        }
        for c in g.channels() {
            text.push_str(&format!(
                "channel {} -> {} produce={} consume={} tokens={} words={}\n",
                g.actors()[c.src.index()].name,
                g.actors()[c.dst.index()].name,
                c.produce, c.consume, c.initial, c.words_per_token
            ));
        }
        let back = parse(&text).unwrap();
        prop_assert_eq!(back.actors(), g.actors());
        prop_assert_eq!(back.channels(), g.channels());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Closed form for a two-actor chain under the eager schedule: the
    /// source (no inputs) fires all its repetitions first, so the channel
    /// peaks at `initial + lcm(produce, consume)` tokens.
    #[test]
    fn chain_buffer_peak_is_initial_plus_lcm(
        produce in 1u64..=12,
        consume in 1u64..=12,
        initial in 0u64..=8,
        words in 1u64..=4,
    ) {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(1), 0).unwrap();
        let b = g.add_actor("b", Cycles(1), 0).unwrap();
        g.add_channel(a, b, produce, consume, initial, words).unwrap();
        let bounds = g.buffer_bounds().unwrap();
        let gcd = {
            let (mut x, mut y) = (produce, consume);
            while y != 0 {
                (x, y) = (y, x % y);
            }
            x
        };
        let lcm = produce / gcd * consume;
        prop_assert_eq!(bounds.tokens(0), initial + lcm);
        prop_assert_eq!(bounds.words(0), (initial + lcm) * words);
    }

    /// Buffer bounds never fall below the initial marking, and the words
    /// bound is exactly tokens × words-per-token, channel by channel.
    #[test]
    fn bounds_dominate_initial_marking(
        produce in 1u64..=6,
        consume in 1u64..=6,
        initial in 0u64..=6,
    ) {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", Cycles(1), 0).unwrap();
        let b = g.add_actor("b", Cycles(1), 0).unwrap();
        let c = g.add_actor("c", Cycles(1), 0).unwrap();
        g.add_channel(a, b, produce, consume, initial, 2).unwrap();
        g.add_channel(b, c, consume, produce, 0, 3).unwrap();
        let bounds = g.buffer_bounds().unwrap();
        prop_assert!(bounds.tokens(0) >= initial);
        for (i, ch) in g.channels().iter().enumerate() {
            prop_assert_eq!(bounds.words(i), bounds.tokens(i) * ch.words_per_token);
        }
    }
}
