//! The shared cross-request memo cache.
//!
//! Keyed by `(method, workload label, CandidateKey, args)`: the
//! [`CandidateKey`] is the existing canonical 128-bit mapping hash from
//! `mia-dse` (equal per-core orders ⇔ equal key). The label rides along
//! because the mapping hash covers only the per-core task orders — two
//! *different* workloads that happen to map the same shape onto the
//! same cores would otherwise collide. With both components, two
//! requests hit the same entry exactly when they run the same method
//! with the same flags against the same workload and design. Only
//! resident-problem requests are cached — a workload token names a file
//! whose content can change between requests, so token-target requests
//! always recompute.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mia_dse::CandidateKey;

/// One memo entry's identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MemoKey {
    method: String,
    label: String,
    design: CandidateKey,
    args: Vec<String>,
}

/// The cache: rendered outputs by request identity, plus hit/miss
/// counters surfaced through the server's `stats` method.
#[derive(Debug, Default)]
pub struct MemoCache {
    entries: Mutex<HashMap<MemoKey, Arc<String>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MemoCache {
    /// An empty cache.
    pub fn new() -> Self {
        MemoCache::default()
    }

    /// Looks up a memoized output, counting a hit or miss.
    pub fn lookup(
        &self,
        method: &str,
        label: &str,
        design: CandidateKey,
        args: &[String],
    ) -> Option<Arc<String>> {
        let key = MemoKey {
            method: method.to_owned(),
            label: label.to_owned(),
            design,
            args: args.to_vec(),
        };
        let found = self.entries.lock().expect("cache lock").get(&key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a computed output. Concurrent identical misses may both
    /// compute and store; last write wins, which is harmless because
    /// equal keys imply equal outputs for deterministic engines.
    pub fn insert(
        &self,
        method: &str,
        label: &str,
        design: CandidateKey,
        args: &[String],
        output: Arc<String>,
    ) {
        let key = MemoKey {
            method: method.to_owned(),
            label: label.to_owned(),
            design,
            args: args.to_vec(),
        };
        self.entries.lock().expect("cache lock").insert(key, output);
    }

    /// Total lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct memoized entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mia_dse::Candidate;
    use mia_model::{Cycles, Mapping, Task, TaskGraph};

    fn key_of(assignment: &[u32]) -> CandidateKey {
        let mut g = TaskGraph::new();
        for i in 0..assignment.len() {
            g.add_task(Task::builder(format!("t{i}")).wcet(Cycles(10)));
        }
        let mapping = Mapping::from_assignment(&g, assignment).unwrap();
        Candidate::from_mapping(&mapping, 4).key()
    }

    #[test]
    fn hits_and_misses_are_counted_per_identity() {
        let cache = MemoCache::new();
        let a = key_of(&[0, 1]);
        let b = key_of(&[1, 0]);
        assert!(cache.lookup("analyze", "w", a, &[]).is_none());
        cache.insert("analyze", "w", a, &[], Arc::new("out".into()));
        assert_eq!(
            cache.lookup("analyze", "w", a, &[]).unwrap().as_str(),
            "out"
        );
        // Different design, method, label or args: all miss.
        assert!(cache.lookup("analyze", "w", b, &[]).is_none());
        assert!(cache.lookup("simulate", "w", a, &[]).is_none());
        assert!(cache.lookup("analyze", "other", a, &[]).is_none());
        assert!(cache.lookup("analyze", "w", a, &["--csv".into()]).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 5);
        assert_eq!(cache.len(), 1);
    }
}
