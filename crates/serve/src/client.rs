//! The blocking client: one connection, framed requests, verified
//! replies.
//!
//! [`Client`] is deliberately synchronous — it sends one frame and
//! blocks for the matching reply. Pipelining (several requests in
//! flight on one connection) is exercised by the test suite with raw
//! frames; the bench opens one client per simulated user instead, which
//! matches how the CLI `mia client` subcommand behaves.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::frame::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
use crate::protocol::{Reply, ReplyBody, Request, PROTOCOL_VERSION};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Io(String),
    /// The server closed the connection without replying.
    Disconnected,
    /// The reply frame was not a valid reply document.
    BadReply(String),
    /// The reply's echoed id did not match the request.
    IdMismatch {
        /// The id the request carried.
        sent: u64,
        /// The id the reply echoed.
        got: u64,
    },
    /// The server spoke a different protocol version.
    VersionMismatch {
        /// The version the server replied with.
        server: u32,
    },
    /// The server answered with a structured error.
    Server {
        /// The error kind (one of [`crate::protocol::kind`]).
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client io error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::BadReply(e) => write!(f, "malformed reply: {e}"),
            ClientError::IdMismatch { sent, got } => {
                write!(f, "reply id {got} does not match request id {sent}")
            }
            ClientError::VersionMismatch { server } => write!(
                f,
                "server speaks protocol version {server}, this client speaks {PROTOCOL_VERSION}"
            ),
            ClientError::Server { kind, message } => write!(f, "{kind}: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Io(e.to_string())
    }
}

/// A blocking connection to a `mia serve` daemon.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the address is unreachable.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, next_id: 1 })
    }

    /// Sends `request` (stamping a fresh id when the caller left it 0)
    /// and blocks for the reply, verifying the echoed id and the
    /// server's protocol version.
    ///
    /// # Errors
    ///
    /// [`ClientError`] for transport failures, malformed or mismatched
    /// replies, and structured server errors.
    pub fn request(&mut self, mut request: Request) -> Result<ReplyBody, ClientError> {
        if request.id == 0 {
            request.id = self.next_id;
            self.next_id += 1;
        }
        let sent = request.id;
        let payload =
            serde_json::to_string(&request).map_err(|e| ClientError::BadReply(e.to_string()))?;
        write_frame(&mut self.stream, payload.as_bytes())?;
        let reply = self.read_reply()?;
        if reply.version != PROTOCOL_VERSION {
            return Err(ClientError::VersionMismatch {
                server: reply.version,
            });
        }
        if reply.id != sent {
            return Err(ClientError::IdMismatch {
                sent,
                got: reply.id,
            });
        }
        match (reply.ok, reply.error) {
            (Some(body), _) => Ok(body),
            (None, Some(err)) => Err(ClientError::Server {
                kind: err.kind,
                message: err.message,
            }),
            (None, None) => Err(ClientError::BadReply(
                "reply carries neither ok nor error".to_owned(),
            )),
        }
    }

    /// Reads and decodes one reply frame.
    fn read_reply(&mut self) -> Result<Reply, ClientError> {
        let Some(payload) = read_frame(&mut self.stream, MAX_FRAME_LEN)? else {
            return Err(ClientError::Disconnected);
        };
        let text = String::from_utf8(payload)
            .map_err(|_| ClientError::BadReply("reply is not UTF-8".to_owned()))?;
        serde_json::from_str(&text).map_err(|e| ClientError::BadReply(e.to_string()))
    }

    /// `ping` round-trip.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn ping(&mut self) -> Result<String, ClientError> {
        Ok(self.request(Request::new(0, "ping"))?.output)
    }

    /// Loads `token` resident, returning the handle.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn load(&mut self, token: &str, args: &[String]) -> Result<u64, ClientError> {
        let body = self.request(Request::new(0, "load").workload(token).args(args))?;
        body.handle
            .ok_or_else(|| ClientError::BadReply("load reply carries no handle".to_owned()))
    }

    /// Runs `method` against a workload token.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn run(
        &mut self,
        method: &str,
        token: &str,
        args: &[String],
    ) -> Result<ReplyBody, ClientError> {
        self.request(Request::new(0, method).workload(token).args(args))
    }

    /// Runs `method` against a resident handle.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn run_resident(
        &mut self,
        method: &str,
        handle: u64,
        args: &[String],
    ) -> Result<ReplyBody, ClientError> {
        self.request(Request::new(0, method).handle(handle).args(args))
    }

    /// Fetches the daemon's counters.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; also [`ClientError::BadReply`] when the
    /// stats payload does not parse.
    pub fn stats(&mut self) -> Result<crate::server::StatsSnapshot, ClientError> {
        let body = self.request(Request::new(0, "stats"))?;
        serde_json::from_str(&body.output).map_err(|e| ClientError::BadReply(e.to_string()))
    }

    /// Fetches the daemon's metric registry (counters, gauges and
    /// per-method latency histograms).
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; also [`ClientError::BadReply`] when the
    /// metrics payload does not parse.
    pub fn metrics(&mut self) -> Result<mia_obs::RegistrySnapshot, ClientError> {
        let body = self.request(Request::new(0, "metrics"))?;
        serde_json::from_str(&body.output).map_err(|e| ClientError::BadReply(e.to_string()))
    }

    /// Asks the daemon to stop.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn shutdown(&mut self) -> Result<String, ClientError> {
        Ok(self.request(Request::new(0, "shutdown"))?.output)
    }
}
