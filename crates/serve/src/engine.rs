//! The engine abstraction: what the daemon serves.
//!
//! `mia-serve` owns transport, admission and caching; the actual
//! workload loading and analysis rendering are injected through
//! [`Engine`]. The production implementor is `mia_cli::CliEngine`,
//! which routes every method through the same code paths as the
//! one-shot CLI so served replies are byte-identical to `mia <cmd>`
//! output; the test and bench suites substitute lighter engines.

use std::time::Duration;

use mia_dse::{Candidate, CandidateKey};
use mia_model::{BankPolicy, Problem};

use crate::protocol::kind;

/// A problem held resident by the daemon, as returned by
/// [`Engine::load`].
#[derive(Debug, Clone)]
pub struct Loaded {
    /// The validated, analysis-ready problem.
    pub problem: Problem,
    /// The bank policy candidates are re-derived under (`optimize`).
    pub policy: BankPolicy,
    /// Report label (the token the problem was loaded from).
    pub label: String,
}

impl Loaded {
    /// The canonical 128-bit mapping hash of the resident problem —
    /// the memo-cache key component that identifies the design (see
    /// [`CandidateKey`]).
    pub fn candidate_key(&self) -> CandidateKey {
        Candidate::from_mapping(self.problem.mapping(), self.problem.platform().cores()).key()
    }
}

/// What a request runs against.
#[derive(Debug, Clone, Copy)]
pub enum Target<'a> {
    /// A workload token resolved per request (the CLI's vocabulary).
    Token(&'a str),
    /// A problem already resident in the daemon's store.
    Resident(&'a Loaded),
    /// No workload input (methods like `sweep` build their own).
    None,
}

/// A structured engine failure, mapped verbatim onto the reply's
/// [`ErrorBody`](crate::protocol::ErrorBody).
#[derive(Debug, Clone)]
pub struct EngineError {
    /// One of the [`kind`] constants.
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl EngineError {
    /// A usage-class error.
    pub fn usage(message: impl Into<String>) -> Self {
        EngineError {
            kind: kind::USAGE,
            message: message.into(),
        }
    }

    /// An analysis-class error.
    pub fn analysis(message: impl Into<String>) -> Self {
        EngineError {
            kind: kind::ANALYSIS,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl std::error::Error for EngineError {}

/// The analysis oracle a [`Server`](crate::Server) exposes over TCP.
///
/// Implementations must be thread-safe: the worker pool calls `run`
/// concurrently from every worker.
pub trait Engine: Send + Sync + 'static {
    /// Parses and validates `token` into a resident problem.
    ///
    /// # Errors
    ///
    /// [`EngineError`] describing why the workload cannot be built.
    fn load(&self, token: &str, args: &[String]) -> Result<Loaded, EngineError>;

    /// Runs `method` against `target` with the CLI-style `args` tail,
    /// returning the rendered output. `budget` is the wall-clock that
    /// remains of the request's deadline, when the server enforces one;
    /// engines should cancel cooperatively when they can.
    ///
    /// # Errors
    ///
    /// [`EngineError`] for bad inputs or failed analyses.
    fn run(
        &self,
        method: &str,
        target: Target<'_>,
        args: &[String],
        budget: Option<Duration>,
    ) -> Result<String, EngineError>;

    /// The workload-running methods this engine serves (`load` and the
    /// built-in `ping`/`stats`/`shutdown` are handled by the server).
    fn methods(&self) -> &'static [&'static str];
}
