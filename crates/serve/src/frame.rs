//! The length-prefixed framing codec.
//!
//! A frame is a 4-byte big-endian payload length followed by exactly
//! that many payload bytes (UTF-8 JSON at the protocol layer — the
//! codec itself is byte-agnostic). The length prefix is validated
//! against a hard ceiling *before* any payload allocation, so a hostile
//! or corrupted prefix cannot make the server reserve gigabytes.
//!
//! Error taxonomy (the robustness suite pins all of it):
//!
//! * a clean EOF **between** frames is not an error — [`read_frame`]
//!   returns `Ok(None)`, the normal end of a connection;
//! * an EOF **inside** a frame (truncated prefix or truncated payload)
//!   is [`FrameError::Truncated`];
//! * a prefix above the ceiling is [`FrameError::TooLarge`];
//! * transport failures surface as [`FrameError::Io`].

use std::fmt;
use std::io::{self, Read, Write};

/// Hard ceiling on one frame's payload, in bytes (16 MiB). Large enough
/// for any report the CLI renders, small enough that a corrupted length
/// prefix cannot drive an allocation spike.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Decoding failures of the framing layer.
#[derive(Debug)]
pub enum FrameError {
    /// The length prefix exceeds the ceiling; no payload was read.
    TooLarge {
        /// The advertised payload length.
        len: u32,
        /// The ceiling it exceeded.
        max: u32,
    },
    /// The stream ended inside a frame (prefix or payload).
    Truncated {
        /// Bytes the frame still owed when the stream ended.
        missing: usize,
    },
    /// The transport failed mid-frame.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            FrameError::Truncated { missing } => {
                write!(f, "stream ended inside a frame ({missing} bytes missing)")
            }
            FrameError::Io(e) => write!(f, "frame io error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            // `read_exact` reports a mid-frame EOF this way; the exact
            // shortfall is unknown at that point.
            FrameError::Truncated { missing: 1 }
        } else {
            FrameError::Io(e)
        }
    }
}

/// Writes one frame (prefix + payload) and flushes.
///
/// # Errors
///
/// [`io::Error`] from the underlying writer; payloads above
/// [`MAX_FRAME_LEN`] are rejected as [`io::ErrorKind::InvalidInput`]
/// so a peer that would drop the frame anyway never receives it.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("payload of {} bytes exceeds the frame limit", payload.len()),
            )
        })?;
    // One coalesced write: a separate 4-byte prefix write would
    // interact with Nagle + delayed ACK on TCP streams (a ~40 ms stall
    // per frame while the kernel holds the payload back).
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one frame's payload, or `Ok(None)` on a clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// [`FrameError`] for oversized prefixes, truncation and transport
/// failures (see the module docs for the taxonomy).
pub fn read_frame<R: Read>(r: &mut R, max_len: u32) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Truncated {
                    missing: prefix.len() - filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_be_bytes(prefix);
    if len > max_len {
        return Err(FrameError::TooLarge { len, max: max_len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trips_single_and_back_to_back_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"world!").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_LEN).unwrap().unwrap(),
            b"hello"
        );
        assert_eq!(read_frame(&mut r, MAX_FRAME_LEN).unwrap().unwrap(), b"");
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_LEN).unwrap().unwrap(),
            b"world!"
        );
        assert!(read_frame(&mut r, MAX_FRAME_LEN).unwrap().is_none());
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        // A prefix claiming 4 GiB must fail fast with no payload read.
        let mut r = Cursor::new(0xFFFF_FFFFu32.to_be_bytes().to_vec());
        match read_frame(&mut r, MAX_FRAME_LEN).unwrap_err() {
            FrameError::TooLarge { len, max } => {
                assert_eq!(len, 0xFFFF_FFFF);
                assert_eq!(max, MAX_FRAME_LEN);
            }
            other => panic!("expected TooLarge, got {other}"),
        }
    }

    #[test]
    fn truncated_prefix_and_payload_are_truncation_errors() {
        let mut r = Cursor::new(vec![0, 0]);
        assert!(matches!(
            read_frame(&mut r, MAX_FRAME_LEN),
            Err(FrameError::Truncated { .. })
        ));
        let mut bytes = 10u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"abc"); // 7 bytes short
        let mut r = Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut r, MAX_FRAME_LEN),
            Err(FrameError::Truncated { .. })
        ));
    }

    #[test]
    fn writer_refuses_payloads_above_the_limit() {
        struct NullSink;
        impl std::io::Write for NullSink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        // Claiming a huge slice without allocating it: use a small real
        // payload with a tiny ceiling via the public constant instead —
        // the check is `len > MAX_FRAME_LEN`, so exercise the error path
        // with a vector just over a tiny budget is not possible through
        // the public API. Allocate one byte over the ceiling lazily.
        let big = vec![0u8; MAX_FRAME_LEN as usize + 1];
        let err = write_frame(&mut NullSink, &big).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
