//! Analysis-as-a-service: a persistent daemon that keeps problems
//! resident and serves the interference analysis over TCP.
//!
//! One-shot `mia analyze` pays workload parsing, validation and process
//! start-up on every invocation. For interactive exploration and for
//! driving the analysis from other tools, `mia serve` amortizes that
//! cost: problems are loaded once and held resident, repeated identical
//! requests hit a shared memo cache keyed by the canonical
//! [`CandidateKey`](mia_dse::CandidateKey) mapping hash, and a bounded
//! admission queue sheds load explicitly (`overloaded`) instead of
//! queueing without limit.
//!
//! The crate is transport + protocol + scheduling only; the actual
//! workload loading and report rendering are injected through the
//! [`Engine`] trait. The production engine (`mia_cli::CliEngine`)
//! routes every method through the exact code paths of the one-shot
//! CLI, which is what makes the served-vs-CLI conformance suite able to
//! demand byte-identical output.
//!
//! Layout:
//!
//! * [`frame`] — length-prefixed framing codec (4-byte big-endian
//!   length + JSON payload, hard 16 MiB ceiling);
//! * [`protocol`] — versioned request/reply schema and error kinds;
//! * [`engine`] — the [`Engine`] abstraction and [`Loaded`] problems;
//! * [`cache`] — the shared cross-request [`MemoCache`];
//! * [`server`] — acceptor, reader threads, bounded queue, worker
//!   pool, deadline budgets, graceful shutdown;
//! * [`client`] — a blocking framed [`Client`];
//! * [`testkit`] — [`ServeHandle`]/[`ToyEngine`] harness reused by the
//!   integration tests and the load-generator bench.

pub mod cache;
pub mod client;
pub mod engine;
pub mod frame;
pub mod protocol;
pub mod server;
pub mod testkit;

pub use cache::MemoCache;
pub use client::{Client, ClientError};
pub use engine::{Engine, EngineError, Loaded, Target};
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
pub use protocol::{kind, ErrorBody, Reply, ReplyBody, Request, PROTOCOL_VERSION};
pub use server::{ServeConfig, Server, StatsSnapshot};
pub use testkit::{normalize_timings, ServeHandle, ToyEngine};
