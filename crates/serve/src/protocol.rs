//! Wire protocol: versioned JSON request/reply frames.
//!
//! Every frame carries one JSON document. Requests name a `method`, a
//! client-chosen `id` (echoed verbatim in the reply so pipelined
//! requests can be matched up), the client's protocol `version`, and the
//! method's inputs — a `workload` token (the same vocabulary the CLI
//! positional accepts), a `handle` to a resident problem returned by a
//! prior `load`, and the raw CLI-style `args` tail.
//!
//! Replies always echo [`PROTOCOL_VERSION`] and exactly one of `ok` /
//! `error`. The version pin works like `DSE_CSV_HEADER`: the constant
//! is the single source of truth, every reply carries it, and a request
//! whose `version` differs is rejected with [`kind::VERSION`] before
//! any work is admitted.

use serde::{Deserialize, Serialize};

/// The wire protocol version. Bump on any incompatible change to the
/// frame layout, request schema or reply schema.
pub const PROTOCOL_VERSION: u32 = 1;

/// The structured error kinds a reply can carry. String constants (not
/// an enum) so unknown kinds degrade readably on old clients.
pub mod kind {
    /// Client/server protocol version mismatch.
    pub const VERSION: &str = "version";
    /// The request frame was not valid JSON / not a valid request.
    pub const PARSE: &str = "parse";
    /// The method name is not served.
    pub const UNKNOWN_METHOD: &str = "unknown_method";
    /// The request referenced a handle no `load` returned.
    pub const UNKNOWN_HANDLE: &str = "unknown_handle";
    /// The admission queue is full; retry later.
    pub const OVERLOADED: &str = "overloaded";
    /// The request exhausted its deadline budget before completing.
    pub const DEADLINE: &str = "deadline";
    /// Malformed method inputs (bad flags, missing workload, …).
    pub const USAGE: &str = "usage";
    /// Workload IO failures.
    pub const IO: &str = "io";
    /// Workload parse failures.
    pub const PARSE_WORKLOAD: &str = "parse_workload";
    /// The analysis/search itself failed.
    pub const ANALYSIS: &str = "analysis";
    /// The server is shutting down.
    pub const SHUTDOWN: &str = "shutdown";
}

/// One request frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the reply.
    pub id: u64,
    /// The client's [`PROTOCOL_VERSION`]. Defaults to 0 when absent so
    /// version-less requests are rejected with a clear error instead of
    /// a parse failure.
    #[serde(default)]
    pub version: u32,
    /// The method: `load`, `analyze`, `simulate`, `optimize`, `sweep`,
    /// `stats`, `ping` or `shutdown`.
    pub method: String,
    /// Workload token (file path, SDF input, `rosace`, family token).
    #[serde(default)]
    pub workload: Option<String>,
    /// Resident-problem handle from a prior `load` reply.
    #[serde(default)]
    pub handle: Option<u64>,
    /// CLI-style flag tail, passed to the engine verbatim.
    #[serde(default)]
    pub args: Vec<String>,
}

impl Request {
    /// A request for `method` at the current protocol version.
    pub fn new(id: u64, method: &str) -> Self {
        Request {
            id,
            version: PROTOCOL_VERSION,
            method: method.to_owned(),
            workload: None,
            handle: None,
            args: Vec::new(),
        }
    }

    /// Sets the workload token.
    #[must_use]
    pub fn workload(mut self, token: &str) -> Self {
        self.workload = Some(token.to_owned());
        self
    }

    /// Sets the resident-problem handle.
    #[must_use]
    pub fn handle(mut self, handle: u64) -> Self {
        self.handle = Some(handle);
        self
    }

    /// Sets the argument tail.
    #[must_use]
    pub fn args(mut self, args: &[String]) -> Self {
        self.args = args.to_vec();
        self
    }
}

/// The success payload of a reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplyBody {
    /// The rendered output — for `analyze`/`simulate`/`optimize` this
    /// is byte-identical to the one-shot CLI's stdout for the same
    /// workload and flags.
    #[serde(default)]
    pub output: String,
    /// The resident handle (only on `load` replies).
    #[serde(default)]
    pub handle: Option<u64>,
    /// Task count of the loaded problem (only on `load` replies).
    #[serde(default)]
    pub tasks: Option<u64>,
    /// Core count of the loaded problem (only on `load` replies).
    #[serde(default)]
    pub cores: Option<u64>,
    /// True when the output came from the shared memo cache.
    #[serde(default)]
    pub cached: bool,
}

impl ReplyBody {
    /// A plain-output body.
    pub fn output(text: String) -> Self {
        ReplyBody {
            output: text,
            handle: None,
            tasks: None,
            cores: None,
            cached: false,
        }
    }
}

/// The failure payload of a reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// One of the [`kind`] constants.
    pub kind: String,
    /// Human-readable detail.
    pub message: String,
}

/// One reply frame: the echoed id, the server's protocol version, and
/// exactly one of `ok` / `error`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reply {
    /// The request id this reply answers (0 when the request was so
    /// malformed no id could be recovered).
    pub id: u64,
    /// Always [`PROTOCOL_VERSION`].
    pub version: u32,
    /// Present on success.
    #[serde(default)]
    pub ok: Option<ReplyBody>,
    /// Present on failure.
    #[serde(default)]
    pub error: Option<ErrorBody>,
}

impl Reply {
    /// A success reply.
    pub fn ok(id: u64, body: ReplyBody) -> Self {
        Reply {
            id,
            version: PROTOCOL_VERSION,
            ok: Some(body),
            error: None,
        }
    }

    /// An error reply.
    pub fn error(id: u64, kind: &str, message: impl Into<String>) -> Self {
        Reply {
            id,
            version: PROTOCOL_VERSION,
            ok: None,
            error: Some(ErrorBody {
                kind: kind.to_owned(),
                message: message.into(),
            }),
        }
    }

    /// Serializes the reply as a compact JSON frame payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("replies serialize")
            .into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_with_defaults() {
        let r = Request::new(7, "analyze")
            .workload("rosace")
            .args(&["--iterations".to_owned(), "2".to_owned()]);
        let json = serde_json::to_string(&r).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.version, PROTOCOL_VERSION);

        // A minimal hand-written request defaults the optional fields.
        let min: Request = serde_json::from_str(r#"{"id": 1, "method": "ping"}"#).unwrap();
        assert_eq!(min.version, 0); // rejected later with a clear error
        assert!(min.workload.is_none());
        assert!(min.args.is_empty());
    }

    #[test]
    fn replies_carry_the_version_pin() {
        let ok = Reply::ok(3, ReplyBody::output("done".into()));
        assert_eq!(ok.version, PROTOCOL_VERSION);
        let err = Reply::error(4, kind::OVERLOADED, "queue full");
        assert_eq!(err.version, PROTOCOL_VERSION);
        let json = String::from_utf8(err.to_bytes()).unwrap();
        let back: Reply = serde_json::from_str(&json).unwrap();
        assert_eq!(back.error.unwrap().kind, kind::OVERLOADED);
        assert!(back.ok.is_none());
    }
}
