//! The daemon: TCP acceptor, bounded admission queue, worker pool,
//! resident problem store and shared memo cache.
//!
//! # Threading model
//!
//! * One **acceptor** thread blocks on `TcpListener::accept` and spawns
//!   a reader thread per connection.
//! * One **reader** thread per connection decodes frames, answers the
//!   cheap control methods (`ping`, `stats`, `shutdown`) inline, and
//!   submits everything else to the admission queue. When the queue is
//!   at `max_pending` the reader immediately replies
//!   [`kind::OVERLOADED`] — the daemon never makes a client wait on an
//!   unbounded backlog.
//! * A fixed pool of **worker** threads drains the queue. A worker
//!   first charges the request's queue wait against its deadline budget
//!   (replying [`kind::DEADLINE`] without running when the budget is
//!   already gone), then resolves the target (resident handle or
//!   workload token), consults the memo cache for resident targets, and
//!   runs the engine.
//!
//! Replies go through a per-connection writer mutex, so pipelined
//! requests from one connection can complete out of order — the echoed
//! request id is the correlation key. A client that disconnects
//! mid-request only costs the worker a failed write; the error is
//! swallowed and the worker moves on (pinned by the robustness suite).
//!
//! # Shutdown semantics
//!
//! A `shutdown` request (or [`Server::shutdown`]) flips the shared stop
//! flag, wakes the acceptor with a loopback connection, and wakes every
//! worker. In-flight requests complete and their replies are written;
//! queued-but-unstarted requests are drained with a
//! [`kind::SHUTDOWN`] error so no client hangs. [`Server::wait`] then
//! joins the acceptor and the pool.

use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mia_dse::CandidateKey;
use serde::{Deserialize, Serialize};

use crate::cache::MemoCache;
use crate::engine::{Engine, Loaded, Target};
use crate::frame::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
use crate::protocol::{kind, Reply, ReplyBody, Request, PROTOCOL_VERSION};

/// Server configuration (the `mia serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (0 = available parallelism).
    pub workers: usize,
    /// Admission-queue bound; a full queue replies `overloaded`.
    pub max_pending: usize,
    /// Per-request wall-clock budget, queue wait included.
    pub request_budget: Option<Duration>,
    /// Frame payload ceiling.
    pub max_frame_len: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 0,
            max_pending: 64,
            request_budget: None,
            max_frame_len: MAX_FRAME_LEN,
        }
    }
}

impl ServeConfig {
    /// The worker count the pool actually runs with (resolves the
    /// `0 = available parallelism` sentinel).
    pub fn resolved_workers(&self) -> usize {
        if self.workers != 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// A monotonic snapshot of the daemon's counters, served by the
/// `stats` method as JSON.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Requests decoded (control methods included).
    pub requests: u64,
    /// Successful replies written.
    pub replies_ok: u64,
    /// Error replies written (overloaded/deadline included).
    pub replies_err: u64,
    /// Requests refused because the admission queue was full.
    pub overloaded: u64,
    /// Requests whose budget expired before they ran.
    pub deadline_expired: u64,
    /// Memo-cache hits.
    pub cache_hits: u64,
    /// Memo-cache misses.
    pub cache_misses: u64,
    /// Distinct memoized outputs.
    pub cache_entries: u64,
    /// Problems loaded resident.
    pub loads: u64,
    /// Problems currently resident.
    pub resident: u64,
    /// Jobs sitting in the admission queue right now.
    pub queue_depth: u64,
    /// Workers currently executing a job.
    pub workers_busy: u64,
}

#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    replies_ok: AtomicU64,
    replies_err: AtomicU64,
    overloaded: AtomicU64,
    deadline_expired: AtomicU64,
    loads: AtomicU64,
}

/// One queued unit of work: the decoded request plus where its reply
/// goes and when it was admitted (for budget accounting).
struct Job {
    request: Request,
    writer: Arc<Mutex<TcpStream>>,
    admitted: Instant,
}

/// The admission queue: a bounded deque + condvar. `closed` drains
/// writers on shutdown.
struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
    max_pending: usize,
}

impl Queue {
    /// Admits a job unless the queue is full or the server is stopping
    /// (the job comes back so the caller can answer the client). The
    /// stop check happens under the queue lock: `request_stop` sets the
    /// flag before draining, so a job can never slip in after the drain
    /// and sit unanswered.
    fn push(&self, job: Job, stop: &AtomicBool) -> Result<(), (Box<Job>, bool)> {
        let mut jobs = self.jobs.lock().expect("queue lock");
        if stop.load(Ordering::SeqCst) {
            return Err((Box::new(job), true));
        }
        if jobs.len() >= self.max_pending {
            return Err((Box::new(job), false));
        }
        jobs.push_back(job);
        drop(jobs);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the server stops and the
    /// queue is empty.
    fn pop(&self, stop: &AtomicBool) -> Option<Job> {
        let mut jobs = self.jobs.lock().expect("queue lock");
        loop {
            if let Some(job) = jobs.pop_front() {
                return Some(job);
            }
            if stop.load(Ordering::SeqCst) {
                return None;
            }
            jobs = self.ready.wait(jobs).expect("queue lock");
        }
    }
}

/// Everything the reader/worker threads share.
struct Shared {
    engine: Arc<dyn Engine>,
    queue: Queue,
    cache: MemoCache,
    store: Mutex<HashMap<u64, Arc<Loaded>>>,
    next_handle: AtomicU64,
    stats: Counters,
    stop: AtomicBool,
    budget: Option<Duration>,
    max_frame_len: u32,
    /// This server's own metric registry (served by the `metrics`
    /// method). Per-server and always on — unlike the process-global
    /// registry it is not behind [`mia_obs::enabled`], so concurrent
    /// servers in one process never see each other's numbers.
    obs: mia_obs::Registry,
    /// Request-lifecycle instruments, resolved from `obs` once at
    /// start-up (the per-method execute histograms are looked up per
    /// request — the method set is tiny).
    queue_depth: Arc<mia_obs::Gauge>,
    workers_busy: Arc<mia_obs::Gauge>,
    queue_wait: Arc<mia_obs::Histogram>,
}

impl Shared {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.stats.connections.load(Ordering::Relaxed),
            requests: self.stats.requests.load(Ordering::Relaxed),
            replies_ok: self.stats.replies_ok.load(Ordering::Relaxed),
            replies_err: self.stats.replies_err.load(Ordering::Relaxed),
            overloaded: self.stats.overloaded.load(Ordering::Relaxed),
            deadline_expired: self.stats.deadline_expired.load(Ordering::Relaxed),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_entries: self.cache.len() as u64,
            loads: self.stats.loads.load(Ordering::Relaxed),
            resident: self.store.lock().expect("store lock").len() as u64,
            queue_depth: self.queue.jobs.lock().expect("queue lock").len() as u64,
            workers_busy: self.workers_busy.get().max(0) as u64,
        }
    }

    /// Serializes and writes a reply, counting it. Write failures mean
    /// the client went away — swallowed so the caller moves on.
    fn send(&self, writer: &Mutex<TcpStream>, reply: &Reply) {
        match reply.error {
            None => self.stats.replies_ok.fetch_add(1, Ordering::Relaxed),
            Some(_) => self.stats.replies_err.fetch_add(1, Ordering::Relaxed),
        };
        let bytes = reply.to_bytes();
        let mut stream = writer.lock().expect("writer lock");
        let _ = write_frame(&mut *stream, &bytes);
    }
}

/// A running daemon. Dropping the server shuts it down and joins every
/// thread, so tests cannot leak listeners.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and starts the acceptor and worker pool.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the address cannot be bound.
    pub fn start(engine: Arc<dyn Engine>, config: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let obs = mia_obs::Registry::default();
        let queue_depth = obs.gauge("serve.queue_depth");
        let workers_busy = obs.gauge("serve.workers_busy");
        let queue_wait = obs.histogram("serve.queue_wait_ns");
        let shared = Arc::new(Shared {
            engine,
            queue: Queue {
                jobs: Mutex::new(VecDeque::new()),
                ready: Condvar::new(),
                max_pending: config.max_pending.max(1),
            },
            cache: MemoCache::new(),
            store: Mutex::new(HashMap::new()),
            next_handle: AtomicU64::new(1),
            stats: Counters::default(),
            stop: AtomicBool::new(false),
            budget: config.request_budget,
            max_frame_len: config.max_frame_len,
            obs,
            queue_depth,
            workers_busy,
            queue_wait,
        });

        let mut threads = Vec::new();
        for worker in 0..config.resolved_workers() {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("mia-serve-worker-{worker}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker"),
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("mia-serve-acceptor".to_owned())
                    .spawn(move || acceptor_loop(&listener, &shared))
                    .expect("spawn acceptor"),
            );
        }
        Ok(Server {
            shared,
            local_addr,
            threads,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time view of the daemon's counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// True once a shutdown was requested (by a client or locally).
    pub fn is_stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Requests a graceful stop: wakes the acceptor and workers, drains
    /// queued-but-unstarted jobs with `shutdown` errors.
    pub fn shutdown(&self) {
        request_stop(&self.shared, self.local_addr);
    }

    /// Blocks until every thread exits (after [`Server::shutdown`] or a
    /// client `shutdown` request), returning the final counters.
    pub fn wait(mut self) -> StatsSnapshot {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.shared.snapshot()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        request_stop(&self.shared, self.local_addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn request_stop(shared: &Arc<Shared>, local_addr: SocketAddr) {
    if shared.stop.swap(true, Ordering::SeqCst) {
        return;
    }
    // Drain unstarted jobs so their clients get an answer, not a hang.
    let drained: Vec<Job> = {
        let mut jobs = shared.queue.jobs.lock().expect("queue lock");
        jobs.drain(..).collect()
    };
    for job in drained {
        shared.queue_depth.dec();
        shared.send(
            &job.writer,
            &Reply::error(job.request.id, kind::SHUTDOWN, "server is shutting down"),
        );
    }
    shared.queue.ready.notify_all();
    // Unblock the acceptor's blocking `accept`.
    let _ = TcpStream::connect(local_addr);
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        // Replies are small; never let Nagle hold them back.
        let _ = stream.set_nodelay(true);
        shared.stats.connections.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        let local_addr = listener.local_addr().expect("listener addr");
        // Reader threads are detached: they exit on EOF, frame error or
        // stop, and never outlive useful work (workers hold their own
        // writer clones).
        let _ = std::thread::Builder::new()
            .name("mia-serve-conn".to_owned())
            .spawn(move || reader_loop(stream, &shared, local_addr));
    }
}

/// Decodes one connection's frames until EOF, error or shutdown.
fn reader_loop(stream: TcpStream, shared: &Arc<Shared>, local_addr: SocketAddr) {
    let writer = match stream.try_clone() {
        Ok(clone) => Arc::new(Mutex::new(clone)),
        Err(_) => return,
    };
    let mut reader = stream;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let payload = match read_frame(&mut reader, shared.max_frame_len) {
            Ok(Some(payload)) => payload,
            // Clean EOF or mid-frame disconnect: the connection is gone
            // either way.
            Ok(None) | Err(FrameError::Truncated { .. }) | Err(FrameError::Io(_)) => return,
            Err(e @ FrameError::TooLarge { .. }) => {
                // The stream cannot be resynchronized (the payload was
                // never read); answer once, then drop the connection.
                shared.send(&writer, &Reply::error(0, kind::PARSE, e.to_string()));
                return;
            }
        };
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        let text = match String::from_utf8(payload) {
            Ok(text) => text,
            Err(_) => {
                shared.send(
                    &writer,
                    &Reply::error(0, kind::PARSE, "request frame is not UTF-8"),
                );
                continue;
            }
        };
        let request: Request = match serde_json::from_str(&text) {
            Ok(request) => request,
            Err(e) => {
                // Framing is intact, so the connection stays usable.
                shared.send(
                    &writer,
                    &Reply::error(0, kind::PARSE, format!("bad request: {e}")),
                );
                continue;
            }
        };
        if request.version != PROTOCOL_VERSION {
            shared.send(
                &writer,
                &Reply::error(
                    request.id,
                    kind::VERSION,
                    format!(
                        "protocol version mismatch: client sent {}, server speaks {PROTOCOL_VERSION}",
                        request.version
                    ),
                ),
            );
            continue;
        }
        match request.method.as_str() {
            "ping" => {
                shared.send(
                    &writer,
                    &Reply::ok(request.id, ReplyBody::output("pong".into())),
                );
            }
            "stats" => {
                let body = ReplyBody::output(
                    serde_json::to_string_pretty(&shared.snapshot()).expect("stats serialize"),
                );
                shared.send(&writer, &Reply::ok(request.id, body));
            }
            "metrics" => {
                let body = ReplyBody::output(
                    serde_json::to_string_pretty(&shared.obs.snapshot())
                        .expect("metrics serialize"),
                );
                shared.send(&writer, &Reply::ok(request.id, body));
            }
            "shutdown" => {
                shared.send(
                    &writer,
                    &Reply::ok(request.id, ReplyBody::output("shutting down".into())),
                );
                if let Ok(stream) = writer.lock() {
                    let _ = (&*stream).flush();
                }
                request_stop(shared, local_addr);
                return;
            }
            method if method == "load" || shared.engine.methods().contains(&method) => {
                let job = Job {
                    request,
                    writer: Arc::clone(&writer),
                    admitted: Instant::now(),
                };
                match shared.queue.push(job, &shared.stop) {
                    Ok(()) => shared.queue_depth.inc(),
                    Err((job, stopping)) => {
                        let (kind, message) = if stopping {
                            (kind::SHUTDOWN, "server is shutting down".to_owned())
                        } else {
                            shared.stats.overloaded.fetch_add(1, Ordering::Relaxed);
                            (
                                kind::OVERLOADED,
                                format!(
                                    "admission queue full ({} pending); retry later",
                                    shared.queue.max_pending
                                ),
                            )
                        };
                        shared.send(&writer, &Reply::error(job.request.id, kind, message));
                    }
                }
            }
            other => {
                shared.send(
                    &writer,
                    &Reply::error(
                        request.id,
                        kind::UNKNOWN_METHOD,
                        format!(
                            "unknown method `{other}` (expected load, {}, ping, stats, metrics or shutdown)",
                            shared.engine.methods().join(", ")
                        ),
                    ),
                );
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop(&shared.stop) {
        shared.queue_depth.dec();
        // Queue wait, observed at dequeue. The span is recorded
        // retroactively into the process-global span buffer (a no-op
        // unless profiling is enabled), so a profiled run shows each
        // request's wait next to the analysis phases it delayed.
        let waited = job.admitted.elapsed();
        let wait_ns = u64::try_from(waited.as_nanos()).unwrap_or(u64::MAX);
        shared.queue_wait.observe(wait_ns);
        mia_obs::record_span(
            "serve.queue_wait",
            mia_obs::now_ns().saturating_sub(wait_ns),
            wait_ns,
        );
        shared.workers_busy.inc();
        let exec_started = mia_obs::now_ns();
        let reply = execute(shared, &job);
        let exec_ns = mia_obs::now_ns().saturating_sub(exec_started);
        shared
            .obs
            .histogram(&format!("serve.request.{}_ns", job.request.method))
            .observe(exec_ns);
        mia_obs::record_span("serve.execute", exec_started, exec_ns);
        shared.workers_busy.dec();
        shared.send(&job.writer, &reply);
    }
}

/// Runs one admitted job to a reply.
fn execute(shared: &Shared, job: &Job) -> Reply {
    let request = &job.request;
    // Charge the queue wait against the deadline budget.
    let remaining = match shared.budget {
        None => None,
        Some(budget) => match budget.checked_sub(job.admitted.elapsed()) {
            Some(left) if !left.is_zero() => Some(left),
            _ => {
                shared
                    .stats
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                return Reply::error(
                    request.id,
                    kind::DEADLINE,
                    format!(
                        "request budget of {} ms exhausted while queued",
                        shared.budget.map_or(0, |b| b.as_millis())
                    ),
                );
            }
        },
    };

    if request.method == "load" {
        let Some(token) = request.workload.as_deref() else {
            return Reply::error(request.id, kind::USAGE, "load needs a workload token");
        };
        return match shared.engine.load(token, &request.args) {
            Ok(loaded) => {
                let tasks = loaded.problem.len() as u64;
                let cores = loaded.problem.platform().cores() as u64;
                let handle = shared.next_handle.fetch_add(1, Ordering::Relaxed);
                shared
                    .store
                    .lock()
                    .expect("store lock")
                    .insert(handle, Arc::new(loaded));
                shared.stats.loads.fetch_add(1, Ordering::Relaxed);
                Reply::ok(
                    request.id,
                    ReplyBody {
                        output: format!("loaded {token}: {tasks} tasks on {cores} cores"),
                        handle: Some(handle),
                        tasks: Some(tasks),
                        cores: Some(cores),
                        cached: false,
                    },
                )
            }
            Err(e) => Reply::error(request.id, e.kind, e.message),
        };
    }

    // Resolve the target: resident handle beats workload token.
    let resident: Option<Arc<Loaded>> = match request.handle {
        None => None,
        Some(handle) => match shared.store.lock().expect("store lock").get(&handle) {
            Some(loaded) => Some(Arc::clone(loaded)),
            None => {
                return Reply::error(
                    request.id,
                    kind::UNKNOWN_HANDLE,
                    format!("no resident problem with handle {handle} (did you `load`?)"),
                )
            }
        },
    };

    if let Some(loaded) = resident {
        // Resident targets go through the shared memo cache.
        let design = loaded.candidate_key();
        if let Some(cached) =
            shared
                .cache
                .lookup(&request.method, &loaded.label, design, &request.args)
        {
            return Reply::ok(
                request.id,
                ReplyBody {
                    output: (*cached).clone(),
                    handle: request.handle,
                    tasks: None,
                    cores: None,
                    cached: true,
                },
            );
        }
        return match shared.engine.run(
            &request.method,
            Target::Resident(&loaded),
            &request.args,
            remaining,
        ) {
            Ok(output) => {
                shared.cache.insert(
                    &request.method,
                    &loaded.label,
                    design,
                    &request.args,
                    Arc::new(output.clone()),
                );
                Reply::ok(
                    request.id,
                    ReplyBody {
                        output,
                        handle: request.handle,
                        tasks: None,
                        cores: None,
                        cached: false,
                    },
                )
            }
            Err(e) => Reply::error(request.id, e.kind, e.message),
        };
    }

    // File-backed tokens go through the memo cache under an
    // mtime-stamped label: repeats of the same request are served from
    // memory until the file changes on disk, at which point the stamp —
    // and with it the cache key — moves on, so a stale analysis can
    // never be replayed. Non-file tokens (presets like `rosace`,
    // generator families) are rebuilt per request as before.
    if let Some((token, stamp)) = request
        .workload
        .as_deref()
        .and_then(|t| file_stamp(t).map(|s| (t, s)))
    {
        let label = format!("{token}@mtime={stamp}");
        let design = CandidateKey::default();
        if let Some(cached) = shared
            .cache
            .lookup(&request.method, &label, design, &request.args)
        {
            return Reply::ok(
                request.id,
                ReplyBody {
                    output: (*cached).clone(),
                    handle: None,
                    tasks: None,
                    cores: None,
                    cached: true,
                },
            );
        }
        return match shared.engine.run(
            &request.method,
            Target::Token(token),
            &request.args,
            remaining,
        ) {
            Ok(output) => {
                shared.cache.insert(
                    &request.method,
                    &label,
                    design,
                    &request.args,
                    Arc::new(output.clone()),
                );
                Reply::ok(request.id, ReplyBody::output(output))
            }
            Err(e) => Reply::error(request.id, e.kind, e.message),
        };
    }

    let target = match request.workload.as_deref() {
        Some(token) => Target::Token(token),
        None => Target::None,
    };
    match shared
        .engine
        .run(&request.method, target, &request.args, remaining)
    {
        Ok(output) => Reply::ok(request.id, ReplyBody::output(output)),
        Err(e) => Reply::error(request.id, e.kind, e.message),
    }
}

/// The modification stamp of a file-backed workload token: nanoseconds
/// since the epoch of the file's mtime. `None` for tokens that are not
/// files on disk (preset names, generator family tokens) — those are
/// not cacheable by path identity.
fn file_stamp(token: &str) -> Option<u128> {
    let modified = std::fs::metadata(token).ok()?.modified().ok()?;
    Some(
        modified
            .duration_since(std::time::UNIX_EPOCH)
            .ok()?
            .as_nanos(),
    )
}
