//! In-process test harness for the daemon.
//!
//! [`ServeHandle`] spawns a [`Server`] on an ephemeral loopback port,
//! hands out connected [`Client`]s, and shuts the daemon down cleanly —
//! every integration test and the load-generator bench drive the daemon
//! through it, so "start a server, talk to it, stop it" is written
//! once.
//!
//! [`ToyEngine`] is a deterministic stand-in engine with a configurable
//! artificial delay: fast enough for protocol/robustness tests, slow
//! enough (when asked) to hold workers busy and force the admission
//! queue into its `overloaded` and `deadline` paths on demand.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mia_model::{BankPolicy, Cycles, Mapping, Platform, Problem, Task, TaskGraph};

use crate::client::Client;
use crate::engine::{Engine, EngineError, Loaded, Target};
use crate::server::{ServeConfig, Server, StatsSnapshot};

/// A daemon running in-process on an ephemeral port.
pub struct ServeHandle {
    server: Option<Server>,
}

impl ServeHandle {
    /// Starts `engine` on `127.0.0.1:0` with the given knobs (the
    /// `addr` field of `config` is overridden).
    ///
    /// # Panics
    ///
    /// Panics when the loopback listener cannot be bound — a test
    /// environment failure, not a condition tests should handle.
    pub fn spawn(engine: Arc<dyn Engine>, mut config: ServeConfig) -> ServeHandle {
        config.addr = "127.0.0.1:0".to_owned();
        let server = Server::start(engine, &config).expect("bind ephemeral loopback port");
        ServeHandle {
            server: Some(server),
        }
    }

    /// Starts `engine` with default knobs.
    pub fn spawn_default(engine: Arc<dyn Engine>) -> ServeHandle {
        ServeHandle::spawn(engine, ServeConfig::default())
    }

    /// The daemon's bound address, e.g. to hand to raw `TcpStream`s.
    ///
    /// # Panics
    ///
    /// Panics after [`ServeHandle::shutdown`] consumed the server.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.as_ref().expect("server running").local_addr()
    }

    /// A fresh connected client.
    ///
    /// # Panics
    ///
    /// Panics when the daemon cannot be reached (it is in-process, so
    /// this means the harness itself is broken).
    pub fn client(&self) -> Client {
        Client::connect(self.addr()).expect("connect to in-process daemon")
    }

    /// Current daemon counters.
    ///
    /// # Panics
    ///
    /// Panics after [`ServeHandle::shutdown`] consumed the server.
    pub fn stats(&self) -> StatsSnapshot {
        self.server.as_ref().expect("server running").stats()
    }

    /// Stops the daemon and joins every thread, returning the final
    /// counters. Idempotent via `Drop` — a test that panics first still
    /// tears the daemon down.
    pub fn shutdown(mut self) -> StatsSnapshot {
        let server = self.server.take().expect("server running");
        server.shutdown();
        server.wait()
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown();
            server.wait();
        }
    }
}

/// A deterministic in-memory engine for protocol-level tests.
///
/// * `load` accepts any token and builds a tiny two-task problem, or
///   fails structurally for the token `"bad"` (error-path tests).
/// * `analyze`/`simulate` render `"<method> <label-or-token> [args…]"`
///   after sleeping the configured delay, so outputs are predictable
///   and latency is controllable.
/// * the method `"fail"` always returns an analysis error.
pub struct ToyEngine {
    delay: Duration,
    /// Number of `run` calls that actually executed (reached the
    /// engine, i.e. were not served from the memo cache).
    runs: AtomicU64,
}

impl ToyEngine {
    /// An engine that answers immediately.
    pub fn instant() -> Self {
        ToyEngine::with_delay(Duration::ZERO)
    }

    /// An engine that sleeps `delay` inside every `run`.
    pub fn with_delay(delay: Duration) -> Self {
        ToyEngine {
            delay,
            runs: AtomicU64::new(0),
        }
    }

    /// How many `run` calls reached the engine.
    pub fn runs(&self) -> u64 {
        self.runs.load(Ordering::SeqCst)
    }

    /// The problem every `load` builds.
    fn toy_problem() -> Problem {
        let mut g = TaskGraph::new();
        let a = g.add_task(Task::builder("a").wcet(Cycles(10)));
        let b = g.add_task(Task::builder("b").wcet(Cycles(10)));
        g.add_edge(a, b, 4).expect("toy edge");
        let m = Mapping::from_assignment(&g, &[0, 1]).expect("toy mapping");
        Problem::new(g, m, Platform::new(2, 2)).expect("toy problem")
    }
}

impl Engine for ToyEngine {
    fn load(&self, token: &str, _args: &[String]) -> Result<Loaded, EngineError> {
        if token == "bad" {
            return Err(EngineError::usage("toy engine refuses the token `bad`"));
        }
        Ok(Loaded {
            problem: ToyEngine::toy_problem(),
            policy: BankPolicy::PerCoreBank,
            label: token.to_owned(),
        })
    }

    fn run(
        &self,
        method: &str,
        target: Target<'_>,
        args: &[String],
        _budget: Option<Duration>,
    ) -> Result<String, EngineError> {
        self.runs.fetch_add(1, Ordering::SeqCst);
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        if method == "fail" {
            return Err(EngineError::analysis("toy engine asked to fail"));
        }
        let subject = match target {
            Target::Token(token) => token.to_owned(),
            Target::Resident(loaded) => loaded.label.clone(),
            Target::None => "<none>".to_owned(),
        };
        let mut out = format!("{method} {subject}");
        for a in args {
            out.push(' ');
            out.push_str(a);
        }
        out.push('\n');
        Ok(out)
    }

    fn methods(&self) -> &'static [&'static str] {
        &["analyze", "simulate", "fail"]
    }
}

/// Zeroes wall-clock values so served and one-shot `optimize` outputs
/// (which embed elapsed seconds) can be compared structurally. Two
/// passes: `"seconds": <number>` / `"wall_seconds": <number>` JSON
/// fields (our own serializer, so the `"key": value` shape is stable),
/// then whitespace-delimited `<float>s` duration tokens from the human
/// summary lines (e.g. `1.23s` at the end of an optimize summary).
#[must_use]
pub fn normalize_timings(report: &str) -> String {
    let mut out = String::with_capacity(report.len());
    let mut rest = report;
    while let Some(pos) = find_timing_key(rest) {
        let (key_at, key_len) = pos;
        // Copy through the key and the colon, then skip the number.
        let value_at = key_at + key_len;
        out.push_str(&rest[..value_at]);
        let tail = &rest[value_at..];
        let num_len = tail
            .char_indices()
            .take_while(|(_, c)| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        out.push('0');
        rest = &tail[num_len..];
    }
    out.push_str(rest);
    zero_duration_tokens(&out)
}

/// Replaces every standalone `<digits[.digits]>s` word with `0.00s`.
fn zero_duration_tokens(report: &str) -> String {
    let mut out = String::with_capacity(report.len());
    let mut word = String::new();
    for c in report.chars() {
        if c.is_whitespace() {
            push_normalized_word(&mut out, &word);
            word.clear();
            out.push(c);
        } else {
            word.push(c);
        }
    }
    push_normalized_word(&mut out, &word);
    out
}

fn push_normalized_word(out: &mut String, word: &str) {
    let is_duration = word.strip_suffix('s').is_some_and(|num| {
        !num.is_empty()
            && num.chars().all(|c| c.is_ascii_digit() || c == '.')
            && num.chars().any(|c| c.is_ascii_digit())
    });
    if is_duration {
        out.push_str("0.00s");
    } else {
        out.push_str(word);
    }
}

/// Finds the earliest `"seconds":` / `"wall_seconds":` key, returning
/// (offset, length-through-colon-and-spaces).
fn find_timing_key(s: &str) -> Option<(usize, usize)> {
    ["\"seconds\":", "\"wall_seconds\":"]
        .iter()
        .filter_map(|key| {
            s.find(key).map(|at| {
                let mut len = key.len();
                len += s[at + len..].chars().take_while(|c| *c == ' ').count();
                (at, len)
            })
        })
        .min_by_key(|(at, _)| *at)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_timings_zeroes_wall_clock_fields() {
        let report = r#"{"seconds": 1.25, "best": 7, "wall_seconds": 0.003}"#;
        assert_eq!(
            normalize_timings(report),
            r#"{"seconds": 0, "best": 7, "wall_seconds": 0}"#
        );
        // Human summary lines embed elapsed time as a `<float>s` word.
        let summary = "w / rr: makespan 9 -> 8  cache hit rate 50.0%  1.73s\ndone";
        assert_eq!(
            normalize_timings(summary),
            "w / rr: makespan 9 -> 8  cache hit rate 50.0%  0.00s\ndone"
        );
        // Idempotent and inert on reports without timing fields.
        let clean = r#"{"makespan": 42}"#;
        assert_eq!(normalize_timings(clean), clean);
        assert_eq!(
            normalize_timings(&normalize_timings(report)),
            normalize_timings(report)
        );
    }

    #[test]
    fn toy_engine_is_deterministic() {
        let e = ToyEngine::instant();
        let loaded = e.load("demo", &[]).unwrap();
        assert_eq!(loaded.problem.len(), 2);
        let out = e
            .run(
                "analyze",
                Target::Resident(&loaded),
                &["--x".to_owned()],
                None,
            )
            .unwrap();
        assert_eq!(out, "analyze demo --x\n");
        assert_eq!(e.runs(), 1);
        assert!(e.load("bad", &[]).is_err());
        assert!(e.run("fail", Target::None, &[], None).is_err());
    }
}
