//! Concurrency behaviour: pipelined ids, parallel clients, the shared
//! memo cache, admission control at saturation, and deadline budgets.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use mia_serve::frame::{read_frame, write_frame, MAX_FRAME_LEN};
use mia_serve::protocol::{kind, Reply, Request};
use mia_serve::testkit::{ServeHandle, ToyEngine};
use mia_serve::ServeConfig;

#[test]
fn many_threads_times_many_requests_all_replies_match_their_ids() {
    const THREADS: usize = 8;
    const REQUESTS: usize = 25;
    let handle = ServeHandle::spawn_default(Arc::new(ToyEngine::instant()));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let handle = &handle;
            scope.spawn(move || {
                let mut client = handle.client();
                for r in 0..REQUESTS {
                    let tag = format!("--tag-{t}-{r}");
                    let body = client
                        .run("analyze", "w", std::slice::from_ref(&tag))
                        .expect("request served");
                    // Client::request verifies the echoed id; the output
                    // proves the right request's args came back.
                    assert_eq!(body.output, format!("analyze w {tag}\n"));
                }
            });
        }
    });

    let total = (THREADS * REQUESTS) as u64;
    // The metric registry cross-checks the counters: every executed
    // request put exactly one observation in its method's latency
    // histogram and one in the queue-wait histogram.
    let metrics = handle.client().metrics().expect("metrics");
    let observed: u64 = metrics
        .histograms
        .iter()
        .filter(|h| h.name.starts_with("serve.request."))
        .map(|h| h.hist.count)
        .sum();
    assert_eq!(observed, total, "one histogram observation per request");
    let wait = metrics
        .histogram("serve.queue_wait_ns")
        .expect("queue-wait histogram");
    assert_eq!(wait.count, total);
    assert!(wait.max >= wait.quantile(0.5));
    // Quiesced daemon: nothing queued, nobody executing.
    assert_eq!(metrics.gauge("serve.queue_depth"), Some(0));
    assert_eq!(metrics.gauge("serve.workers_busy"), Some(0));

    let stats = handle.shutdown();
    assert_eq!(
        stats.replies_ok,
        total + 1,
        "requests plus the metrics call"
    );
    assert_eq!(stats.replies_err, 0);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.workers_busy, 0);
}

#[test]
fn pipelined_requests_on_one_connection_come_back_by_id() {
    // A slow engine and several workers: replies may overtake each
    // other, and the echoed id is the only correlation.
    const PIPELINED: u64 = 12;
    let engine = Arc::new(ToyEngine::with_delay(Duration::from_millis(20)));
    let handle = ServeHandle::spawn(
        engine,
        ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        },
    );

    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    for id in 1..=PIPELINED {
        let request = Request::new(id, "analyze").workload(&format!("w{id}"));
        let payload = serde_json::to_string(&request).unwrap();
        write_frame(&mut stream, payload.as_bytes()).expect("send");
    }
    let mut seen = Vec::new();
    for _ in 0..PIPELINED {
        let bytes = read_frame(&mut stream, MAX_FRAME_LEN)
            .expect("read")
            .expect("reply");
        let reply: Reply =
            serde_json::from_str(&String::from_utf8(bytes).unwrap()).expect("parses");
        let body = reply.ok.expect("served");
        assert_eq!(body.output, format!("analyze w{}\n", reply.id));
        seen.push(reply.id);
    }
    seen.sort_unstable();
    assert_eq!(seen, (1..=PIPELINED).collect::<Vec<_>>());
}

#[test]
fn repeated_identical_analyze_hits_the_shared_memo_cache() {
    const THREADS: usize = 6;
    const REQUESTS: usize = 10;
    let engine = Arc::new(ToyEngine::instant());
    let handle = ServeHandle::spawn_default(Arc::clone(&engine) as Arc<dyn mia_serve::Engine>);

    // One resident problem every thread hammers with identical args.
    let resident = handle.client().load("shared", &[]).expect("load");

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let handle = &handle;
            scope.spawn(move || {
                let mut client = handle.client();
                for _ in 0..REQUESTS {
                    let body = client
                        .run_resident("analyze", resident, &[])
                        .expect("served");
                    assert_eq!(body.output, "analyze shared\n");
                }
            });
        }
    });

    let total = (THREADS * REQUESTS) as u64;
    let stats = handle.stats();
    // Every request either hit the cache or computed-and-stored.
    assert_eq!(stats.cache_hits + stats.cache_misses, total);
    assert!(stats.cache_hits > 0, "repeats must hit: {stats:?}");
    assert_eq!(stats.cache_entries, 1, "one identity, one entry");
    assert_eq!(stats.resident, 1, "the one loaded problem is resident");
    assert_eq!(stats.queue_depth, 0, "quiesced queue");
    // The engine ran exactly once per miss (concurrent misses may race,
    // but every run is accounted as a miss).
    assert_eq!(engine.runs(), stats.cache_misses);
    // A second identical burst from a fresh client is pure hits.
    let before = stats.cache_hits;
    let mut client = handle.client();
    let body = client.run_resident("analyze", resident, &[]).expect("hit");
    assert!(body.cached, "reply flags the memo hit");
    assert_eq!(handle.stats().cache_hits, before + 1);
    // Different args miss: the key covers the full argument tail.
    let body = client
        .run_resident("analyze", resident, &["--other".to_owned()])
        .expect("served");
    assert!(!body.cached);
    handle.shutdown();
}

#[test]
fn saturation_returns_overloaded_not_a_hang() {
    // One worker stuck on a slow request + a queue of one: concurrent
    // submitters must get an explicit `overloaded` error immediately.
    const CLIENTS: usize = 8;
    let engine = Arc::new(ToyEngine::with_delay(Duration::from_millis(300)));
    let handle = ServeHandle::spawn(
        engine,
        ServeConfig {
            workers: 1,
            max_pending: 1,
            ..ServeConfig::default()
        },
    );

    let outcomes: Vec<Result<(), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let handle = &handle;
                scope.spawn(move || {
                    let mut client = handle.client();
                    client
                        .run("analyze", "w", &[])
                        .map(|_| ())
                        .map_err(|e| e.to_string())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });

    let served = outcomes.iter().filter(|o| o.is_ok()).count();
    let overloaded = outcomes
        .iter()
        .filter(|o| matches!(o, Err(m) if m.contains(kind::OVERLOADED)))
        .count();
    assert_eq!(served + overloaded, CLIENTS, "{outcomes:?}");
    assert!(served >= 1, "someone must be served: {outcomes:?}");
    assert!(overloaded >= 1, "queue of 1 must shed load: {outcomes:?}");
    let stats = handle.shutdown();
    assert_eq!(stats.overloaded, overloaded as u64);
}

#[test]
fn queue_wait_is_charged_against_the_request_budget() {
    // Budget 80 ms, engine takes 250 ms per request, one worker: the
    // first request runs (its budget was intact when dequeued); the
    // request queued behind it expires before it starts.
    let engine = Arc::new(ToyEngine::with_delay(Duration::from_millis(250)));
    let handle = ServeHandle::spawn(
        engine,
        ServeConfig {
            workers: 1,
            request_budget: Some(Duration::from_millis(80)),
            ..ServeConfig::default()
        },
    );

    let outcomes: Vec<Result<(), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let handle = &handle;
                scope.spawn(move || {
                    let mut client = handle.client();
                    client
                        .run("analyze", "w", &[])
                        .map(|_| ())
                        .map_err(|e| e.to_string())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });

    let expired = outcomes
        .iter()
        .filter(|o| matches!(o, Err(m) if m.contains(kind::DEADLINE)))
        .count();
    assert!(expired >= 1, "queued requests must expire: {outcomes:?}");
    assert!(
        outcomes.iter().any(|o| o.is_ok()),
        "the first request still completes: {outcomes:?}"
    );
    let stats = handle.shutdown();
    assert_eq!(stats.deadline_expired, expired as u64);
}
