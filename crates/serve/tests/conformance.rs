//! Served-vs-CLI conformance: a reply from the daemon must be
//! byte-identical to the output of the one-shot `mia` command for the
//! same workload and flags (modulo wall-clock fields for `optimize`).
//!
//! Drives the real [`mia_cli::CliEngine`] through the daemon for three
//! workload shapes: an SDF3 file (`examples/fixture.sdf3`), the builtin
//! `rosace` preset, and a generated NL16 workload file.

use std::path::PathBuf;
use std::sync::Arc;

use mia_arbiter::RoundRobin;
use mia_cli::CliEngine;
use mia_core::testkit::EngineKind;
use mia_core::AnalysisOptions;
use mia_serve::testkit::{normalize_timings, ServeHandle};
use mia_serve::Engine as _;

/// Integration tests run with the crate root as cwd.
const FIXTURE: &str = "../../examples/fixture.sdf3";

fn owned(args: &[&str]) -> Vec<String> {
    args.iter().map(|a| (*a).to_owned()).collect()
}

/// A generated NL16 workload file, removed on drop.
struct Nl16File {
    path: PathBuf,
}

impl Nl16File {
    fn generate() -> Nl16File {
        let path = std::env::temp_dir().join(format!(
            "mia_serve_conformance_nl16_{}.json",
            std::process::id()
        ));
        let path_str = path.to_str().expect("utf8 temp path").to_owned();
        mia_cli::run(&owned(&[
            "generate", "--family", "NL16", "-n", "48", "--seed", "7", "-o", &path_str,
        ]))
        .expect("generate NL16 workload");
        Nl16File { path }
    }

    fn token(&self) -> &str {
        self.path.to_str().expect("utf8 temp path")
    }
}

impl Drop for Nl16File {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn serve_cli() -> ServeHandle {
    ServeHandle::spawn_default(Arc::new(CliEngine))
}

#[test]
fn served_token_analyze_is_byte_identical_to_one_shot_cli() {
    let nl16 = Nl16File::generate();
    let handle = serve_cli();
    let mut client = handle.client();

    for token in [FIXTURE, "rosace", nl16.token()] {
        let one_shot = mia_cli::run(&owned(&["analyze", token])).expect("one-shot analyze");
        let served = client.run("analyze", token, &[]).expect("served analyze");
        assert_eq!(served.output, one_shot, "analyze {token}");
        assert!(!served.cached, "token targets never hit the memo cache");
    }

    // Flags ride along unchanged (same argument tail, same bytes).
    let args = owned(&["--arbiter", "rr", "--gantt"]);
    let one_shot = mia_cli::run(&owned(&["analyze", FIXTURE, "--arbiter", "rr", "--gantt"]))
        .expect("one-shot analyze with flags");
    let served = client
        .run("analyze", FIXTURE, &args)
        .expect("served analyze with flags");
    assert_eq!(served.output, one_shot);
}

#[test]
fn served_token_simulate_is_byte_identical_to_one_shot_cli() {
    let nl16 = Nl16File::generate();
    let handle = serve_cli();
    let mut client = handle.client();

    for token in [FIXTURE, "rosace", nl16.token()] {
        let one_shot = mia_cli::run(&owned(&["simulate", token])).expect("one-shot simulate");
        let served = client.run("simulate", token, &[]).expect("served simulate");
        assert_eq!(served.output, one_shot, "simulate {token}");
    }
}

#[test]
fn resident_analyze_matches_one_shot_cli() {
    // `load` goes through the optimize loader, whose SDF seed-mapping
    // strategy defaults to `cyclic`; one-shot `analyze` defaults to
    // `etf`. Loading with an explicit `--seed-strategy etf` pins the
    // resident problem to the one the one-shot command builds.
    let nl16 = Nl16File::generate();
    let handle = serve_cli();
    let mut client = handle.client();

    for token in [FIXTURE, "rosace", nl16.token()] {
        let handle_id = client
            .load(token, &owned(&["--seed-strategy", "etf"]))
            .expect("load resident");
        let one_shot = mia_cli::run(&owned(&["analyze", token])).expect("one-shot analyze");
        let served = client
            .run_resident("analyze", handle_id, &[])
            .expect("resident analyze");
        assert_eq!(served.output, one_shot, "resident analyze {token}");

        // The same identity again is a memo hit with identical bytes.
        let again = client
            .run_resident("analyze", handle_id, &[])
            .expect("repeat resident analyze");
        assert!(again.cached, "identical resident request hits the cache");
        assert_eq!(again.output, one_shot);
    }

    let stats = handle.shutdown();
    assert_eq!(stats.loads, 3);
    assert_eq!(stats.resident, 3);
    assert!(stats.cache_hits >= 3);
}

#[test]
fn served_optimize_matches_one_shot_cli_modulo_timing() {
    // Fixed seed + one thread makes the search deterministic; only the
    // embedded wall-clock fields differ between the two runs.
    let nl16 = Nl16File::generate();
    let handle = serve_cli();
    let mut client = handle.client();

    let flags = ["--seed", "7", "--budget-evals", "40", "--threads", "1"];
    let mut one_shot_args = vec!["optimize".to_owned(), nl16.token().to_owned()];
    one_shot_args.extend(owned(&flags));
    let one_shot = mia_cli::run(&one_shot_args).expect("one-shot optimize");

    let served = client
        .run("optimize", nl16.token(), &owned(&flags))
        .expect("served optimize");
    assert_eq!(
        normalize_timings(&served.output),
        normalize_timings(&one_shot),
        "token-target optimize"
    );

    // The resident path runs the same search on the held problem.
    let handle_id = client.load(nl16.token(), &[]).expect("load resident");
    let resident = client
        .run_resident("optimize", handle_id, &owned(&flags))
        .expect("resident optimize");
    assert_eq!(
        normalize_timings(&resident.output),
        normalize_timings(&one_shot),
        "resident optimize"
    );
    handle.shutdown();
}

#[test]
fn served_makespan_agrees_with_the_sequential_oracle() {
    // Independent check against the reference engine from
    // `mia_core::testkit`: the makespan the daemon reports is the one
    // the sequential oracle computes on the same problem.
    let nl16 = Nl16File::generate();
    let handle = serve_cli();
    let mut client = handle.client();

    for token in ["rosace", nl16.token()] {
        let loaded = CliEngine
            .load(token, &owned(&["--seed-strategy", "etf"]))
            .expect("load for oracle");
        let options = AnalysisOptions::new().task_deadlines(true);
        let reference = EngineKind::Sequential
            .run(&loaded.problem, &RoundRobin::new(), &options)
            .expect("oracle run");

        let served = client.run("analyze", token, &[]).expect("served analyze");
        let makespan_line = served
            .output
            .lines()
            .find(|l| l.starts_with("makespan:"))
            .expect("reply carries a makespan line");
        // `Cycles` renders as e.g. `1234cy`.
        let makespan: u64 = makespan_line
            .split_whitespace()
            .nth(1)
            .expect("makespan value")
            .trim_end_matches("cy")
            .parse()
            .expect("makespan is a number");
        assert_eq!(
            makespan,
            reference.schedule.makespan().0,
            "served makespan vs sequential oracle for {token}"
        );
    }
    handle.shutdown();
}
