//! Property tests for the framing codec: arbitrary byte prefixes must
//! decode to a clean value or a structured error — never a panic, never
//! an oversized allocation.

use std::io::Cursor;

use mia_serve::frame::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Feeding completely random bytes to the decoder is always safe:
    /// every outcome is one of the documented cases.
    #[test]
    fn random_byte_prefixes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut r = Cursor::new(bytes.clone());
        match read_frame(&mut r, MAX_FRAME_LEN) {
            // A clean EOF is only legal at a frame boundary.
            Ok(None) => prop_assert!(bytes.is_empty()),
            // A full decode means the prefix announced exactly the rest.
            Ok(Some(payload)) => {
                prop_assert!(bytes.len() >= 4);
                let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
                prop_assert_eq!(payload.len() as u32, len);
                prop_assert_eq!(&payload[..], &bytes[4..4 + payload.len()]);
            }
            // The prefix exceeded the ceiling: reported before any
            // payload read, with the advertised length echoed back.
            Err(FrameError::TooLarge { len, max }) => {
                prop_assert!(len > MAX_FRAME_LEN);
                prop_assert_eq!(max, MAX_FRAME_LEN);
            }
            // The stream ended inside the prefix or the payload.
            Err(FrameError::Truncated { .. }) => {
                if bytes.len() >= 4 {
                    let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
                    prop_assert!(len <= MAX_FRAME_LEN);
                    prop_assert!((bytes.len() - 4) < len as usize);
                }
            }
            Err(FrameError::Io(e)) => prop_assert!(false, "in-memory reader cannot fail: {e}"),
        }
    }

    /// Write-then-read restores every payload byte-for-byte, including
    /// multi-frame streams.
    #[test]
    fn round_trip_preserves_payloads(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..512),
            1..8,
        )
    ) {
        let mut buf = Vec::new();
        for p in &payloads {
            write_frame(&mut buf, p).unwrap();
        }
        let mut r = Cursor::new(buf);
        for p in &payloads {
            let got = read_frame(&mut r, MAX_FRAME_LEN).unwrap().unwrap();
            prop_assert_eq!(&got, p);
        }
        prop_assert!(read_frame(&mut r, MAX_FRAME_LEN).unwrap().is_none());
    }

    /// Chopping a valid stream anywhere inside a frame yields
    /// `Truncated`, and at a boundary yields clean decodes then EOF.
    #[test]
    fn truncation_anywhere_is_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let cut = ((buf.len() as f64) * cut_fraction) as usize;
        let mut r = Cursor::new(buf[..cut].to_vec());
        match read_frame(&mut r, MAX_FRAME_LEN) {
            Ok(None) => prop_assert_eq!(cut, 0),
            Ok(Some(got)) => {
                prop_assert_eq!(cut, buf.len());
                prop_assert_eq!(got, payload);
            }
            Err(FrameError::Truncated { .. }) => {
                prop_assert!(cut > 0 && cut < buf.len());
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }
}
