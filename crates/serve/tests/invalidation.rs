//! Mtime-based memo invalidation for file-backed workload tokens.
//!
//! A token that names a file on disk is served from the memo cache
//! under an mtime-stamped label: repeats are hits, but the moment the
//! file's modification time changes the stamp — and with it the cache
//! key — moves on, so the daemon can never replay an analysis of a
//! stale file. Tokens that are not files (presets, generator families)
//! stay uncached on the one-shot path.

use std::fs;
use std::sync::Arc;
use std::time::{Duration, UNIX_EPOCH};

use mia_serve::testkit::{ServeHandle, ToyEngine};

/// A scratch workload file whose mtime the test controls exactly.
struct StampedFile {
    path: std::path::PathBuf,
}

impl StampedFile {
    fn create(name: &str) -> StampedFile {
        let path = std::env::temp_dir().join(format!(
            "mia_serve_invalidation_{}_{name}.json",
            std::process::id()
        ));
        fs::write(&path, "{}").expect("write scratch workload");
        StampedFile { path }
    }

    fn token(&self) -> String {
        self.path.to_str().expect("utf8 temp path").to_owned()
    }

    /// Pins the file's mtime to an exact epoch offset — deterministic
    /// and immune to filesystem timestamp granularity.
    fn set_mtime(&self, seconds: u64) {
        let file = fs::File::options()
            .write(true)
            .open(&self.path)
            .expect("reopen scratch workload");
        file.set_modified(UNIX_EPOCH + Duration::from_secs(seconds))
            .expect("set mtime");
    }
}

impl Drop for StampedFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

#[test]
fn file_tokens_are_cached_until_the_file_changes() {
    let engine = Arc::new(ToyEngine::instant());
    let handle = ServeHandle::spawn_default(Arc::clone(&engine) as Arc<dyn mia_serve::Engine>);
    let file = StampedFile::create("cached");
    file.set_mtime(1_000);
    let token = file.token();
    let mut client = handle.client();

    // First request computes and stores.
    let body = client.run("analyze", &token, &[]).expect("served");
    assert!(!body.cached);
    assert_eq!(engine.runs(), 1);

    // An identical repeat is a pure memo hit — the engine never runs.
    let body = client.run("analyze", &token, &[]).expect("served");
    assert!(body.cached, "repeat of an unchanged file must hit");
    assert_eq!(engine.runs(), 1);
    assert_eq!(handle.stats().cache_hits, 1);

    // Touching the file moves the mtime stamp: the old entry is dead,
    // the request recomputes against the current file.
    file.set_mtime(2_000);
    let body = client.run("analyze", &token, &[]).expect("served");
    assert!(!body.cached, "a changed file must not be served stale");
    assert_eq!(engine.runs(), 2);

    // And the refreshed result is itself memoised again.
    let body = client.run("analyze", &token, &[]).expect("served");
    assert!(body.cached);
    assert_eq!(engine.runs(), 2);

    // The argument tail is part of the key.
    let body = client
        .run("analyze", &token, &["--other".to_owned()])
        .expect("served");
    assert!(!body.cached);
    assert_eq!(engine.runs(), 3);

    handle.shutdown();
}

#[test]
fn non_file_tokens_stay_on_the_uncached_one_shot_path() {
    let engine = Arc::new(ToyEngine::instant());
    let handle = ServeHandle::spawn_default(Arc::clone(&engine) as Arc<dyn mia_serve::Engine>);
    let mut client = handle.client();

    for expected_runs in 1..=3 {
        let body = client.run("analyze", "rosace", &[]).expect("served");
        assert!(!body.cached, "preset tokens are rebuilt per request");
        assert_eq!(engine.runs(), expected_runs);
    }
    assert_eq!(handle.stats().cache_entries, 0);

    handle.shutdown();
}
