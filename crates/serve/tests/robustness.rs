//! Protocol robustness: hostile or broken clients get structured
//! errors (or a clean drop) and never wedge a worker.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use mia_serve::frame::{read_frame, write_frame, MAX_FRAME_LEN};
use mia_serve::protocol::{kind, Reply, Request, PROTOCOL_VERSION};
use mia_serve::testkit::{ServeHandle, ToyEngine};
use mia_serve::{ClientError, ServeConfig};

fn raw_connect(handle: &ServeHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("read timeout");
    stream
}

fn send_raw(stream: &mut TcpStream, payload: &[u8]) -> Reply {
    write_frame(stream, payload).expect("send frame");
    let reply = read_frame(stream, MAX_FRAME_LEN)
        .expect("read reply")
        .expect("server replied");
    serde_json::from_str(&String::from_utf8(reply).expect("utf8 reply")).expect("reply parses")
}

fn error_kind(reply: &Reply) -> &str {
    &reply.error.as_ref().expect("error reply").kind
}

#[test]
fn malformed_json_gets_a_parse_error_and_the_connection_survives() {
    let handle = ServeHandle::spawn_default(Arc::new(ToyEngine::instant()));
    let mut stream = raw_connect(&handle);

    // Truncated JSON document (framing intact).
    let reply = send_raw(&mut stream, b"{\"id\": 3, \"meth");
    assert_eq!(error_kind(&reply), kind::PARSE);
    assert_eq!(reply.id, 0, "no id is recoverable from broken JSON");
    assert_eq!(reply.version, PROTOCOL_VERSION);

    // Valid JSON, wrong shape.
    let reply = send_raw(&mut stream, b"[1, 2, 3]");
    assert_eq!(error_kind(&reply), kind::PARSE);

    // Not UTF-8 at all.
    let reply = send_raw(&mut stream, &[0xFF, 0xFE, 0x00, 0x80]);
    assert_eq!(error_kind(&reply), kind::PARSE);

    // The same connection still serves real requests afterwards.
    let request = serde_json::to_string(&Request::new(9, "ping")).unwrap();
    let reply = send_raw(&mut stream, request.as_bytes());
    assert_eq!(reply.id, 9);
    assert_eq!(reply.ok.expect("pong").output, "pong");
}

#[test]
fn oversized_length_prefix_is_answered_then_dropped() {
    let handle = ServeHandle::spawn_default(Arc::new(ToyEngine::instant()));
    let mut stream = raw_connect(&handle);

    // A hand-written prefix claiming 1 GiB; no payload follows.
    let giant = (1u32 << 30).to_be_bytes();
    stream.write_all(&giant).expect("send prefix");
    stream.flush().expect("flush");
    let reply = read_frame(&mut stream, MAX_FRAME_LEN)
        .expect("read reply")
        .expect("server answers before dropping");
    let reply: Reply =
        serde_json::from_str(&String::from_utf8(reply).expect("utf8")).expect("parses");
    assert_eq!(error_kind(&reply), kind::PARSE);
    assert!(
        reply.error.unwrap().message.contains("exceeds"),
        "message names the limit"
    );
    // The stream cannot be resynchronized, so the server closes it.
    let eof = read_frame(&mut stream, MAX_FRAME_LEN).expect("clean close");
    assert!(eof.is_none(), "connection dropped after an oversized frame");
}

#[test]
fn unknown_method_and_unknown_handle_are_structured_errors() {
    let handle = ServeHandle::spawn_default(Arc::new(ToyEngine::instant()));
    let mut client = handle.client();

    let err = client
        .request(Request::new(0, "frobnicate"))
        .expect_err("unknown method");
    match err {
        ClientError::Server { kind: k, message } => {
            assert_eq!(k, kind::UNKNOWN_METHOD);
            assert!(
                message.contains("analyze"),
                "lists served methods: {message}"
            );
        }
        other => panic!("expected server error, got {other}"),
    }

    let err = client
        .run_resident("analyze", 777, &[])
        .expect_err("unknown handle");
    match err {
        ClientError::Server { kind: k, .. } => assert_eq!(k, kind::UNKNOWN_HANDLE),
        other => panic!("expected server error, got {other}"),
    }
}

#[test]
fn engine_failures_map_to_their_error_kinds() {
    let handle = ServeHandle::spawn_default(Arc::new(ToyEngine::instant()));
    let mut client = handle.client();

    // A load the engine refuses.
    let err = client.load("bad", &[]).expect_err("refused load");
    match err {
        ClientError::Server { kind: k, .. } => assert_eq!(k, kind::USAGE),
        other => panic!("expected server error, got {other}"),
    }

    // A method that fails mid-run.
    let err = client
        .run("fail", "anything", &[])
        .expect_err("failing method");
    match err {
        ClientError::Server { kind: k, .. } => assert_eq!(k, kind::ANALYSIS),
        other => panic!("expected server error, got {other}"),
    }

    // A load-class method without a workload.
    let err = client
        .request(Request::new(0, "load"))
        .expect_err("load without workload");
    match err {
        ClientError::Server { kind: k, .. } => assert_eq!(k, kind::USAGE),
        other => panic!("expected server error, got {other}"),
    }
}

#[test]
fn version_mismatch_is_rejected_before_any_work() {
    let handle = ServeHandle::spawn_default(Arc::new(ToyEngine::instant()));
    let mut stream = raw_connect(&handle);

    // A request from "the future" (and one with no version at all,
    // which defaults to 0): both rejected with the version kind.
    for bad_version in [PROTOCOL_VERSION + 1, 0] {
        let mut request = Request::new(4, "ping");
        request.version = bad_version;
        let payload = serde_json::to_string(&request).unwrap();
        let reply = send_raw(&mut stream, payload.as_bytes());
        assert_eq!(error_kind(&reply), kind::VERSION);
        assert_eq!(reply.id, 4, "the id is still echoed");
        assert_eq!(
            reply.version, PROTOCOL_VERSION,
            "replies pin the server version"
        );
    }
    // Version-less JSON (missing field) behaves like version 0.
    let reply = send_raw(&mut stream, br#"{"id": 5, "method": "ping"}"#);
    assert_eq!(error_kind(&reply), kind::VERSION);

    // The stats counters saw no admitted work.
    assert_eq!(handle.stats().replies_ok, 0);
}

#[test]
fn mid_request_disconnect_does_not_wedge_the_worker_pool() {
    // One worker, a slow engine: the disconnecting client's request
    // holds the only worker, then vanishes. The worker must swallow the
    // failed reply write and serve the next client normally.
    let engine = Arc::new(ToyEngine::with_delay(Duration::from_millis(150)));
    let handle = ServeHandle::spawn(
        engine,
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );

    {
        let mut stream = raw_connect(&handle);
        let request = serde_json::to_string(&Request::new(1, "analyze").workload("w")).unwrap();
        write_frame(&mut stream, request.as_bytes()).expect("send");
        // Drop the connection while the request is in flight.
    }

    let mut client = handle.client();
    let body = client.run("analyze", "other", &[]).expect("pool alive");
    assert_eq!(body.output, "analyze other\n");
    let stats = handle.shutdown();
    assert!(stats.requests >= 2);
}

#[test]
fn shutdown_via_client_stops_the_daemon_and_reports_final_stats() {
    let handle = ServeHandle::spawn_default(Arc::new(ToyEngine::instant()));
    let mut client = handle.client();
    assert_eq!(client.ping().expect("ping"), "pong");
    let ack = client.shutdown().expect("shutdown acknowledged");
    assert!(ack.contains("shutting down"), "{ack}");
    // The daemon refuses new connections once stopped; shutting the
    // handle down joins every thread without hanging.
    let stats = handle.shutdown();
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.replies_ok, 2);
}
