//! Fault injection: perturb a validated [`Problem`] and check whether an
//! analysed schedule survives.
//!
//! A static time-triggered schedule is sound *for the inputs it was
//! computed from*. This module builds the mutated problems that violate
//! those inputs — WCET overruns, extra memory demand — so tests can verify
//! two things:
//!
//! 1. the toolchain **detects** the violation
//!    ([`SimResult::first_violation`](crate::SimResult::first_violation)
//!    reports the first task finishing past its analysed window), and
//! 2. harmless perturbations (slack-covered overruns) stay silent.
//!
//! # Example
//!
//! ```
//! use mia_model::{BankDemand, BankId, BankPolicy, Cycles, Mapping, Platform, Problem, Task,
//!                 TaskGraph, TaskId};
//! use mia_sim::{apply_faults, simulate, AccessPattern, Fault, FaultPlan, SimConfig};
//! # use mia_model::{arbiter::InterfererDemand, Arbiter, CoreId};
//! # struct Rr;
//! # impl Arbiter for Rr {
//! #     fn name(&self) -> &str { "rr" }
//! #     fn bank_interference(&self, _v: CoreId, d: u64, s: &[InterfererDemand], a: Cycles) -> Cycles {
//! #         a * s.iter().map(|i| d.min(i.accesses)).sum::<u64>()
//! #     }
//! # }
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = TaskGraph::new();
//! let a = g.add_task(Task::builder("a").wcet(Cycles(50))
//!     .private_demand(BankDemand::single(BankId(0), 10)));
//! let m = Mapping::from_assignment(&g, &[0])?;
//! let p = Problem::with_policy(g, m, Platform::new(1, 1), BankPolicy::SingleBank)?;
//! let schedule = mia_core::analyze(&p, &Rr)?;
//!
//! // Overrun task a by 30 cycles and replay the *original* schedule.
//! let faulty = apply_faults(&p, &FaultPlan::new().overrun(a, Cycles(30)))?;
//! let run = simulate(&faulty, &schedule, &SimConfig::new(AccessPattern::BurstStart))?;
//! assert_eq!(run.first_violation(&schedule), Some(a));
//! # Ok(())
//! # }
//! ```

use mia_model::{BankId, Cycles, ModelError, Problem, TaskId};

/// A single injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fault {
    /// The task executes `extra` cycles beyond its declared WCET.
    WcetOverrun { task: TaskId, extra: Cycles },
    /// The task issues `accesses` additional accesses to `bank` (its WCET
    /// grows by the uncontended service time so the demand still fits).
    ExtraDemand {
        task: TaskId,
        bank: BankId,
        accesses: u64,
    },
}

/// An ordered collection of faults to apply together.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a WCET overrun.
    pub fn overrun(mut self, task: TaskId, extra: Cycles) -> Self {
        self.faults.push(Fault::WcetOverrun { task, extra });
        self
    }

    /// Adds extra memory demand.
    pub fn extra_demand(mut self, task: TaskId, bank: BankId, accesses: u64) -> Self {
        self.faults.push(Fault::ExtraDemand {
            task,
            bank,
            accesses,
        });
        self
    }

    /// Adds an arbitrary fault.
    pub fn push(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The faults, in application order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True if the plan changes nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Builds the perturbed problem: same graph shape, mapping, platform and
/// derived demands, with the plan's faults applied on top.
///
/// The returned problem is re-validated, so analyses and the simulator can
/// consume it like any other; replaying a schedule computed for the
/// *original* problem is how tests probe violation detection.
///
/// # Errors
///
/// Propagates [`ModelError`] from re-validation (e.g. a fault naming a
/// bank the platform does not have).
///
/// # Panics
///
/// Panics if a fault names a task outside the graph (a test-harness bug,
/// not a recoverable condition).
pub fn apply_faults(problem: &Problem, plan: &FaultPlan) -> Result<Problem, ModelError> {
    let mut graph = problem.graph().clone();
    let mut demands = problem.demands().to_vec();
    let access_cycles = problem.platform().access_cycles();
    for fault in plan.faults() {
        match *fault {
            Fault::WcetOverrun { task, extra } => {
                let t = graph.task_mut(task);
                let wcet = t.wcet();
                t.set_wcet(wcet + extra);
            }
            Fault::ExtraDemand {
                task,
                bank,
                accesses,
            } => {
                demands[task.index()].add(bank, accesses);
                // Grow the WCET by the uncontended service time so the
                // "demand fits in WCET" invariant of the simulator holds.
                let t = graph.task_mut(task);
                let wcet = t.wcet();
                t.set_wcet(wcet + access_cycles * accesses);
            }
        }
    }
    Problem::with_demands(
        graph,
        problem.mapping().clone(),
        problem.platform().clone(),
        demands,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, AccessPattern, SimConfig};
    use mia_model::arbiter::{Arbiter, InterfererDemand};
    use mia_model::{BankDemand, BankPolicy, CoreId, Mapping, Platform, Task, TaskGraph};

    struct Rr;

    impl Arbiter for Rr {
        fn name(&self) -> &str {
            "rr-test"
        }

        fn bank_interference(
            &self,
            _victim: CoreId,
            demand: u64,
            interferers: &[InterfererDemand],
            access_cycles: Cycles,
        ) -> Cycles {
            access_cycles
                * interferers
                    .iter()
                    .map(|i| demand.min(i.accesses))
                    .sum::<u64>()
        }

        fn is_additive(&self) -> bool {
            true
        }
    }

    /// Chain a → b on two cores; b's release depends on a's finish.
    fn chained_problem() -> Problem {
        let mut g = TaskGraph::new();
        let a = g.add_task(
            Task::builder("a")
                .wcet(Cycles(50))
                .private_demand(BankDemand::single(BankId(0), 10)),
        );
        let b = g.add_task(
            Task::builder("b")
                .wcet(Cycles(50))
                .private_demand(BankDemand::single(BankId(0), 10)),
        );
        g.add_edge(a, b, 0).unwrap();
        let m = Mapping::from_assignment(&g, &[0, 1]).unwrap();
        Problem::with_policy(g, m, Platform::new(2, 2), BankPolicy::SingleBank).unwrap()
    }

    #[test]
    fn empty_plan_changes_nothing() {
        let p = chained_problem();
        let q = apply_faults(&p, &FaultPlan::new()).unwrap();
        let s = mia_core::analyze(&p, &Rr).unwrap();
        let s2 = mia_core::analyze(&q, &Rr).unwrap();
        assert_eq!(s, s2);
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn overrun_past_slack_is_detected() {
        let p = chained_problem();
        let schedule = mia_core::analyze(&p, &Rr).unwrap();
        let faulty = apply_faults(&p, &FaultPlan::new().overrun(TaskId(0), Cycles(100))).unwrap();
        let run = simulate(
            &faulty,
            &schedule,
            &SimConfig::new(AccessPattern::BurstStart),
        )
        .unwrap();
        assert_eq!(run.first_violation(&schedule), Some(TaskId(0)));
    }

    #[test]
    fn overrun_within_slack_stays_silent() {
        // An analysed window with interference padding that a lone run
        // does not consume: a 5-cycle overrun hides inside the 10-cycle
        // pad, a 20-cycle overrun does not.
        let mut g = TaskGraph::new();
        let a = g.add_task(
            Task::builder("a")
                .wcet(Cycles(50))
                .private_demand(BankDemand::single(BankId(0), 10)),
        );
        let m = Mapping::from_assignment(&g, &[0]).unwrap();
        let p = Problem::with_policy(g, m, Platform::new(1, 1), BankPolicy::SingleBank).unwrap();
        let padded = mia_model::Schedule::from_timings(vec![mia_model::TaskTiming {
            release: Cycles::ZERO,
            wcet: Cycles(50),
            interference: Cycles(10),
        }]);
        let cfg = SimConfig::new(AccessPattern::BurstStart);
        let small = apply_faults(&p, &FaultPlan::new().overrun(a, Cycles(5))).unwrap();
        let run = simulate(&small, &padded, &cfg).unwrap();
        assert_eq!(run.first_violation(&padded), None);
        let large = apply_faults(&p, &FaultPlan::new().overrun(a, Cycles(20))).unwrap();
        let run = simulate(&large, &padded, &cfg).unwrap();
        assert_eq!(run.first_violation(&padded), Some(a));
    }

    #[test]
    fn extra_demand_grows_wcet_and_is_detected_when_large() {
        let p = chained_problem();
        let schedule = mia_core::analyze(&p, &Rr).unwrap();
        let faulty = apply_faults(
            &p,
            &FaultPlan::new().extra_demand(TaskId(0), BankId(0), 200),
        )
        .unwrap();
        assert_eq!(faulty.graph().task(TaskId(0)).wcet(), Cycles(250));
        let run = simulate(
            &faulty,
            &schedule,
            &SimConfig::new(AccessPattern::BurstStart),
        )
        .unwrap();
        assert_eq!(run.first_violation(&schedule), Some(TaskId(0)));
    }

    #[test]
    fn plan_accessors() {
        let plan = FaultPlan::new()
            .overrun(TaskId(1), Cycles(5))
            .push(Fault::ExtraDemand {
                task: TaskId(0),
                bank: BankId(0),
                accesses: 3,
            });
        assert_eq!(plan.faults().len(), 2);
        assert!(!plan.is_empty());
    }
}
