//! A cycle-stepped many-core memory-contention simulator.
//!
//! The paper's analyses bound what the Kalray MPPA-256 hardware may do;
//! this crate stands in for that hardware (see `DESIGN.md` §5): it
//! *executes* a computed [`Schedule`] on a platform model with per-bank
//! round-robin arbitration at single-access granularity, and reports the
//! response time every task actually exhibited.
//!
//! The simulation is **time-triggered** exactly as §II.B prescribes: a
//! task starts at its analysed release date — never earlier, even when its
//! inputs are ready — so the execution windows the analysis reasoned about
//! are preserved.
//!
//! The central property (checked by `tests/soundness.rs` and the
//! workspace-level property tests) is:
//!
//! > for every task and every access pattern, the simulated response time
//! > never exceeds the analysed worst-case response time.
//!
//! This holds for analyses run with the flat [`RoundRobin`] arbiter and
//! any arbiter that dominates it (FIFO, TDM); the hierarchical
//! [`MppaTree`] bound models tree hardware, which the simulator mirrors
//! with [`BusPolicy::Tree`].
//!
//! [`RoundRobin`]: https://docs.rs/mia-arbiter
//! [`MppaTree`]: https://docs.rs/mia-arbiter
//!
//! # Example
//!
//! ```
//! use mia_model::{Cycles, Mapping, Platform, Problem, Task, TaskGraph};
//! use mia_model::arbiter::{Arbiter, InterfererDemand};
//! use mia_model::{BankDemand, BankId, CoreId};
//! use mia_sim::{simulate, AccessPattern, SimConfig};
//!
//! # struct Rr;
//! # impl Arbiter for Rr {
//! #     fn name(&self) -> &str { "rr" }
//! #     fn bank_interference(&self, _v: CoreId, d: u64, s: &[InterfererDemand], a: Cycles) -> Cycles {
//! #         a * s.iter().map(|i| d.min(i.accesses)).sum::<u64>()
//! #     }
//! # }
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = TaskGraph::new();
//! let a = g.add_task(Task::builder("a").wcet(Cycles(50))
//!     .private_demand(BankDemand::single(BankId(0), 10)));
//! let b = g.add_task(Task::builder("b").wcet(Cycles(50))
//!     .private_demand(BankDemand::single(BankId(0), 10)));
//! let m = Mapping::from_assignment(&g, &[0, 1])?;
//! let p = Problem::with_policy(g, m, Platform::new(2, 2),
//!     mia_model::BankPolicy::SingleBank)?;
//! let schedule = mia_core::analyze(&p, &Rr)?;
//!
//! let result = simulate(&p, &schedule, &SimConfig::new(AccessPattern::BurstStart))?;
//! for (id, _) in p.graph().iter() {
//!     assert!(result.finish(id) <= schedule.timing(id).finish());
//! }
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use mia_model::{BankId, CoreId, Cycles, Problem, Schedule, TaskId};

mod fault;
mod trace;

pub use fault::{apply_faults, Fault, FaultPlan};
pub use trace::{BankStats, NoopRecorder, Recorder, SimEvent, SimTrace};

/// When, within a task's execution, its memory accesses are issued.
///
/// The analysis is pattern-agnostic (it bounds the worst case); the
/// simulator lets tests exercise several concrete patterns to probe the
/// bound from below.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AccessPattern {
    /// All accesses are issued back-to-back at the start of the task —
    /// the most contention-prone pattern (every overlapping task competes
    /// immediately).
    BurstStart,
    /// All accesses are issued at the end of the task.
    BurstEnd,
    /// Accesses are spread evenly across the execution.
    Uniform,
    /// Accesses are placed at uniformly random offsets (deterministic for
    /// a given [`SimConfig::seed`]).
    Random,
}

/// Bank arbitration implemented by the simulated bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum BusPolicy {
    /// One flat round-robin pointer per bank (the model behind
    /// `mia-arbiter`'s `RoundRobin`).
    #[default]
    FlatRoundRobin,
    /// Two-level round robin over groups of the given size (the MPPA-256
    /// pair hierarchy behind `mia-arbiter`'s `MppaTree`).
    Tree {
        /// Cores per first-level group (2 on the MPPA-256).
        group: usize,
    },
}

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Where accesses land inside each task's execution.
    pub pattern: AccessPattern,
    /// Bus arbitration of the simulated hardware.
    pub bus: BusPolicy,
    /// PRNG seed for [`AccessPattern::Random`].
    pub seed: u64,
}

impl SimConfig {
    /// Configuration with the given pattern, flat round-robin bus, seed 0.
    pub fn new(pattern: AccessPattern) -> Self {
        SimConfig {
            pattern,
            bus: BusPolicy::FlatRoundRobin,
            seed: 0,
        }
    }

    /// Sets the bus policy.
    pub fn bus(mut self, bus: BusPolicy) -> Self {
        self.bus = bus;
        self
    }

    /// Sets the PRNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::new(AccessPattern::BurstStart)
    }
}

/// Simulation failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A task's memory demand cannot fit inside its WCET: the model
    /// assumes the isolation WCET includes the task's own (uncontended)
    /// access time, so `demand · access_cycles ≤ wcet` must hold.
    DemandExceedsWcet {
        /// The offending task.
        task: TaskId,
        /// Its total demand in cycles.
        demand_cycles: Cycles,
        /// Its WCET in isolation.
        wcet: Cycles,
    },
    /// The schedule does not cover the problem's task set.
    WrongScheduleLength { expected: usize, found: usize },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::DemandExceedsWcet {
                task,
                demand_cycles,
                wcet,
            } => write!(
                f,
                "task {task}: demand of {demand_cycles} does not fit in wcet {wcet}"
            ),
            SimError::WrongScheduleLength { expected, found } => {
                write!(f, "schedule covers {found} tasks, problem has {expected}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Per-task and global outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    start: Vec<Cycles>,
    finish: Vec<Cycles>,
    stall: Vec<Cycles>,
}

impl SimResult {
    /// The instant the task started (its analysed release date).
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn start(&self, task: TaskId) -> Cycles {
        self.start[task.index()]
    }

    /// The instant the task completed in this run.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn finish(&self, task: TaskId) -> Cycles {
        self.finish[task.index()]
    }

    /// Cycles the task spent stalled on bank contention (its *observed*
    /// interference).
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn stall(&self, task: TaskId) -> Cycles {
        self.stall[task.index()]
    }

    /// The observed response time (`finish - start`).
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn response(&self, task: TaskId) -> Cycles {
        self.finish(task) - self.start(task)
    }

    /// Latest finish over all tasks.
    pub fn makespan(&self) -> Cycles {
        self.finish.iter().copied().max().unwrap_or(Cycles::ZERO)
    }

    /// Total stall cycles over all tasks.
    pub fn total_stall(&self) -> Cycles {
        self.stall.iter().sum()
    }

    /// Checks the soundness property against an analysed schedule: every
    /// simulated finish is within the analysed worst case. Returns the
    /// first violating task, if any.
    pub fn first_violation(&self, schedule: &Schedule) -> Option<TaskId> {
        (0..self.finish.len())
            .map(TaskId::from_index)
            .find(|&t| self.finish(t) > schedule.timing(t).finish())
    }
}

/// One task's remaining execution, as a sequence of operations.
struct ExecState {
    task: TaskId,
    /// Compute cycles before the next access (or the tail compute).
    ops: VecDeque<Op>,
    stall: Cycles,
}

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Run for the given number of cycles without touching the bus.
    Compute(u64),
    /// Issue one access to the bank; stalls until granted.
    Access(BankId),
}

/// Builds the op sequence of a task under the configured pattern.
fn build_ops(
    wcet: Cycles,
    demand: impl Iterator<Item = (BankId, u64)>,
    pattern: AccessPattern,
    access_cycles: Cycles,
    rng: &mut StdRng,
) -> Result<VecDeque<Op>, (Cycles, Cycles)> {
    // Flatten the demand into a list of single accesses, round-robin over
    // banks so multi-bank tasks interleave their targets.
    let per_bank: Vec<(BankId, u64)> = demand.collect();
    let total: u64 = per_bank.iter().map(|&(_, n)| n).sum();
    let demand_cycles = access_cycles * total;
    if demand_cycles > wcet {
        return Err((demand_cycles, wcet));
    }
    let mut accesses: Vec<BankId> = Vec::with_capacity(total as usize);
    {
        let mut remaining: Vec<(BankId, u64)> = per_bank;
        while accesses.len() < total as usize {
            for entry in remaining.iter_mut() {
                if entry.1 > 0 {
                    entry.1 -= 1;
                    accesses.push(entry.0);
                }
            }
        }
    }
    let compute_budget = (wcet - demand_cycles).as_u64();
    let mut ops = VecDeque::with_capacity(accesses.len() + 2);
    match pattern {
        AccessPattern::BurstStart => {
            ops.extend(accesses.iter().map(|&b| Op::Access(b)));
            if compute_budget > 0 {
                ops.push_back(Op::Compute(compute_budget));
            }
        }
        AccessPattern::BurstEnd => {
            if compute_budget > 0 {
                ops.push_back(Op::Compute(compute_budget));
            }
            ops.extend(accesses.iter().map(|&b| Op::Access(b)));
        }
        AccessPattern::Uniform => {
            let n = accesses.len() as u64;
            match compute_budget.checked_div(n) {
                // No accesses: the whole budget is one compute segment.
                None => {
                    if compute_budget > 0 {
                        ops.push_back(Op::Compute(compute_budget));
                    }
                }
                Some(chunk) => {
                    let mut leftover = compute_budget - chunk * n;
                    for &b in &accesses {
                        let mut c = chunk;
                        if leftover > 0 {
                            c += 1;
                            leftover -= 1;
                        }
                        if c > 0 {
                            ops.push_back(Op::Compute(c));
                        }
                        ops.push_back(Op::Access(b));
                    }
                }
            }
        }
        AccessPattern::Random => {
            let n = accesses.len();
            if n == 0 {
                if compute_budget > 0 {
                    ops.push_back(Op::Compute(compute_budget));
                }
            } else {
                // Draw gap sizes before each access plus a tail gap.
                let mut gaps = vec![0u64; n + 1];
                for _ in 0..compute_budget {
                    gaps[rng.random_range(0..n + 1)] += 1;
                }
                for (i, &b) in accesses.iter().enumerate() {
                    if gaps[i] > 0 {
                        ops.push_back(Op::Compute(gaps[i]));
                    }
                    ops.push_back(Op::Access(b));
                }
                if gaps[n] > 0 {
                    ops.push_back(Op::Compute(gaps[n]));
                }
            }
        }
    }
    Ok(ops)
}

/// Grant arbitration state of the simulated bus.
struct Bus {
    policy: BusPolicy,
    /// Flat mode: next core index to favour, per bank.
    rr_next: Vec<usize>,
    /// Tree mode: per bank, (next group, next member within each group).
    tree_next: Vec<(usize, Vec<usize>)>,
    groups: usize,
    group_size: usize,
}

impl Bus {
    fn new(policy: BusPolicy, banks: usize, cores: usize) -> Self {
        let group_size = match policy {
            BusPolicy::FlatRoundRobin => 1,
            BusPolicy::Tree { group } => group.max(1),
        };
        let groups = cores.div_ceil(group_size);
        Bus {
            policy,
            rr_next: vec![0; banks],
            tree_next: vec![(0, vec![0; groups]); banks],
            groups,
            group_size,
        }
    }

    /// Picks the granted core among `requesters` (bool per core) for
    /// `bank`, advancing the rotation state.
    fn grant(&mut self, bank: BankId, requesters: &[bool]) -> Option<usize> {
        let cores = requesters.len();
        if cores == 0 {
            return None;
        }
        match self.policy {
            BusPolicy::FlatRoundRobin => {
                let start = self.rr_next[bank.index()];
                for off in 0..cores {
                    let c = (start + off) % cores;
                    if requesters[c] {
                        self.rr_next[bank.index()] = (c + 1) % cores;
                        return Some(c);
                    }
                }
                None
            }
            BusPolicy::Tree { .. } => {
                let (ref mut next_group, ref mut next_member) = self.tree_next[bank.index()];
                // Find the first group (in rotation order) with a
                // requester, then rotate inside that group.
                for goff in 0..self.groups {
                    let g = (*next_group + goff) % self.groups;
                    let base = g * self.group_size;
                    let size = self.group_size.min(cores.saturating_sub(base));
                    if size == 0 {
                        continue;
                    }
                    let start = next_member[g];
                    for moff in 0..size {
                        let m = (start + moff) % size;
                        let c = base + m;
                        if requesters[c] {
                            next_member[g] = (m + 1) % size;
                            *next_group = (g + 1) % self.groups;
                            return Some(c);
                        }
                    }
                }
                None
            }
        }
    }
}

/// Executes `schedule` for `problem` under `config`.
///
/// # Errors
///
/// * [`SimError::WrongScheduleLength`] if the schedule does not cover the
///   task set,
/// * [`SimError::DemandExceedsWcet`] if a task's uncontended access time
///   exceeds its WCET (the model requires the isolation WCET to contain
///   the task's own accesses).
pub fn simulate(
    problem: &Problem,
    schedule: &Schedule,
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    run_simulation(problem, schedule, config, &mut NoopRecorder)
}

/// Executes `schedule` like [`simulate`] while recording a full
/// [`SimTrace`]: every start/finish/grant/stall event plus per-bank
/// aggregates.
///
/// # Errors
///
/// Same as [`simulate`].
///
/// # Example
///
/// ```
/// # use mia_model::{BankDemand, BankId, BankPolicy, Cycles, Mapping, Platform, Problem, Task,
/// #                 TaskGraph, Schedule, TaskTiming};
/// # use mia_sim::{simulate_traced, AccessPattern, SimConfig};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mut g = TaskGraph::new();
/// # let _ = g.add_task(Task::builder("a").wcet(Cycles(10))
/// #     .private_demand(BankDemand::single(BankId(0), 4)));
/// # let m = Mapping::from_assignment(&g, &[0])?;
/// # let p = Problem::with_policy(g, m, Platform::new(1, 1), BankPolicy::SingleBank)?;
/// # let s = Schedule::from_timings(vec![TaskTiming {
/// #     release: Cycles::ZERO, wcet: Cycles(10), interference: Cycles::ZERO }]);
/// let (result, trace) = simulate_traced(&p, &s, &SimConfig::new(AccessPattern::BurstStart))?;
/// assert_eq!(trace.bank_stats().grants(BankId(0)), 4);
/// assert_eq!(result.total_stall(), Cycles::ZERO);
/// # Ok(())
/// # }
/// ```
pub fn simulate_traced(
    problem: &Problem,
    schedule: &Schedule,
    config: &SimConfig,
) -> Result<(SimResult, SimTrace), SimError> {
    let mut trace = SimTrace::new(problem.platform().banks(), problem.platform().cores());
    let result = run_simulation(problem, schedule, config, &mut trace)?;
    Ok((result, trace))
}

/// Executes `schedule` with a caller-supplied [`Recorder`].
///
/// # Errors
///
/// Same as [`simulate`].
pub fn simulate_with<R>(
    problem: &Problem,
    schedule: &Schedule,
    config: &SimConfig,
    recorder: &mut R,
) -> Result<SimResult, SimError>
where
    R: Recorder + ?Sized,
{
    run_simulation(problem, schedule, config, recorder)
}

fn run_simulation<R>(
    problem: &Problem,
    schedule: &Schedule,
    config: &SimConfig,
    recorder: &mut R,
) -> Result<SimResult, SimError>
where
    R: Recorder + ?Sized,
{
    let graph = problem.graph();
    let mapping = problem.mapping();
    let n = graph.len();
    if schedule.len() != n {
        return Err(SimError::WrongScheduleLength {
            expected: n,
            found: schedule.len(),
        });
    }
    let cores = mapping.cores();
    let banks = problem.platform().banks();
    let access_cycles = problem.platform().access_cycles();
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut start = vec![Cycles::ZERO; n];
    let mut finish = vec![Cycles::ZERO; n];
    let mut stall = vec![Cycles::ZERO; n];

    // Per-core cursor into its execution order.
    let mut next_task: Vec<usize> = vec![0; cores];
    // Per-core current execution, if a task is running.
    let mut running: Vec<Option<ExecState>> = (0..cores).map(|_| None).collect();
    // Remaining cycles the bank is busy serving a granted access, and for
    // which core.
    let mut bank_busy: Vec<Option<(usize, u64)>> = vec![None; banks];
    let mut bus = Bus::new(config.bus, banks, cores);

    let mut done = 0usize;
    let mut t = Cycles::ZERO;
    // Upper bound on simulated time to guarantee termination even on a
    // violated schedule: the analysed makespan plus slack.
    let horizon = schedule.makespan() + Cycles(1) + graph.total_wcet();

    while done < n && t <= horizon {
        // Start tasks whose release date is reached (time-triggered).
        for core in 0..cores {
            if running[core].is_some() {
                continue;
            }
            let order = mapping.order(mia_model::CoreId::from_index(core));
            let Some(&task) = order.get(next_task[core]) else {
                continue;
            };
            let release = schedule.timing(task).release;
            if release != t {
                if release < t {
                    // The previous task on this core overran its analysed
                    // window past this release: start immediately (this
                    // only happens when validating an unsound schedule).
                    next_task[core] += 1;
                    start[task.index()] = t;
                    recorder.on_start(t, task, CoreId::from_index(core));
                    let ops = build_ops(
                        graph.task(task).wcet(),
                        problem.demand(task).iter(),
                        config.pattern,
                        access_cycles,
                        &mut rng,
                    )
                    .map_err(|(demand_cycles, wcet)| {
                        SimError::DemandExceedsWcet {
                            task,
                            demand_cycles,
                            wcet,
                        }
                    })?;
                    running[core] = Some(ExecState {
                        task,
                        ops,
                        stall: Cycles::ZERO,
                    });
                }
                continue;
            }
            next_task[core] += 1;
            start[task.index()] = t;
            recorder.on_start(t, task, CoreId::from_index(core));
            let ops = build_ops(
                graph.task(task).wcet(),
                problem.demand(task).iter(),
                config.pattern,
                access_cycles,
                &mut rng,
            )
            .map_err(|(demand_cycles, wcet)| SimError::DemandExceedsWcet {
                task,
                demand_cycles,
                wcet,
            })?;
            running[core] = Some(ExecState {
                task,
                ops,
                stall: Cycles::ZERO,
            });
        }

        // Collect bank requests.
        let mut requests: Vec<Vec<bool>> = vec![vec![false; cores]; banks];
        for core in 0..cores {
            if let Some(exec) = &running[core] {
                if let Some(Op::Access(bank)) = exec.ops.front() {
                    if bank_busy[bank.index()].is_none() {
                        requests[bank.index()][core] = true;
                    }
                }
            }
        }
        // Grant one requester per free bank.
        let mut granted: Vec<Option<usize>> = vec![None; cores];
        for bank in 0..banks {
            if bank_busy[bank].is_some() {
                continue;
            }
            if let Some(core) = bus.grant(BankId::from_index(bank), &requests[bank]) {
                bank_busy[bank] = Some((core, access_cycles.as_u64()));
                granted[core] = Some(bank);
                recorder.on_grant(t, BankId::from_index(bank), CoreId::from_index(core));
            }
        }

        // Advance every core by one cycle.
        for core in 0..cores {
            let Some(exec) = running[core].as_mut() else {
                continue;
            };
            match exec.ops.front_mut() {
                None => {}
                Some(Op::Compute(c)) => {
                    *c -= 1;
                    if *c == 0 {
                        exec.ops.pop_front();
                    }
                }
                Some(Op::Access(bank)) if granted[core].is_none() => {
                    // Waiting for the bank: stalled unless our access is
                    // the one currently in service.
                    let bank = *bank;
                    let in_service = bank_busy.iter().any(|b| {
                        b.map(|(c, remaining)| c == core && remaining > 0)
                            .unwrap_or(false)
                    });
                    if !in_service {
                        exec.stall += Cycles(1);
                        recorder.on_stall(t, bank, CoreId::from_index(core));
                    }
                }
                Some(Op::Access(_)) => {}
            }
        }
        // Progress bank service; completing an access retires the op.
        #[allow(clippy::needless_range_loop)]
        for bank in 0..banks {
            if let Some((core, remaining)) = bank_busy[bank].as_mut() {
                *remaining -= 1;
                if *remaining == 0 {
                    let core = *core;
                    bank_busy[bank] = None;
                    if let Some(exec) = running[core].as_mut() {
                        debug_assert!(matches!(exec.ops.front(), Some(Op::Access(_))));
                        exec.ops.pop_front();
                    }
                }
            }
        }

        t += Cycles(1);

        // Retire finished tasks.
        #[allow(clippy::needless_range_loop)]
        for core in 0..cores {
            let finished = running[core]
                .as_ref()
                .map(|e| e.ops.is_empty())
                .unwrap_or(false);
            if finished {
                let exec = running[core].take().expect("checked above");
                finish[exec.task.index()] = t;
                stall[exec.task.index()] = exec.stall;
                recorder.on_finish(t, exec.task, CoreId::from_index(core));
                done += 1;
            }
        }
    }

    Ok(SimResult {
        start,
        finish,
        stall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mia_model::{
        BankDemand, BankPolicy, Mapping, Platform, Schedule, Task, TaskGraph, TaskTiming,
    };

    /// Two tasks, distinct cores, both hammering bank 0.
    fn contention_problem(accesses: u64) -> Problem {
        let mut g = TaskGraph::new();
        let _ = g.add_task(
            Task::builder("a")
                .wcet(Cycles(100))
                .private_demand(BankDemand::single(BankId(0), accesses)),
        );
        let _ = g.add_task(
            Task::builder("b")
                .wcet(Cycles(100))
                .private_demand(BankDemand::single(BankId(0), accesses)),
        );
        let m = Mapping::from_assignment(&g, &[0, 1]).unwrap();
        Problem::with_policy(g, m, Platform::new(2, 2), BankPolicy::SingleBank).unwrap()
    }

    fn schedule_both_at_zero(p: &Problem, response: u64) -> Schedule {
        Schedule::from_timings(
            p.graph()
                .iter()
                .map(|(_, t)| TaskTiming {
                    release: Cycles::ZERO,
                    wcet: t.wcet(),
                    interference: Cycles(response) - t.wcet(),
                })
                .collect(),
        )
    }

    #[test]
    fn isolated_task_takes_exactly_its_wcet() {
        let mut g = TaskGraph::new();
        let a = g.add_task(
            Task::builder("a")
                .wcet(Cycles(40))
                .private_demand(BankDemand::single(BankId(0), 8)),
        );
        let m = Mapping::from_assignment(&g, &[0]).unwrap();
        let p = Problem::with_policy(g, m, Platform::new(1, 1), BankPolicy::SingleBank).unwrap();
        let s = Schedule::from_timings(vec![TaskTiming {
            release: Cycles(3),
            wcet: Cycles(40),
            interference: Cycles::ZERO,
        }]);
        for pattern in [
            AccessPattern::BurstStart,
            AccessPattern::BurstEnd,
            AccessPattern::Uniform,
            AccessPattern::Random,
        ] {
            let r = simulate(&p, &s, &SimConfig::new(pattern)).unwrap();
            assert_eq!(r.start(a), Cycles(3), "{pattern:?}");
            assert_eq!(r.finish(a), Cycles(43), "{pattern:?}");
            assert_eq!(r.stall(a), Cycles::ZERO, "{pattern:?}");
        }
    }

    #[test]
    fn burst_contention_matches_round_robin_intuition() {
        // Both tasks burst 10 accesses at t=0 on one bank: perfect
        // round-robin interleaving stalls each task at most 10 cycles.
        let p = contention_problem(10);
        let s = schedule_both_at_zero(&p, 120);
        let r = simulate(&p, &s, &SimConfig::new(AccessPattern::BurstStart)).unwrap();
        let total: u64 = (0..2).map(|i| r.stall(TaskId(i)).as_u64()).sum();
        assert!(total > 0, "contention must stall someone");
        for i in 0..2 {
            assert!(r.stall(TaskId(i)) <= Cycles(10));
            assert!(r.response(TaskId(i)) <= Cycles(110));
        }
        assert!(r.first_violation(&s).is_none());
    }

    #[test]
    fn staggered_tasks_do_not_contend() {
        let p = contention_problem(10);
        let timings = vec![
            TaskTiming {
                release: Cycles::ZERO,
                wcet: Cycles(100),
                interference: Cycles(10),
            },
            TaskTiming {
                release: Cycles(110),
                wcet: Cycles(100),
                interference: Cycles(10),
            },
        ];
        let s = Schedule::from_timings(timings);
        let r = simulate(&p, &s, &SimConfig::new(AccessPattern::BurstStart)).unwrap();
        assert_eq!(r.total_stall(), Cycles::ZERO);
        assert_eq!(r.finish(TaskId(1)), Cycles(210));
    }

    #[test]
    fn demand_exceeding_wcet_is_rejected() {
        let mut g = TaskGraph::new();
        let _ = g.add_task(
            Task::builder("fat")
                .wcet(Cycles(5))
                .private_demand(BankDemand::single(BankId(0), 50)),
        );
        let m = Mapping::from_assignment(&g, &[0]).unwrap();
        let p = Problem::with_policy(g, m, Platform::new(1, 1), BankPolicy::SingleBank).unwrap();
        let s = Schedule::from_timings(vec![TaskTiming {
            release: Cycles::ZERO,
            wcet: Cycles(5),
            interference: Cycles::ZERO,
        }]);
        let err = simulate(&p, &s, &SimConfig::default()).unwrap_err();
        assert!(matches!(err, SimError::DemandExceedsWcet { .. }));
    }

    #[test]
    fn wrong_schedule_length_is_rejected() {
        let p = contention_problem(1);
        let s = Schedule::from_timings(vec![]);
        assert!(matches!(
            simulate(&p, &s, &SimConfig::default()),
            Err(SimError::WrongScheduleLength { .. })
        ));
    }

    #[test]
    fn random_pattern_is_deterministic_per_seed() {
        let p = contention_problem(20);
        let s = schedule_both_at_zero(&p, 140);
        let c1 = SimConfig::new(AccessPattern::Random).seed(7);
        let r1 = simulate(&p, &s, &c1).unwrap();
        let r2 = simulate(&p, &s, &c1).unwrap();
        assert_eq!(r1, r2);
        let r3 = simulate(&p, &s, &SimConfig::new(AccessPattern::Random).seed(8)).unwrap();
        // Different seed usually differs; at minimum it must stay sound.
        let _ = r3;
    }

    #[test]
    fn tree_bus_grants_fairly_across_groups() {
        // 4 cores in pairs; cores 0, 2 request the same bank forever-ish:
        // they are in different groups, so they alternate like flat RR.
        let mut g = TaskGraph::new();
        for i in 0..4 {
            g.add_task(
                Task::builder(format!("t{i}"))
                    .wcet(Cycles(64))
                    .private_demand(BankDemand::single(BankId(0), 16)),
            );
        }
        let m = Mapping::from_assignment(&g, &[0, 1, 2, 3]).unwrap();
        let p = Problem::with_policy(g, m, Platform::new(4, 4), BankPolicy::SingleBank).unwrap();
        let timings: Vec<TaskTiming> = (0..4)
            .map(|_| TaskTiming {
                release: Cycles::ZERO,
                wcet: Cycles(64),
                interference: Cycles(48),
            })
            .collect();
        let s = Schedule::from_timings(timings);
        let cfg = SimConfig::new(AccessPattern::BurstStart).bus(BusPolicy::Tree { group: 2 });
        let r = simulate(&p, &s, &cfg).unwrap();
        // Four equal burst competitors: each waits at most 3 slots per
        // access → stall ≤ 48.
        for i in 0..4 {
            assert!(
                r.stall(TaskId(i)) <= Cycles(48),
                "task {i}: {:?}",
                r.stall(TaskId(i))
            );
        }
        assert!(r.first_violation(&s).is_none());
    }

    #[test]
    fn zero_demand_zero_wcet_task() {
        let mut g = TaskGraph::new();
        let a = g.add_task(Task::builder("nop").wcet(Cycles(0)));
        let m = Mapping::from_assignment(&g, &[0]).unwrap();
        let p = Problem::new(g, m, Platform::new(1, 1)).unwrap();
        let s = Schedule::from_timings(vec![TaskTiming {
            release: Cycles(4),
            wcet: Cycles(0),
            interference: Cycles::ZERO,
        }]);
        let r = simulate(&p, &s, &SimConfig::default()).unwrap();
        assert_eq!(r.start(a), Cycles(4));
        // A zero-length task retires on the cycle after its release tick.
        assert!(r.finish(a) <= Cycles(5));
    }
}
