//! Event recording for simulation runs.
//!
//! The simulator core is observation-agnostic: it drives a [`Recorder`]
//! with every task start/finish, bank grant and stall. [`SimTrace`] is the
//! batteries-included recorder used by
//! [`simulate_traced`](crate::simulate_traced); it keeps the full event
//! log plus per-bank aggregates ([`BankStats`]) cheap enough to compute
//! on-line.

use mia_model::{BankId, CoreId, Cycles, TaskId};

/// One timed event of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimEvent {
    /// A task started on a core (its time-triggered release fired).
    Start {
        at: Cycles,
        task: TaskId,
        core: CoreId,
    },
    /// A task retired.
    Finish {
        at: Cycles,
        task: TaskId,
        core: CoreId,
    },
    /// A bank granted one access to a core.
    Grant {
        at: Cycles,
        bank: BankId,
        core: CoreId,
    },
    /// A core spent the cycle stalled waiting for a bank.
    Stall {
        at: Cycles,
        bank: BankId,
        core: CoreId,
    },
}

impl SimEvent {
    /// The instant the event occurred.
    pub fn at(&self) -> Cycles {
        match *self {
            SimEvent::Start { at, .. }
            | SimEvent::Finish { at, .. }
            | SimEvent::Grant { at, .. }
            | SimEvent::Stall { at, .. } => at,
        }
    }
}

/// Observer of the simulation loop.
///
/// All methods default to no-ops so recorders implement only what they
/// need. The simulator calls each method at most `cores` times per cycle,
/// so implementations should stay O(1).
pub trait Recorder {
    /// A task started on `core` at `at`.
    fn on_start(&mut self, at: Cycles, task: TaskId, core: CoreId) {
        let _ = (at, task, core);
    }

    /// A task finished on `core` at `at`.
    fn on_finish(&mut self, at: Cycles, task: TaskId, core: CoreId) {
        let _ = (at, task, core);
    }

    /// `bank` granted an access to `core` at `at`.
    fn on_grant(&mut self, at: Cycles, bank: BankId, core: CoreId) {
        let _ = (at, bank, core);
    }

    /// `core` stalled on `bank` at `at`.
    fn on_stall(&mut self, at: Cycles, bank: BankId, core: CoreId) {
        let _ = (at, bank, core);
    }
}

/// A recorder that ignores everything (used by [`crate::simulate`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Per-bank aggregates of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankStats {
    grants: Vec<u64>,
    stalls: Vec<u64>,
    grants_per_core: Vec<Vec<u64>>,
}

impl BankStats {
    fn new(banks: usize, cores: usize) -> Self {
        BankStats {
            grants: vec![0; banks],
            stalls: vec![0; banks],
            grants_per_core: vec![vec![0; cores]; banks],
        }
    }

    /// Total accesses served by `bank`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn grants(&self, bank: BankId) -> u64 {
        self.grants[bank.index()]
    }

    /// Total stall cycles suffered waiting on `bank`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn stalls(&self, bank: BankId) -> u64 {
        self.stalls[bank.index()]
    }

    /// Accesses served by `bank` on behalf of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` or `core` is out of range.
    pub fn grants_to(&self, bank: BankId, core: CoreId) -> u64 {
        self.grants_per_core[bank.index()][core.index()]
    }

    /// The bank that served the most accesses, if any access was served.
    pub fn hottest_bank(&self) -> Option<BankId> {
        let (idx, &n) = self.grants.iter().enumerate().max_by_key(|&(_, &n)| n)?;
        (n > 0).then(|| BankId::from_index(idx))
    }

    /// Total stall cycles over all banks (equals the run's
    /// [`SimResult::total_stall`](crate::SimResult::total_stall)).
    pub fn total_stalls(&self) -> u64 {
        self.stalls.iter().sum()
    }
}

/// Full trace of a simulation run: the event log plus bank aggregates.
///
/// Produced by [`simulate_traced`](crate::simulate_traced); consumed by
/// `mia-trace` exporters (Gantt, Chrome tracing) and by tests that assert
/// on contention shapes.
#[derive(Debug, Clone)]
pub struct SimTrace {
    events: Vec<SimEvent>,
    stats: BankStats,
}

impl SimTrace {
    /// An empty trace sized for the platform.
    pub fn new(banks: usize, cores: usize) -> Self {
        SimTrace {
            events: Vec::new(),
            stats: BankStats::new(banks, cores),
        }
    }

    /// The event log, in chronological order (ties: core order).
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// Bank aggregates.
    pub fn bank_stats(&self) -> &BankStats {
        &self.stats
    }

    /// Events of one kind, in order.
    pub fn starts(&self) -> impl Iterator<Item = (Cycles, TaskId, CoreId)> + '_ {
        self.events.iter().filter_map(|e| match *e {
            SimEvent::Start { at, task, core } => Some((at, task, core)),
            _ => None,
        })
    }

    /// Finish events, in order.
    pub fn finishes(&self) -> impl Iterator<Item = (Cycles, TaskId, CoreId)> + '_ {
        self.events.iter().filter_map(|e| match *e {
            SimEvent::Finish { at, task, core } => Some((at, task, core)),
            _ => None,
        })
    }
}

impl Recorder for SimTrace {
    fn on_start(&mut self, at: Cycles, task: TaskId, core: CoreId) {
        self.events.push(SimEvent::Start { at, task, core });
    }

    fn on_finish(&mut self, at: Cycles, task: TaskId, core: CoreId) {
        self.events.push(SimEvent::Finish { at, task, core });
    }

    fn on_grant(&mut self, at: Cycles, bank: BankId, core: CoreId) {
        self.events.push(SimEvent::Grant { at, bank, core });
        self.stats.grants[bank.index()] += 1;
        self.stats.grants_per_core[bank.index()][core.index()] += 1;
    }

    fn on_stall(&mut self, at: Cycles, bank: BankId, core: CoreId) {
        self.events.push(SimEvent::Stall { at, bank, core });
        self.stats.stalls[bank.index()] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_at_accessor() {
        let e = SimEvent::Grant {
            at: Cycles(9),
            bank: BankId(1),
            core: CoreId(0),
        };
        assert_eq!(e.at(), Cycles(9));
    }

    #[test]
    fn trace_records_and_aggregates() {
        let mut t = SimTrace::new(2, 2);
        t.on_start(Cycles(0), TaskId(0), CoreId(0));
        t.on_grant(Cycles(1), BankId(0), CoreId(0));
        t.on_grant(Cycles(2), BankId(0), CoreId(1));
        t.on_stall(Cycles(2), BankId(0), CoreId(0));
        t.on_finish(Cycles(3), TaskId(0), CoreId(0));
        assert_eq!(t.events().len(), 5);
        assert_eq!(t.bank_stats().grants(BankId(0)), 2);
        assert_eq!(t.bank_stats().grants(BankId(1)), 0);
        assert_eq!(t.bank_stats().stalls(BankId(0)), 1);
        assert_eq!(t.bank_stats().grants_to(BankId(0), CoreId(1)), 1);
        assert_eq!(t.bank_stats().hottest_bank(), Some(BankId(0)));
        assert_eq!(t.bank_stats().total_stalls(), 1);
        assert_eq!(t.starts().count(), 1);
        assert_eq!(t.finishes().count(), 1);
    }

    #[test]
    fn hottest_bank_of_idle_run_is_none() {
        let t = SimTrace::new(3, 1);
        assert_eq!(t.bank_stats().hottest_bank(), None);
    }
}
