//! The central validation of the whole workspace: on randomly generated
//! workloads, the response times computed by the analyses are never
//! exceeded by the simulated execution, for any access pattern.
//!
//! (Experiment V1 of `DESIGN.md`.)

use mia_arbiter::{Fifo, RoundRobin, Tdm};
use mia_dag_gen::{Family, LayeredDag, LayeredDagConfig};
use mia_model::{Arbiter, Cycles, Platform, Problem};
use mia_sim::{simulate, AccessPattern, BusPolicy, SimConfig};
use proptest::prelude::*;

/// A generator configuration whose tasks always fit their accesses inside
/// their WCET (the simulator's execution model).
fn sim_friendly(family: Family, total: usize, seed: u64) -> LayeredDagConfig {
    let mut cfg = family.config(total, seed);
    cfg.accesses = 50..=150;
    cfg.edge_words = 0..=10;
    cfg.edge_probability = 0.3;
    cfg
}

fn build(family: Family, total: usize, seed: u64) -> Problem {
    LayeredDag::new(sim_friendly(family, total, seed))
        .generate()
        .into_problem(&Platform::mppa256_cluster())
        .expect("generated workload is valid")
}

const PATTERNS: [AccessPattern; 4] = [
    AccessPattern::BurstStart,
    AccessPattern::BurstEnd,
    AccessPattern::Uniform,
    AccessPattern::Random,
];

#[test]
fn incremental_analysis_bounds_all_patterns() {
    for seed in 0..4 {
        let p = build(Family::FixedLayerSize(16), 96, seed);
        let s = mia_core::analyze(&p, &RoundRobin::new()).unwrap();
        s.check(&p).unwrap();
        for pattern in PATTERNS {
            let r = simulate(&p, &s, &SimConfig::new(pattern).seed(seed)).unwrap();
            assert_eq!(
                r.first_violation(&s),
                None,
                "pattern {pattern:?}, seed {seed}"
            );
            assert!(r.makespan() <= s.makespan());
        }
    }
}

#[test]
fn baseline_analysis_bounds_all_patterns() {
    for seed in 0..2 {
        let p = build(Family::FixedLayers(4), 64, seed);
        let s = mia_baseline::analyze(&p, &RoundRobin::new()).unwrap();
        s.check(&p).unwrap();
        for pattern in PATTERNS {
            let r = simulate(&p, &s, &SimConfig::new(pattern).seed(seed)).unwrap();
            assert_eq!(
                r.first_violation(&s),
                None,
                "pattern {pattern:?}, seed {seed}"
            );
        }
    }
}

#[test]
fn dominating_arbiters_also_bound_execution() {
    // FIFO and TDM bounds dominate flat round-robin, so their schedules
    // are also sound against the round-robin hardware.
    let p = build(Family::FixedLayerSize(8), 64, 3);
    for arbiter in [&Fifo::new() as &dyn Arbiter, &Tdm::new()] {
        let s = mia_core::analyze(&p, arbiter).unwrap();
        for pattern in PATTERNS {
            let r = simulate(&p, &s, &SimConfig::new(pattern)).unwrap();
            assert_eq!(
                r.first_violation(&s),
                None,
                "arbiter {}, pattern {pattern:?}",
                arbiter.name()
            );
        }
    }
}

#[test]
fn mppa_tree_analysis_bounds_tree_hardware() {
    let p = build(Family::FixedLayerSize(8), 64, 4);
    let s = mia_core::analyze(&p, &mia_arbiter::MppaTree::cluster16()).unwrap();
    for pattern in PATTERNS {
        let cfg = SimConfig::new(pattern).bus(BusPolicy::Tree { group: 2 });
        let r = simulate(&p, &s, &cfg).unwrap();
        assert_eq!(r.first_violation(&s), None, "pattern {pattern:?}");
    }
}

#[test]
fn observed_interference_is_within_analysed_interference() {
    let p = build(Family::FixedLayerSize(16), 128, 5);
    let s = mia_core::analyze(&p, &RoundRobin::new()).unwrap();
    let r = simulate(&p, &s, &SimConfig::new(AccessPattern::BurstStart)).unwrap();
    for (id, _) in p.graph().iter() {
        assert!(
            r.stall(id) <= s.timing(id).interference,
            "task {id}: observed {} > analysed {}",
            r.stall(id),
            s.timing(id).interference
        );
    }
}

#[test]
fn zero_interference_schedule_simulates_exactly() {
    // Single core: no interference possible; the simulation reproduces
    // the analysed schedule cycle for cycle.
    let mut cfg = sim_friendly(Family::FixedLayerSize(4), 16, 6);
    cfg.cores = 1;
    let p = LayeredDag::new(cfg)
        .generate()
        .into_problem(&Platform::mppa256_cluster())
        .unwrap();
    let s = mia_core::analyze(&p, &RoundRobin::new()).unwrap();
    assert_eq!(s.total_interference(), Cycles::ZERO);
    let r = simulate(&p, &s, &SimConfig::new(AccessPattern::Uniform)).unwrap();
    for (id, _) in p.graph().iter() {
        assert_eq!(r.finish(id), s.timing(id).finish());
        assert_eq!(r.stall(id), Cycles::ZERO);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn soundness_holds_for_random_workloads(
        seed in 0u64..10_000,
        total in 16usize..96,
        ls in prop::sample::select(vec![4usize, 8, 16]),
        pattern in prop::sample::select(PATTERNS.to_vec()),
    ) {
        let p = build(Family::FixedLayerSize(ls), total, seed);
        let s = mia_core::analyze(&p, &RoundRobin::new()).unwrap();
        let r = simulate(&p, &s, &SimConfig::new(pattern).seed(seed)).unwrap();
        prop_assert_eq!(r.first_violation(&s), None);
        prop_assert!(r.makespan() <= s.makespan());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The trace aggregates agree with the per-task result: total grants
    /// equal the workload's total demand and total stalls match the
    /// per-task stall sum.
    #[test]
    fn trace_aggregates_are_consistent(
        seed in 0u64..10_000,
        total in 16usize..64,
        pattern in prop::sample::select(PATTERNS.to_vec()),
    ) {
        let p = build(Family::FixedLayerSize(8), total, seed);
        let s = mia_core::analyze(&p, &RoundRobin::new()).unwrap();
        let (r, trace) =
            mia_sim::simulate_traced(&p, &s, &SimConfig::new(pattern).seed(seed)).unwrap();
        let total_demand: u64 = p.demands().iter().map(|d| d.total()).sum();
        let total_grants: u64 = (0..p.platform().banks())
            .map(|b| trace.bank_stats().grants(mia_model::BankId::from_index(b)))
            .sum();
        prop_assert_eq!(total_grants, total_demand);
        prop_assert_eq!(
            Cycles(trace.bank_stats().total_stalls()),
            r.total_stall()
        );
        // Every task starts exactly once and finishes exactly once.
        prop_assert_eq!(trace.starts().count(), p.len());
        prop_assert_eq!(trace.finishes().count(), p.len());
    }

    /// Fault injection: a WCET overrun larger than the task's whole
    /// analysed window is always detected by violation checking.
    #[test]
    fn gross_overruns_are_always_detected(
        seed in 0u64..10_000,
        total in 16usize..48,
        victim_sel in 0usize..16,
    ) {
        let p = build(Family::FixedLayerSize(8), total, seed);
        let s = mia_core::analyze(&p, &RoundRobin::new()).unwrap();
        let victim = mia_model::TaskId::from_index(victim_sel % p.len());
        let window = s.timing(victim).response_time();
        let plan = mia_sim::FaultPlan::new().overrun(victim, window + Cycles(1));
        let faulty = mia_sim::apply_faults(&p, &plan).unwrap();
        let r = simulate(&faulty, &s, &SimConfig::new(AccessPattern::BurstStart)).unwrap();
        prop_assert!(r.first_violation(&s).is_some());
    }
}
