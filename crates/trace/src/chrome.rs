//! Chrome-tracing (`about:tracing` / Perfetto) export.
//!
//! The Trace Event Format is the lingua franca of timeline viewers: a JSON
//! array of complete (`"ph": "X"`) events with microsecond timestamps.
//! We map one simulated/analysed cycle to one microsecond, cores to
//! Chrome *threads* and the schedule to one *process*, so a schedule drops
//! straight into `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! Two timelines share the format: the *schedule* (cycles, pid 0) and
//! the analyzer's own *runtime* ([`mia_obs`] spans, wall-clock
//! nanoseconds rendered as fractional microseconds, pid 1) — so a
//! profiled run opens with the produced schedule and the time spent
//! producing it side by side.

use mia_model::{Problem, Schedule};
use mia_obs::SpanRecord;
use serde::Serialize;

#[derive(Serialize)]
struct TraceEvent<'a> {
    name: &'a str,
    cat: &'a str,
    ph: &'a str,
    ts: u64,
    dur: u64,
    pid: u32,
    tid: u32,
    args: TraceArgs,
}

#[derive(Serialize)]
struct TraceArgs {
    wcet: u64,
    interference: u64,
    release: u64,
}

/// Renders an analysed schedule as Chrome Trace Event JSON.
///
/// Each task becomes a complete event on its core's row, spanning its
/// analysed window `[release, release + WCET + interference]`; the
/// interference split is attached as event arguments so the viewer's
/// detail pane shows the decomposition.
///
/// # Example
///
/// ```
/// use mia_model::{Cycles, Mapping, Platform, Problem, Task, TaskGraph};
/// use mia_trace::to_chrome_trace;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mut g = TaskGraph::new();
/// # let _ = g.add_task(Task::builder("a").wcet(Cycles(10)));
/// # let m = Mapping::from_assignment(&g, &[0])?;
/// # let p = Problem::new(g, m, Platform::new(1, 1))?;
/// # let s = mia_model::Schedule::from_timings(vec![mia_model::TaskTiming {
/// #     release: Cycles::ZERO, wcet: Cycles(10), interference: Cycles::ZERO }]);
/// let json = to_chrome_trace(&p, &s);
/// assert!(json.contains("\"ph\":\"X\""));
/// # Ok(())
/// # }
/// ```
pub fn to_chrome_trace(problem: &Problem, schedule: &Schedule) -> String {
    let mut parts = Vec::new();
    push_schedule_events(&mut parts, problem, schedule);
    join_events(parts)
}

/// The Chrome process id the schedule timeline renders under.
const SCHEDULE_PID: u32 = 0;
/// The Chrome process id the analyzer-runtime timeline renders under.
const RUNTIME_PID: u32 = 1;

#[derive(Serialize)]
struct MetaArgs<'a> {
    name: &'a str,
}

#[derive(Serialize)]
struct MetaEvent<'a> {
    name: &'a str,
    ph: &'a str,
    pid: u32,
    tid: u64,
    args: MetaArgs<'a>,
}

#[derive(Serialize)]
struct SpanEvent<'a> {
    name: &'a str,
    cat: &'a str,
    ph: &'a str,
    /// Fractional microseconds: span clocks are nanosecond-resolution
    /// and phases can be far shorter than 1 µs.
    ts: f64,
    dur: f64,
    pid: u32,
    tid: u64,
}

fn join_events(parts: Vec<String>) -> String {
    let mut out = String::from("[");
    out.push_str(&parts.join(","));
    out.push(']');
    out
}

fn push_schedule_events(parts: &mut Vec<String>, problem: &Problem, schedule: &Schedule) {
    let mapping = problem.mapping();
    for (id, task) in problem.graph().iter() {
        let t = schedule.timing(id);
        let event = TraceEvent {
            name: task.name(),
            cat: "task",
            ph: "X",
            ts: t.release.as_u64(),
            dur: t.response_time().as_u64(),
            pid: SCHEDULE_PID,
            tid: mapping.core_of(id).0,
            args: TraceArgs {
                wcet: t.wcet.as_u64(),
                interference: t.interference.as_u64(),
                release: t.release.as_u64(),
            },
        };
        parts.push(serde_json::to_string(&event).expect("trace event serializes"));
    }
}

#[allow(clippy::cast_precision_loss)]
fn push_span_events(parts: &mut Vec<String>, spans: &[SpanRecord]) {
    parts.push(
        serde_json::to_string(&MetaEvent {
            name: "process_name",
            ph: "M",
            pid: RUNTIME_PID,
            tid: 0,
            args: MetaArgs {
                name: "mia runtime",
            },
        })
        .expect("meta event serializes"),
    );
    for span in spans {
        let event = SpanEvent {
            name: &span.name,
            cat: "runtime",
            ph: "X",
            ts: span.start_ns as f64 / 1e3,
            dur: span.dur_ns as f64 / 1e3,
            pid: RUNTIME_PID,
            tid: span.tid,
        };
        parts.push(serde_json::to_string(&event).expect("span event serializes"));
    }
}

/// Renders analyzer-runtime spans (from [`mia_obs::take_spans`]) as
/// Chrome Trace Event JSON: one complete event per span on its
/// recording thread's row, timestamps in fractional microseconds.
pub fn spans_to_chrome_trace(spans: &[SpanRecord]) -> String {
    let mut parts = Vec::new();
    push_span_events(&mut parts, spans);
    join_events(parts)
}

/// Renders a schedule and the runtime spans that produced it in one
/// trace: the schedule under process 0 (cycles as microseconds), the
/// analyzer runtime under process 1 (wall-clock microseconds), so
/// `chrome://tracing` / Perfetto shows both timelines stacked.
pub fn to_chrome_trace_with_runtime(
    problem: &Problem,
    schedule: &Schedule,
    spans: &[SpanRecord],
) -> String {
    let mut parts = Vec::new();
    parts.push(
        serde_json::to_string(&MetaEvent {
            name: "process_name",
            ph: "M",
            pid: SCHEDULE_PID,
            tid: 0,
            args: MetaArgs {
                name: "schedule (cycles as \u{b5}s)",
            },
        })
        .expect("meta event serializes"),
    );
    push_schedule_events(&mut parts, problem, schedule);
    push_span_events(&mut parts, spans);
    join_events(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mia_model::{Cycles, Mapping, Platform, Task, TaskGraph, TaskTiming};

    #[test]
    fn events_cover_every_task_with_core_rows() {
        let mut g = TaskGraph::new();
        let a = g.add_task(Task::builder("alpha").wcet(Cycles(5)));
        let b = g.add_task(Task::builder("beta").wcet(Cycles(7)));
        g.add_edge(a, b, 1).unwrap();
        let m = Mapping::from_assignment(&g, &[0, 1]).unwrap();
        let p = Problem::new(g, m, Platform::new(2, 2)).unwrap();
        let s = Schedule::from_timings(vec![
            TaskTiming {
                release: Cycles(0),
                wcet: Cycles(5),
                interference: Cycles(2),
            },
            TaskTiming {
                release: Cycles(7),
                wcet: Cycles(7),
                interference: Cycles(0),
            },
        ]);
        let json = to_chrome_trace(&p, &s);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = parsed.as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["name"], "alpha");
        assert_eq!(events[0]["dur"], 7);
        assert_eq!(events[0]["tid"], 0);
        assert_eq!(events[1]["tid"], 1);
        assert_eq!(events[1]["ts"], 7);
        assert_eq!(events[0]["args"]["interference"], 2);
    }

    #[test]
    fn runtime_spans_render_under_their_own_process() {
        let spans = vec![
            SpanRecord {
                name: "analysis.run".to_owned(),
                tid: 0,
                start_ns: 1500,
                dur_ns: 2_000_000,
            },
            SpanRecord {
                name: "parallel.worker_wait".to_owned(),
                tid: 3,
                start_ns: 2000,
                dur_ns: 250,
            },
        ];
        let json = spans_to_chrome_trace(&spans);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = parsed.as_array().unwrap();
        // Metadata event first, then one complete event per span.
        assert_eq!(events.len(), 3);
        assert_eq!(events[0]["ph"], "M");
        assert_eq!(events[1]["name"], "analysis.run");
        assert_eq!(events[1]["ph"], "X");
        assert_eq!(events[1]["pid"], 1);
        assert_eq!(events[1]["ts"], 1.5);
        assert_eq!(events[1]["dur"], 2000.0);
        assert_eq!(events[2]["tid"], 3);
        assert_eq!(events[2]["dur"], 0.25);
    }

    #[test]
    fn combined_export_stacks_schedule_and_runtime() {
        let mut g = TaskGraph::new();
        let _ = g.add_task(Task::builder("alpha").wcet(Cycles(5)));
        let m = Mapping::from_assignment(&g, &[0]).unwrap();
        let p = Problem::new(g, m, Platform::new(1, 1)).unwrap();
        let s = Schedule::from_timings(vec![TaskTiming {
            release: Cycles(0),
            wcet: Cycles(5),
            interference: Cycles(0),
        }]);
        let spans = vec![SpanRecord {
            name: "analysis.advance".to_owned(),
            tid: 0,
            start_ns: 0,
            dur_ns: 10,
        }];
        let json = to_chrome_trace_with_runtime(&p, &s, &spans);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = parsed.as_array().unwrap();
        let pids: Vec<_> = events
            .iter()
            .filter(|e| e["ph"] == "X")
            .map(|e| e["pid"].clone())
            .collect();
        assert!(pids.iter().any(|p| *p == 0), "{json}");
        assert!(pids.iter().any(|p| *p == 1), "{json}");
        // Both process rows are named for the viewer.
        let metas = events.iter().filter(|e| e["ph"] == "M").count();
        assert_eq!(metas, 2);
    }

    #[test]
    fn empty_schedule_is_an_empty_array() {
        let g = TaskGraph::new();
        let m = Mapping::from_assignment(&g, &[]).unwrap();
        let p = Problem::new(g, m, Platform::new(1, 1)).unwrap();
        let s = Schedule::from_timings(vec![]);
        assert_eq!(to_chrome_trace(&p, &s), "[]");
    }
}
