//! Chrome-tracing (`about:tracing` / Perfetto) export.
//!
//! The Trace Event Format is the lingua franca of timeline viewers: a JSON
//! array of complete (`"ph": "X"`) events with microsecond timestamps.
//! We map one simulated/analysed cycle to one microsecond, cores to
//! Chrome *threads* and the schedule to one *process*, so a schedule drops
//! straight into `chrome://tracing` or <https://ui.perfetto.dev>.

use mia_model::{Problem, Schedule};
use serde::Serialize;

#[derive(Serialize)]
struct TraceEvent<'a> {
    name: &'a str,
    cat: &'a str,
    ph: &'a str,
    ts: u64,
    dur: u64,
    pid: u32,
    tid: u32,
    args: TraceArgs,
}

#[derive(Serialize)]
struct TraceArgs {
    wcet: u64,
    interference: u64,
    release: u64,
}

/// Renders an analysed schedule as Chrome Trace Event JSON.
///
/// Each task becomes a complete event on its core's row, spanning its
/// analysed window `[release, release + WCET + interference]`; the
/// interference split is attached as event arguments so the viewer's
/// detail pane shows the decomposition.
///
/// # Example
///
/// ```
/// use mia_model::{Cycles, Mapping, Platform, Problem, Task, TaskGraph};
/// use mia_trace::to_chrome_trace;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mut g = TaskGraph::new();
/// # let _ = g.add_task(Task::builder("a").wcet(Cycles(10)));
/// # let m = Mapping::from_assignment(&g, &[0])?;
/// # let p = Problem::new(g, m, Platform::new(1, 1))?;
/// # let s = mia_model::Schedule::from_timings(vec![mia_model::TaskTiming {
/// #     release: Cycles::ZERO, wcet: Cycles(10), interference: Cycles::ZERO }]);
/// let json = to_chrome_trace(&p, &s);
/// assert!(json.contains("\"ph\":\"X\""));
/// # Ok(())
/// # }
/// ```
pub fn to_chrome_trace(problem: &Problem, schedule: &Schedule) -> String {
    let graph = problem.graph();
    let mapping = problem.mapping();
    let events: Vec<TraceEvent<'_>> = graph
        .iter()
        .map(|(id, task)| {
            let t = schedule.timing(id);
            TraceEvent {
                name: task.name(),
                cat: "task",
                ph: "X",
                ts: t.release.as_u64(),
                dur: t.response_time().as_u64(),
                pid: 0,
                tid: mapping.core_of(id).0,
                args: TraceArgs {
                    wcet: t.wcet.as_u64(),
                    interference: t.interference.as_u64(),
                    release: t.release.as_u64(),
                },
            }
        })
        .collect();
    serde_json::to_string(&events).expect("trace events serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mia_model::{Cycles, Mapping, Platform, Task, TaskGraph, TaskTiming};

    #[test]
    fn events_cover_every_task_with_core_rows() {
        let mut g = TaskGraph::new();
        let a = g.add_task(Task::builder("alpha").wcet(Cycles(5)));
        let b = g.add_task(Task::builder("beta").wcet(Cycles(7)));
        g.add_edge(a, b, 1).unwrap();
        let m = Mapping::from_assignment(&g, &[0, 1]).unwrap();
        let p = Problem::new(g, m, Platform::new(2, 2)).unwrap();
        let s = Schedule::from_timings(vec![
            TaskTiming {
                release: Cycles(0),
                wcet: Cycles(5),
                interference: Cycles(2),
            },
            TaskTiming {
                release: Cycles(7),
                wcet: Cycles(7),
                interference: Cycles(0),
            },
        ]);
        let json = to_chrome_trace(&p, &s);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = parsed.as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["name"], "alpha");
        assert_eq!(events[0]["dur"], 7);
        assert_eq!(events[0]["tid"], 0);
        assert_eq!(events[1]["tid"], 1);
        assert_eq!(events[1]["ts"], 7);
        assert_eq!(events[0]["args"]["interference"], 2);
    }

    #[test]
    fn empty_schedule_is_an_empty_array() {
        let g = TaskGraph::new();
        let m = Mapping::from_assignment(&g, &[]).unwrap();
        let p = Problem::new(g, m, Platform::new(1, 1)).unwrap();
        let s = Schedule::from_timings(vec![]);
        assert_eq!(to_chrome_trace(&p, &s), "[]");
    }
}
