//! Schedule visualisation and export.
//!
//! Renders the artefacts the paper presents as figures:
//!
//! * [`gantt`] — ASCII timing diagrams like Figure 1's schedules (one row
//!   per core, interference marked),
//! * [`CursorTrace`] — an [`mia_core::Observer`] recording the
//!   incremental algorithm's cursor mechanism, with
//!   [`CursorTrace::snapshot`] reproducing Figure 2's closed/alive/future
//!   partition at any instant,
//! * [`to_dot`] — Graphviz export of task graphs (Figure 1's DAG),
//! * [`to_svg`] — SVG timing diagrams,
//! * [`schedule_json`] / [`report_json`] — machine-readable results for
//!   external plotting.
//!
//! # Example
//!
//! ```
//! use mia_model::{Cycles, Mapping, Platform, Problem, Task, TaskGraph};
//! use mia_model::{Schedule, TaskTiming};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = TaskGraph::new();
//! let a = g.add_task(Task::builder("a").wcet(Cycles(4)));
//! let b = g.add_task(Task::builder("b").wcet(Cycles(3)));
//! g.add_edge(a, b, 1)?;
//! let m = Mapping::from_assignment(&g, &[0, 1])?;
//! let p = Problem::new(g, m, Platform::new(2, 2))?;
//! let s = Schedule::from_timings(vec![
//!     TaskTiming { release: Cycles(0), wcet: Cycles(4), interference: Cycles(0) },
//!     TaskTiming { release: Cycles(4), wcet: Cycles(3), interference: Cycles(1) },
//! ]);
//! let chart = mia_trace::gantt(&p, &s);
//! assert!(chart.contains("PE0"));
//! assert!(chart.contains("a"));
//! # Ok(())
//! # }
//! ```

mod chrome;
mod svg;

pub use chrome::{spans_to_chrome_trace, to_chrome_trace, to_chrome_trace_with_runtime};
pub use svg::{to_svg, SvgOptions};

use std::collections::BTreeMap;
use std::fmt::Write as _;

use mia_core::Observer;
use mia_model::{BankId, CoreId, Cycles, Problem, Schedule, TaskGraph, TaskId};
use serde::Serialize;

/// Renders an ASCII Gantt chart of a schedule: one row per core, one
/// column per time unit (scaled down for long schedules). Task bodies are
/// drawn with their name's first letters; interference cycles extend the
/// box with `#` marks, like the grey `I:` boxes of the paper's Figure 1.
pub fn gantt(problem: &Problem, schedule: &Schedule) -> String {
    const MAX_WIDTH: usize = 100;
    let makespan = schedule.makespan().as_u64().max(1);
    // Cycles per character column.
    let scale = makespan.div_ceil(MAX_WIDTH as u64).max(1);
    let columns = (makespan / scale) as usize + 1;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "time: 0 .. {} ({} cycle(s) per column)",
        schedule.makespan(),
        scale
    );
    for (core, order) in problem.mapping().iter() {
        let mut row = vec![b' '; columns];
        for &task in order {
            let t = schedule.timing(task);
            let name = problem.graph().task(task).name();
            let start = (t.release.as_u64() / scale) as usize;
            let wcet_end = ((t.release + t.wcet).as_u64() / scale) as usize;
            let finish = (t.finish().as_u64() / scale) as usize;
            for (i, slot) in row
                .iter_mut()
                .enumerate()
                .take(finish.min(columns - 1) + 1)
                .skip(start)
            {
                *slot = if i <= wcet_end { b'=' } else { b'#' };
            }
            // Stamp the task name at the start of its box.
            for (k, ch) in name.bytes().enumerate() {
                let pos = start + k;
                if pos < columns && pos <= finish {
                    row[pos] = ch;
                }
            }
        }
        let _ = writeln!(out, "{core:>4} |{}|", String::from_utf8_lossy(&row));
    }
    out
}

/// The Figure 2 partition of tasks around a cursor position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The cursor position the snapshot refers to.
    pub at: Cycles,
    /// Tasks whose finish date is ≤ cursor ("dead"/dotted on the left).
    pub closed: Vec<TaskId>,
    /// Tasks open at the cursor (solid boxes).
    pub alive: Vec<TaskId>,
    /// Tasks not yet released (dotted on the right).
    pub future: Vec<TaskId>,
}

/// An [`Observer`] recording every event of an incremental-analysis run;
/// supports replaying the cursor mechanism afterwards.
#[derive(Debug, Clone, Default)]
pub struct CursorTrace {
    /// Cursor positions in visit order.
    pub cursors: Vec<Cycles>,
    /// (task, core, time) for every opening.
    pub opens: Vec<(TaskId, CoreId, Cycles)>,
    /// (task, core, time) for every closing.
    pub closes: Vec<(TaskId, CoreId, Cycles)>,
    /// (task, bank, running total) for every interference update.
    pub interference_updates: Vec<(TaskId, BankId, Cycles)>,
    n_tasks: usize,
}

impl CursorTrace {
    /// Creates an empty trace for a problem of `n_tasks` tasks.
    pub fn new(n_tasks: usize) -> Self {
        CursorTrace {
            n_tasks,
            ..CursorTrace::default()
        }
    }

    /// Reconstructs the closed/alive/future partition right after the
    /// cursor step at `at` (Figure 2 of the paper).
    pub fn snapshot(&self, at: Cycles) -> Snapshot {
        let mut opened: BTreeMap<TaskId, Cycles> = BTreeMap::new();
        let mut closed_set: BTreeMap<TaskId, Cycles> = BTreeMap::new();
        for &(task, _, t) in &self.opens {
            if t <= at {
                opened.insert(task, t);
            }
        }
        for &(task, _, t) in &self.closes {
            if t <= at {
                closed_set.insert(task, t);
            }
        }
        let closed: Vec<TaskId> = closed_set.keys().copied().collect();
        let alive: Vec<TaskId> = opened
            .keys()
            .filter(|t| !closed_set.contains_key(t))
            .copied()
            .collect();
        let future: Vec<TaskId> = (0..self.n_tasks)
            .map(TaskId::from_index)
            .filter(|t| !opened.contains_key(t))
            .collect();
        Snapshot {
            at,
            closed,
            alive,
            future,
        }
    }

    /// Renders the sequence of snapshots (one per cursor position) in a
    /// compact textual form.
    pub fn render_timeline(&self) -> String {
        let mut out = String::new();
        for &t in &self.cursors {
            let s = self.snapshot(t);
            let fmt = |v: &[TaskId]| {
                v.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let _ = writeln!(
                out,
                "t={:<8} closed=[{}] alive=[{}] future=[{}]",
                t.to_string(),
                fmt(&s.closed),
                fmt(&s.alive),
                fmt(&s.future)
            );
        }
        out
    }
}

impl Observer for CursorTrace {
    fn on_cursor(&mut self, t: Cycles) {
        self.cursors.push(t);
    }

    fn on_open(&mut self, task: TaskId, core: CoreId, t: Cycles) {
        self.opens.push((task, core, t));
    }

    fn on_close(&mut self, task: TaskId, core: CoreId, t: Cycles) {
        self.closes.push((task, core, t));
    }

    fn on_interference(&mut self, task: TaskId, bank: BankId, total: Cycles) {
        self.interference_updates.push((task, bank, total));
    }
}

/// Exports a task graph in Graphviz DOT format; edges carry their word
/// counts, nodes their WCET and minimal release date.
pub fn to_dot(graph: &TaskGraph) -> String {
    let mut out = String::from("digraph tasks {\n  rankdir=TB;\n  node [shape=circle];\n");
    for (id, task) in graph.iter() {
        let mut label = format!("{}\\nC={}", task.name(), task.wcet());
        if task.min_release() > Cycles::ZERO {
            let _ = write!(label, "\\nrel≥{}", task.min_release());
        }
        let _ = writeln!(out, "  {} [label=\"{}\"];", id.index(), label);
    }
    for e in graph.edges() {
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}\"];",
            e.src.index(),
            e.dst.index(),
            e.words
        );
    }
    out.push_str("}\n");
    out
}

#[derive(Serialize)]
struct TimingRow {
    task: u32,
    name: String,
    core: u32,
    release: u64,
    wcet: u64,
    interference: u64,
    finish: u64,
}

/// Serializes a schedule (with task names and cores) to pretty JSON.
///
/// # Panics
///
/// Panics if the schedule does not cover the problem (callers should pass
/// the schedule computed for that problem).
pub fn schedule_json(problem: &Problem, schedule: &Schedule) -> String {
    assert_eq!(schedule.len(), problem.len(), "schedule must cover problem");
    let rows: Vec<TimingRow> = problem
        .graph()
        .iter()
        .map(|(id, task)| {
            let t = schedule.timing(id);
            TimingRow {
                task: id.0,
                name: task.name().to_owned(),
                core: problem.mapping().core_of(id).0,
                release: t.release.as_u64(),
                wcet: t.wcet.as_u64(),
                interference: t.interference.as_u64(),
                finish: t.finish().as_u64(),
            }
        })
        .collect();
    serde_json::to_string_pretty(&rows).expect("rows serialize")
}

/// Serializes an arbitrary serde-serializable report to pretty JSON.
pub fn report_json<T: Serialize>(report: &T) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

/// A one-line-per-task textual table of a schedule (markdown).
pub fn schedule_table(problem: &Problem, schedule: &Schedule) -> String {
    let mut out = String::from("| task | core | release | wcet | interference | finish |\n");
    out.push_str("|------|------|---------|------|--------------|--------|\n");
    for (id, task) in problem.graph().iter() {
        let t = schedule.timing(id);
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} |",
            task.name(),
            problem.mapping().core_of(id),
            t.release.as_u64(),
            t.wcet.as_u64(),
            t.interference.as_u64(),
            t.finish().as_u64()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mia_model::{Mapping, Platform, Task, TaskTiming};

    fn figure1_like() -> (Problem, Schedule) {
        let mut g = TaskGraph::new();
        let _a = g.add_task(Task::builder("a").wcet(Cycles(2)));
        let _b = g.add_task(Task::builder("b").wcet(Cycles(3)).min_release(Cycles(1)));
        let m = Mapping::from_assignment(&g, &[0, 1]).unwrap();
        let p = Problem::new(g, m, Platform::new(2, 2)).unwrap();
        let s = Schedule::from_timings(vec![
            TaskTiming {
                release: Cycles(0),
                wcet: Cycles(2),
                interference: Cycles(1),
            },
            TaskTiming {
                release: Cycles(1),
                wcet: Cycles(3),
                interference: Cycles(0),
            },
        ]);
        (p, s)
    }

    #[test]
    fn gantt_contains_cores_and_names() {
        let (p, s) = figure1_like();
        let chart = gantt(&p, &s);
        assert!(chart.contains("PE0"));
        assert!(chart.contains("PE1"));
        assert!(chart.contains('a'));
        assert!(chart.contains('b'));
        assert!(chart.contains('#'), "interference must be marked: {chart}");
    }

    #[test]
    fn gantt_scales_long_schedules() {
        let mut g = TaskGraph::new();
        let _ = g.add_task(Task::builder("long").wcet(Cycles(100_000)));
        let m = Mapping::from_assignment(&g, &[0]).unwrap();
        let p = Problem::new(g, m, Platform::new(1, 1)).unwrap();
        let s = Schedule::from_timings(vec![TaskTiming {
            release: Cycles(0),
            wcet: Cycles(100_000),
            interference: Cycles(0),
        }]);
        let chart = gantt(&p, &s);
        // No line longer than ~120 characters.
        assert!(chart.lines().all(|l| l.len() < 130), "{chart}");
    }

    #[test]
    fn dot_export_mentions_every_task_and_edge() {
        let mut g = TaskGraph::new();
        let a = g.add_task(Task::builder("src").wcet(Cycles(1)));
        let b = g.add_task(Task::builder("dst").wcet(Cycles(1)).min_release(Cycles(4)));
        g.add_edge(a, b, 7).unwrap();
        let dot = to_dot(&g);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("src"));
        assert!(dot.contains("rel≥4cy"));
        assert!(dot.contains("0 -> 1 [label=\"7\"]"));
    }

    #[test]
    fn cursor_trace_snapshot_partitions() {
        let mut trace = CursorTrace::new(3);
        trace.on_cursor(Cycles(0));
        trace.on_open(TaskId(0), CoreId(0), Cycles(0));
        trace.on_cursor(Cycles(5));
        trace.on_close(TaskId(0), CoreId(0), Cycles(5));
        trace.on_open(TaskId(1), CoreId(0), Cycles(5));
        let snap = trace.snapshot(Cycles(5));
        assert_eq!(snap.closed, vec![TaskId(0)]);
        assert_eq!(snap.alive, vec![TaskId(1)]);
        assert_eq!(snap.future, vec![TaskId(2)]);
        // Before anything happened, everything is future.
        let early = trace.snapshot(Cycles(0)).closed;
        assert!(early.is_empty());
    }

    #[test]
    fn timeline_renders_every_cursor() {
        let mut trace = CursorTrace::new(1);
        trace.on_cursor(Cycles(0));
        trace.on_open(TaskId(0), CoreId(0), Cycles(0));
        trace.on_cursor(Cycles(9));
        trace.on_close(TaskId(0), CoreId(0), Cycles(9));
        let text = trace.render_timeline();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("alive=[n0]"));
        assert!(text.contains("closed=[n0]"));
    }

    #[test]
    fn schedule_json_round_trips() {
        let (p, s) = figure1_like();
        let json = schedule_json(&p, &s);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 2);
        assert_eq!(parsed[0]["name"], "a");
        assert_eq!(parsed[0]["interference"], 1);
    }

    #[test]
    fn schedule_table_has_a_row_per_task() {
        let (p, s) = figure1_like();
        let table = schedule_table(&p, &s);
        assert_eq!(table.lines().count(), 4); // header + separator + 2 rows
    }
}
