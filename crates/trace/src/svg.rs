//! SVG rendering of schedules (a publication-quality version of the
//! ASCII [`gantt`](crate::gantt), in the style of the paper's Figure 1
//! timing diagrams: task boxes per core with grey interference boxes).

use std::fmt::Write as _;

use mia_model::{Problem, Schedule};

/// Geometry and styling of the SVG chart.
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Total chart width in pixels (time axis scales to fit).
    pub width: u32,
    /// Height of one core's row in pixels.
    pub row_height: u32,
    /// Fill colour of WCET boxes.
    pub task_fill: String,
    /// Fill colour of interference extensions (the paper's grey `I:` box).
    pub interference_fill: String,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 900,
            row_height: 34,
            task_fill: "#7fb3d5".to_owned(),
            interference_fill: "#b0b0b0".to_owned(),
        }
    }
}

/// Renders the schedule as a standalone SVG document.
///
/// One row per core; each task is a box from its release to release+WCET
/// with a grey extension up to its worst-case finish (the interference),
/// labelled with the task name.
///
/// # Example
///
/// ```
/// # use mia_model::{Cycles, Mapping, Platform, Problem, Task, TaskGraph};
/// # use mia_model::{Schedule, TaskTiming};
/// # let mut g = TaskGraph::new();
/// # let _ = g.add_task(Task::builder("a").wcet(Cycles(4)));
/// # let m = Mapping::from_assignment(&g, &[0]).unwrap();
/// # let p = Problem::new(g, m, Platform::new(1, 1)).unwrap();
/// # let s = Schedule::from_timings(vec![TaskTiming {
/// #     release: Cycles(0), wcet: Cycles(4), interference: Cycles(1) }]);
/// let svg = mia_trace::to_svg(&p, &s, &mia_trace::SvgOptions::default());
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("</svg>"));
/// ```
pub fn to_svg(problem: &Problem, schedule: &Schedule, options: &SvgOptions) -> String {
    let cores = problem.mapping().cores().max(1);
    let makespan = schedule.makespan().as_u64().max(1);
    let label_gutter = 46.0;
    let plot_width = options.width as f64 - label_gutter - 10.0;
    let px = |t: u64| label_gutter + plot_width * (t as f64 / makespan as f64);
    let row_h = options.row_height as f64;
    let height = cores as f64 * row_h + 30.0;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" font-family="monospace" font-size="11">"##,
        options.width, height as u32
    );
    // Core rows and labels.
    for core in 0..cores {
        let y = core as f64 * row_h + 4.0;
        let _ = writeln!(
            svg,
            r##"<text x="2" y="{:.1}">PE{}</text>"##,
            y + row_h * 0.6,
            core
        );
        let _ = writeln!(
            svg,
            r##"<line x1="{label_gutter}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#ddd"/>"##,
            y + row_h - 4.0,
            label_gutter + plot_width,
            y + row_h - 4.0
        );
    }
    // Task boxes.
    for (core, order) in problem.mapping().iter() {
        let y = core.index() as f64 * row_h + 6.0;
        let box_h = row_h - 12.0;
        for &task in order {
            let t = schedule.timing(task);
            let x0 = px(t.release.as_u64());
            let x1 = px((t.release + t.wcet).as_u64());
            let x2 = px(t.finish().as_u64());
            let _ = writeln!(
                svg,
                r##"<rect x="{x0:.1}" y="{y:.1}" width="{:.1}" height="{box_h:.1}" fill="{}" stroke="#333"/>"##,
                (x1 - x0).max(1.0),
                options.task_fill
            );
            if x2 > x1 {
                let _ = writeln!(
                    svg,
                    r##"<rect x="{x1:.1}" y="{y:.1}" width="{:.1}" height="{box_h:.1}" fill="{}" stroke="#333"/>"##,
                    x2 - x1,
                    options.interference_fill
                );
            }
            let _ = writeln!(
                svg,
                r##"<text x="{:.1}" y="{:.1}">{}</text>"##,
                x0 + 2.0,
                y + box_h * 0.7,
                escape(problem.graph().task(task).name())
            );
        }
    }
    // Time axis.
    let axis_y = cores as f64 * row_h + 16.0;
    let _ = writeln!(
        svg,
        r##"<text x="{label_gutter}" y="{axis_y:.1}">t=0</text><text x="{:.1}" y="{axis_y:.1}" text-anchor="end">t={}</text>"##,
        label_gutter + plot_width,
        makespan
    );
    svg.push_str("</svg>\n");
    svg
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mia_model::{Cycles, Mapping, Platform, Task, TaskGraph, TaskTiming};

    fn sample() -> (Problem, Schedule) {
        let mut g = TaskGraph::new();
        let _ = g.add_task(Task::builder("alpha").wcet(Cycles(4)));
        let _ = g.add_task(Task::builder("beta<&>").wcet(Cycles(3)));
        let m = Mapping::from_assignment(&g, &[0, 1]).unwrap();
        let p = Problem::new(g, m, Platform::new(2, 2)).unwrap();
        let s = Schedule::from_timings(vec![
            TaskTiming {
                release: Cycles(0),
                wcet: Cycles(4),
                interference: Cycles(2),
            },
            TaskTiming {
                release: Cycles(0),
                wcet: Cycles(3),
                interference: Cycles(0),
            },
        ]);
        (p, s)
    }

    #[test]
    fn produces_wellformed_svg() {
        let (p, s) = sample();
        let svg = to_svg(&p, &s, &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 3); // 2 wcet boxes + 1 grey
        assert!(svg.contains("PE0"));
        assert!(svg.contains("alpha"));
    }

    #[test]
    fn escapes_task_names() {
        let (p, s) = sample();
        let svg = to_svg(&p, &s, &SvgOptions::default());
        assert!(svg.contains("beta&lt;&amp;&gt;"));
        assert!(!svg.contains("beta<&>"));
    }

    #[test]
    fn empty_schedule_renders() {
        let g = TaskGraph::new();
        let m = Mapping::from_assignment(&g, &[]).unwrap();
        let p = Problem::new(g, m, Platform::new(1, 1)).unwrap();
        let s = Schedule::from_timings(vec![]);
        let svg = to_svg(&p, &s, &SvgOptions::default());
        assert!(svg.contains("</svg>"));
    }
}
