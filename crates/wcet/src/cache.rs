//! LRU instruction-cache *must* analysis (abstract interpretation after
//! Ferdinand & Wilhelm), the cache-classification stage a WCET tool like
//! OTAWA runs before path analysis.
//!
//! The analyses of this workspace consume a per-task `(WCET, accesses)`
//! pair; what turns raw instruction counts into those numbers on a real
//! platform is the instruction cache: references classified **always-hit**
//! cost the core pipeline only, every other reference may go to shared
//! memory and must be charged a miss penalty *and* counted as a
//! shared-memory access (which is what the interference analysis prices).
//!
//! # The abstraction
//!
//! A set-associative LRU cache is abstracted per set as an upper bound on
//! each memory block's *age* (0 = most recently used). A block is
//! guaranteed resident iff its bound is below the associativity. The
//! transfer function renews the accessed block's age to 0 and ages
//! same-set blocks that were younger; the join over control-flow merges is
//! set intersection with the *maximal* age (the classic must-join). The
//! fixpoint starts from the empty guarantee (cold cache) at the entry.
//!
//! The analysis is conservative by construction: a first-iteration miss
//! inside a loop keeps a reference *not-classified* even when every later
//! iteration hits (no virtual unrolling / persistence analysis), so hit
//! counts are safe lower bounds and miss counts safe upper bounds.
//!
//! # Example
//!
//! ```
//! use mia_wcet::cache::{classify, CacheConfig, ReferenceCfg, RefClass};
//!
//! # fn main() -> Result<(), mia_wcet::CfgError> {
//! // One block touching lines 0, 1, 0 on a 2-way cache: the second
//! // reference to line 0 is guaranteed to hit.
//! let mut g = ReferenceCfg::new();
//! let b = g.add_block(vec![0, 1, 0]);
//! let c = classify(&g, &CacheConfig::fully_associative(2))?;
//! assert_eq!(c.classes(b), &[RefClass::NotClassified, RefClass::NotClassified,
//!                            RefClass::AlwaysHit]);
//! assert_eq!(c.misses(b), 2);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;

use crate::{BlockId, CfgError};

/// Geometry of a set-associative cache.
///
/// Memory is addressed in cache-line-sized *blocks*; block `b` maps to set
/// `b mod sets`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    sets: usize,
    ways: usize,
}

impl CacheConfig {
    /// A cache with `sets` sets of `ways` lines each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0, "a cache needs at least one set");
        assert!(ways > 0, "a cache needs at least one way");
        CacheConfig { sets, ways }
    }

    /// A direct-mapped cache (`ways = 1`).
    pub fn direct_mapped(sets: usize) -> Self {
        CacheConfig::new(sets, 1)
    }

    /// A fully associative cache (`sets = 1`).
    pub fn fully_associative(ways: usize) -> Self {
        CacheConfig::new(1, ways)
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// The set a memory block maps to.
    pub fn set_of(&self, block: u64) -> usize {
        (block % self.sets as u64) as usize
    }
}

/// Abstract must-cache: per set, an upper bound on each resident block's
/// LRU age. Absence means "not guaranteed resident".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MustCache {
    config: CacheConfig,
    /// `sets[s][block] = max age` (0-based; always `< ways`).
    sets: Vec<BTreeMap<u64, u8>>,
}

impl MustCache {
    /// The empty guarantee (cold cache): nothing is known resident.
    pub fn cold(config: CacheConfig) -> Self {
        MustCache {
            config,
            sets: vec![BTreeMap::new(); config.sets()],
        }
    }

    /// True if `block` is guaranteed resident.
    pub fn contains(&self, block: u64) -> bool {
        self.sets[self.config.set_of(block)].contains_key(&block)
    }

    /// Transfer function for one access: `block` becomes most recently
    /// used; strictly younger same-set blocks age by one and fall out when
    /// they reach the associativity.
    pub fn access(&mut self, block: u64) {
        let ways = self.config.ways() as u8;
        let set = &mut self.sets[self.config.set_of(block)];
        let old_age = set.get(&block).copied().unwrap_or(ways);
        let mut evict = Vec::new();
        for (&b, age) in set.iter_mut() {
            if b != block && *age < old_age {
                *age += 1;
                if *age >= ways {
                    evict.push(b);
                }
            }
        }
        for b in evict {
            set.remove(&b);
        }
        set.insert(block, 0);
    }

    /// Must-join of two states: intersection of the guarantees with the
    /// maximal (most pessimistic) age.
    pub fn join(&self, other: &MustCache) -> MustCache {
        debug_assert_eq!(self.config, other.config);
        let sets = self
            .sets
            .iter()
            .zip(&other.sets)
            .map(|(a, b)| {
                a.iter()
                    .filter_map(|(&blk, &age_a)| b.get(&blk).map(|&age_b| (blk, age_a.max(age_b))))
                    .collect()
            })
            .collect();
        MustCache {
            config: self.config,
            sets,
        }
    }

    /// Number of blocks guaranteed resident.
    pub fn resident(&self) -> usize {
        self.sets.iter().map(BTreeMap::len).sum()
    }
}

/// A concrete LRU cache, used to validate the abstraction (see the
/// property tests: an `AlwaysHit` classification must hit on *every*
/// concrete path).
#[derive(Debug, Clone)]
pub struct ConcreteLru {
    config: CacheConfig,
    /// Per set: resident blocks, most recently used first.
    sets: Vec<Vec<u64>>,
}

impl ConcreteLru {
    /// An empty (cold) cache.
    pub fn cold(config: CacheConfig) -> Self {
        ConcreteLru {
            config,
            sets: vec![Vec::new(); config.sets()],
        }
    }

    /// Performs one access; returns true on a hit.
    pub fn access(&mut self, block: u64) -> bool {
        let ways = self.config.ways();
        let set = &mut self.sets[self.config.set_of(block)];
        if let Some(pos) = set.iter().position(|&b| b == block) {
            set.remove(pos);
            set.insert(0, block);
            true
        } else {
            set.insert(0, block);
            set.truncate(ways);
            false
        }
    }
}

/// Classification of one memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefClass {
    /// Guaranteed to hit the cache on every execution.
    AlwaysHit,
    /// No guarantee: charged as a potential shared-memory access.
    NotClassified,
}

/// A control-flow graph over reference sequences. Unlike [`crate::Cfg`],
/// cycles (loop back edges) are allowed — the fixpoint handles them.
/// Block 0 is the entry.
#[derive(Debug, Clone, Default)]
pub struct ReferenceCfg {
    blocks: Vec<Vec<u64>>,
    succs: Vec<Vec<usize>>,
}

impl ReferenceCfg {
    /// An empty graph.
    pub fn new() -> Self {
        ReferenceCfg::default()
    }

    /// Adds a block with the given sequence of memory-block references.
    pub fn add_block(&mut self, refs: Vec<u64>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(refs);
        self.succs.push(Vec::new());
        id
    }

    /// Adds a control-flow edge (back edges allowed).
    ///
    /// # Errors
    ///
    /// [`CfgError::UnknownBlock`] if either endpoint does not exist.
    pub fn add_edge(&mut self, from: BlockId, to: BlockId) -> Result<(), CfgError> {
        if from.index() >= self.blocks.len() {
            return Err(CfgError::UnknownBlock(from));
        }
        if to.index() >= self.blocks.len() {
            return Err(CfgError::UnknownBlock(to));
        }
        self.succs[from.index()].push(to.index());
        Ok(())
    }

    /// The reference sequence of a block.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn refs(&self, block: BlockId) -> &[u64] {
        &self.blocks[block.index()]
    }

    /// Successor blocks.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn successors(&self, block: BlockId) -> &[usize] {
        &self.succs[block.index()]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the graph has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Per-reference classification of a whole [`ReferenceCfg`].
#[derive(Debug, Clone)]
pub struct Classification {
    classes: Vec<Vec<RefClass>>,
}

impl Classification {
    /// The classes of one block's references, in program order.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn classes(&self, block: BlockId) -> &[RefClass] {
        &self.classes[block.index()]
    }

    /// Guaranteed hits in one block.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn hits(&self, block: BlockId) -> u64 {
        self.classes[block.index()]
            .iter()
            .filter(|c| **c == RefClass::AlwaysHit)
            .count() as u64
    }

    /// Potential misses in one block (the block's shared-memory access
    /// bound).
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn misses(&self, block: BlockId) -> u64 {
        self.classes[block.index()].len() as u64 - self.hits(block)
    }

    /// Weight of one block for [`crate::Cfg::add_block`]: execution cycles
    /// (`fetch_cycles` per reference plus `miss_penalty` per potential
    /// miss) and the shared-memory access bound.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn block_weight(&self, block: BlockId, fetch_cycles: u64, miss_penalty: u64) -> (u64, u64) {
        let refs = self.classes[block.index()].len() as u64;
        let misses = self.misses(block);
        (refs * fetch_cycles + misses * miss_penalty, misses)
    }
}

/// Runs the must-analysis fixpoint and classifies every reference.
///
/// # Errors
///
/// [`CfgError::Empty`] if the graph has no blocks.
pub fn classify(graph: &ReferenceCfg, config: &CacheConfig) -> Result<Classification, CfgError> {
    if graph.is_empty() {
        return Err(CfgError::Empty);
    }
    let n = graph.len();
    // out[i]: abstract state after block i, None while unreached.
    let mut out: Vec<Option<MustCache>> = vec![None; n];
    // in-state of the entry is the cold cache; other blocks join their
    // predecessors' outs. Iterate to the (finite-domain) fixpoint.
    loop {
        let mut changed = false;
        for i in 0..n {
            let mut state = in_state(graph, config, &out, i);
            let Some(ref mut s) = state else { continue };
            for &r in &graph.blocks[i] {
                s.access(r);
            }
            if out[i].as_ref() != state.as_ref() {
                out[i] = state;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Final pass: classify from the stabilised in-states.
    let classes = (0..n)
        .map(|i| {
            let Some(mut s) = in_state(graph, config, &out, i) else {
                // Unreachable block: conservatively all not-classified.
                return vec![RefClass::NotClassified; graph.blocks[i].len()];
            };
            graph.blocks[i]
                .iter()
                .map(|&r| {
                    let class = if s.contains(r) {
                        RefClass::AlwaysHit
                    } else {
                        RefClass::NotClassified
                    };
                    s.access(r);
                    class
                })
                .collect()
        })
        .collect();
    Ok(Classification { classes })
}

/// In-state of block `i`: cold for the entry, the must-join of reached
/// predecessors otherwise (`None` while no predecessor is reached).
fn in_state(
    graph: &ReferenceCfg,
    config: &CacheConfig,
    out: &[Option<MustCache>],
    i: usize,
) -> Option<MustCache> {
    let mut acc: Option<MustCache> = (i == 0).then(|| MustCache::cold(*config));
    for (succs, o) in graph.succs.iter().zip(out) {
        if !succs.contains(&i) {
            continue;
        }
        if let Some(o) = o {
            acc = Some(match acc {
                None => o.clone(),
                Some(a) => a.join(o),
            });
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors_and_mapping() {
        let c = CacheConfig::new(4, 2);
        assert_eq!(c.sets(), 4);
        assert_eq!(c.ways(), 2);
        assert_eq!(c.set_of(6), 2);
        assert_eq!(CacheConfig::direct_mapped(8).ways(), 1);
        assert_eq!(CacheConfig::fully_associative(4).sets(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_rejected() {
        let _ = CacheConfig::new(4, 0);
    }

    #[test]
    fn concrete_lru_behaves() {
        let mut c = ConcreteLru::cold(CacheConfig::fully_associative(2));
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert!(c.access(1)); // hit, renews
        assert!(!c.access(3)); // evicts 2 (LRU)
        assert!(c.access(1));
        assert!(!c.access(2)); // 2 was evicted
    }

    #[test]
    fn must_cache_update_and_eviction() {
        let cfg = CacheConfig::fully_associative(2);
        let mut m = MustCache::cold(cfg);
        m.access(1);
        m.access(2);
        assert!(m.contains(1) && m.contains(2));
        m.access(3); // ages 1 out (age 2 ≥ ways)
        assert!(!m.contains(1));
        assert!(m.contains(2) && m.contains(3));
        assert_eq!(m.resident(), 2);
    }

    #[test]
    fn must_join_is_intersection_with_max_age() {
        let cfg = CacheConfig::fully_associative(2);
        let mut a = MustCache::cold(cfg);
        a.access(1);
        a.access(2); // ages: 2→0, 1→1
        let mut b = MustCache::cold(cfg);
        b.access(2);
        b.access(1); // ages: 1→0, 2→1
        let j = a.join(&b);
        assert!(j.contains(1) && j.contains(2));
        // Both now carry their worst age (1): one more conflicting access
        // evicts both.
        let mut j2 = j.clone();
        j2.access(9);
        assert!(!j2.contains(1) && !j2.contains(2));
        // Intersection drops one-sided guarantees.
        let mut c = MustCache::cold(cfg);
        c.access(7);
        assert_eq!(a.join(&c).resident(), 0);
    }

    #[test]
    fn straight_line_rehit() {
        let mut g = ReferenceCfg::new();
        let b = g.add_block(vec![0, 1, 0, 1]);
        let c = classify(&g, &CacheConfig::fully_associative(2)).unwrap();
        assert_eq!(
            c.classes(b),
            &[
                RefClass::NotClassified,
                RefClass::NotClassified,
                RefClass::AlwaysHit,
                RefClass::AlwaysHit
            ]
        );
        assert_eq!(c.hits(b), 2);
        assert_eq!(c.misses(b), 2);
    }

    #[test]
    fn direct_mapped_conflict_never_hits() {
        // Blocks 0 and 4 collide in a 4-set direct-mapped cache.
        let mut g = ReferenceCfg::new();
        let b = g.add_block(vec![0, 4, 0, 4]);
        let c = classify(&g, &CacheConfig::direct_mapped(4)).unwrap();
        assert_eq!(c.hits(b), 0);
        assert_eq!(c.misses(b), 4);
        // With 2 ways the re-references hit.
        let c = classify(&g, &CacheConfig::new(4, 2)).unwrap();
        assert_eq!(c.hits(b), 2);
    }

    #[test]
    fn diamond_keeps_common_guarantees_only() {
        // entry loads 0; both branches re-touch it but only the left
        // branch loads 1; the merge block's reference to 0 hits, to 1
        // does not.
        let mut g = ReferenceCfg::new();
        let entry = g.add_block(vec![0]);
        let left = g.add_block(vec![1, 0]);
        let right = g.add_block(vec![0]);
        let merge = g.add_block(vec![0, 1]);
        g.add_edge(entry, left).unwrap();
        g.add_edge(entry, right).unwrap();
        g.add_edge(left, merge).unwrap();
        g.add_edge(right, merge).unwrap();
        let c = classify(&g, &CacheConfig::fully_associative(4)).unwrap();
        assert_eq!(
            c.classes(merge),
            &[RefClass::AlwaysHit, RefClass::NotClassified]
        );
    }

    #[test]
    fn loop_body_is_conservatively_cold() {
        // body → body back edge: the join with the cold entry path keeps
        // every first-touch unclassified (no virtual unrolling).
        let mut g = ReferenceCfg::new();
        let body = g.add_block(vec![0, 0]);
        g.add_edge(body, body).unwrap();
        let c = classify(&g, &CacheConfig::fully_associative(2)).unwrap();
        // First ref: cold-path miss. Second ref: hits even on the cold
        // path (same block touched the line one reference earlier).
        assert_eq!(
            c.classes(body),
            &[RefClass::NotClassified, RefClass::AlwaysHit]
        );
    }

    #[test]
    fn loop_with_preheader_guarantees_warm_body() {
        // Preheader touches the line; a 2-block loop re-touches it each
        // iteration and nothing evicts it: always-hit inside the loop.
        let mut g = ReferenceCfg::new();
        let pre = g.add_block(vec![0]);
        let body = g.add_block(vec![0]);
        let latch = g.add_block(vec![]);
        g.add_edge(pre, body).unwrap();
        g.add_edge(body, latch).unwrap();
        g.add_edge(latch, body).unwrap();
        let c = classify(&g, &CacheConfig::fully_associative(2)).unwrap();
        assert_eq!(c.classes(body), &[RefClass::AlwaysHit]);
    }

    #[test]
    fn loop_with_eviction_loses_the_guarantee() {
        // Same shape, but the latch thrashes the set (2-way, 3 distinct
        // conflicting lines): the body's reference cannot be guaranteed.
        let mut g = ReferenceCfg::new();
        let pre = g.add_block(vec![0]);
        let body = g.add_block(vec![0]);
        let latch = g.add_block(vec![2, 4]); // same set as 0 (sets = 2)
        g.add_edge(pre, body).unwrap();
        g.add_edge(body, latch).unwrap();
        g.add_edge(latch, body).unwrap();
        let c = classify(&g, &CacheConfig::new(2, 2)).unwrap();
        assert_eq!(c.classes(body), &[RefClass::NotClassified]);
    }

    #[test]
    fn block_weight_prices_misses() {
        let mut g = ReferenceCfg::new();
        let b = g.add_block(vec![0, 1, 0, 1]);
        let c = classify(&g, &CacheConfig::fully_associative(2)).unwrap();
        // 4 refs × 1 cycle + 2 misses × 10 = 24 cycles, 2 accesses.
        assert_eq!(c.block_weight(b, 1, 10), (24, 2));
    }

    #[test]
    fn empty_graph_is_an_error() {
        assert!(matches!(
            classify(&ReferenceCfg::new(), &CacheConfig::direct_mapped(2)),
            Err(CfgError::Empty)
        ));
    }

    #[test]
    fn unreachable_block_is_all_not_classified() {
        let mut g = ReferenceCfg::new();
        let _entry = g.add_block(vec![0]);
        let orphan = g.add_block(vec![0, 0]);
        let c = classify(&g, &CacheConfig::fully_associative(2)).unwrap();
        assert_eq!(c.hits(orphan), 0);
    }

    #[test]
    fn dangling_edge_is_rejected() {
        let mut g = ReferenceCfg::new();
        let a = g.add_block(vec![]);
        assert!(matches!(
            g.add_edge(a, BlockId(7)),
            Err(CfgError::UnknownBlock(_))
        ));
    }
}
