//! Hierarchical control-flow graphs with bound-weighted longest-path
//! analysis (IPET-lite).
//!
//! A [`Cfg`] is a DAG of basic blocks; loops appear as nested sub-CFGs
//! with static iteration bounds (the structural form a WCET tool derives
//! from a reducible CFG plus flow facts). The analysis is a longest-path
//! dynamic program over the topological order, applied recursively to
//! nested loops — exact for this program class, which is what makes it a
//! sound stand-in for OTAWA's IPET on the workloads this workspace
//! generates.

use mia_model::Cycles;

use crate::Estimate;

/// Identifier of a basic block within one [`Cfg`] level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Errors of CFG construction and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CfgError {
    /// The CFG has no blocks.
    Empty,
    /// An edge references a block that does not exist.
    UnknownBlock(BlockId),
    /// The block graph has a cycle not expressed as a bounded loop.
    Unbounded(BlockId),
}

impl std::fmt::Display for CfgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CfgError::Empty => write!(f, "control-flow graph has no blocks"),
            CfgError::UnknownBlock(b) => write!(f, "unknown block {b}"),
            CfgError::Unbounded(b) => {
                write!(f, "cycle through {b} is not a bounded loop")
            }
        }
    }
}

impl std::error::Error for CfgError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum BlockKind {
    Basic { cycles: u64, accesses: u64 },
    Loop { body: Cfg, bound: u64 },
}

/// A hierarchical control-flow graph. Block 0 is the entry; every block
/// without successors is an exit.
///
/// # Example
///
/// ```
/// use mia_wcet::{Cfg, BlockId};
/// use mia_model::Cycles;
///
/// # fn main() -> Result<(), mia_wcet::CfgError> {
/// // entry → {fast | slow} → exit, with a bounded loop in the slow path.
/// let mut body = Cfg::new();
/// let b = body.add_block(5, 1);
/// let _ = b;
///
/// let mut cfg = Cfg::new();
/// let entry = cfg.add_block(2, 0);
/// let fast = cfg.add_block(3, 0);
/// let slow = cfg.add_loop(body, 10);
/// let exit = cfg.add_block(1, 0);
/// cfg.add_edge(entry, fast)?;
/// cfg.add_edge(entry, slow)?;
/// cfg.add_edge(fast, exit)?;
/// cfg.add_edge(slow, exit)?;
///
/// let e = cfg.estimate()?;
/// assert_eq!(e.wcet, Cycles(2 + 50 + 1));
/// assert_eq!(e.accesses, 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cfg {
    blocks: Vec<BlockKind>,
    succs: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Creates an empty CFG.
    pub fn new() -> Self {
        Cfg::default()
    }

    /// Adds a basic block with the given isolation cycles and accesses.
    pub fn add_block(&mut self, cycles: u64, accesses: u64) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BlockKind::Basic { cycles, accesses });
        self.succs.push(Vec::new());
        id
    }

    /// Adds a loop node executing `body` at most `bound` times.
    pub fn add_loop(&mut self, body: Cfg, bound: u64) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BlockKind::Loop { body, bound });
        self.succs.push(Vec::new());
        id
    }

    /// Adds a control-flow edge.
    ///
    /// # Errors
    ///
    /// [`CfgError::UnknownBlock`] if either endpoint does not exist.
    pub fn add_edge(&mut self, from: BlockId, to: BlockId) -> Result<(), CfgError> {
        if from.index() >= self.blocks.len() {
            return Err(CfgError::UnknownBlock(from));
        }
        if to.index() >= self.blocks.len() {
            return Err(CfgError::UnknownBlock(to));
        }
        self.succs[from.index()].push(to);
        Ok(())
    }

    /// Number of blocks at this level.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the CFG has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Longest-path WCET and access estimate from the entry block.
    ///
    /// # Errors
    ///
    /// * [`CfgError::Empty`] for a CFG without blocks,
    /// * [`CfgError::Unbounded`] if a cycle exists at this level (cycles
    ///   must be modelled as [`Cfg::add_loop`] nodes with bounds).
    pub fn estimate(&self) -> Result<Estimate, CfgError> {
        if self.blocks.is_empty() {
            return Err(CfgError::Empty);
        }
        let n = self.blocks.len();
        // Per-block weights (recursing into loops).
        let mut weight = Vec::with_capacity(n);
        for b in &self.blocks {
            weight.push(match b {
                BlockKind::Basic { cycles, accesses } => Estimate {
                    wcet: Cycles(*cycles),
                    accesses: *accesses,
                },
                BlockKind::Loop { body, bound } => {
                    let inner = body.estimate()?;
                    Estimate {
                        wcet: inner.wcet * *bound,
                        accesses: inner.accesses * *bound,
                    }
                }
            });
        }
        // Topological order via Kahn; cycles are an error at this level.
        let mut indeg = vec![0usize; n];
        for succ in &self.succs {
            for &t in succ {
                indeg[t.index()] += 1;
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(i);
            for &t in &self.succs[i] {
                indeg[t.index()] -= 1;
                if indeg[t.index()] == 0 {
                    ready.push(t.index());
                }
            }
        }
        if order.len() != n {
            let culprit = (0..n)
                .find(|&i| indeg[i] > 0)
                .expect("cycle leaves in-degree");
            return Err(CfgError::Unbounded(BlockId(culprit as u32)));
        }
        // Longest path from the entry (block 0), per dimension.
        const UNREACHED: u64 = u64::MAX;
        let mut best_wcet = vec![UNREACHED; n];
        let mut best_acc = vec![UNREACHED; n];
        best_wcet[0] = weight[0].wcet.as_u64();
        best_acc[0] = weight[0].accesses;
        for &i in &order {
            if best_wcet[i] == UNREACHED {
                continue;
            }
            for &t in &self.succs[i] {
                let j = t.index();
                let cand_w = best_wcet[i] + weight[j].wcet.as_u64();
                if best_wcet[j] == UNREACHED || cand_w > best_wcet[j] {
                    best_wcet[j] = cand_w;
                }
                let cand_a = best_acc[i] + weight[j].accesses;
                if best_acc[j] == UNREACHED || cand_a > best_acc[j] {
                    best_acc[j] = cand_a;
                }
            }
        }
        let wcet = (0..n)
            .filter(|&i| best_wcet[i] != UNREACHED)
            .map(|i| best_wcet[i])
            .max()
            .unwrap_or(0);
        let accesses = (0..n)
            .filter(|&i| best_acc[i] != UNREACHED)
            .map(|i| best_acc[i])
            .max()
            .unwrap_or(0);
        Ok(Estimate {
            wcet: Cycles(wcet),
            accesses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line() {
        let mut c = Cfg::new();
        let a = c.add_block(10, 1);
        let b = c.add_block(20, 2);
        c.add_edge(a, b).unwrap();
        let e = c.estimate().unwrap();
        assert_eq!(e.wcet, Cycles(30));
        assert_eq!(e.accesses, 3);
    }

    #[test]
    fn diamond_takes_the_slow_branch() {
        let mut c = Cfg::new();
        let entry = c.add_block(1, 0);
        let fast = c.add_block(2, 9);
        let slow = c.add_block(50, 1);
        let exit = c.add_block(1, 0);
        c.add_edge(entry, fast).unwrap();
        c.add_edge(entry, slow).unwrap();
        c.add_edge(fast, exit).unwrap();
        c.add_edge(slow, exit).unwrap();
        let e = c.estimate().unwrap();
        assert_eq!(e.wcet, Cycles(52));
        // The access maximum follows its own worst path (via `fast`).
        assert_eq!(e.accesses, 9);
    }

    #[test]
    fn nested_loops_multiply() {
        let mut inner = Cfg::new();
        inner.add_block(3, 1);
        let mut body = Cfg::new();
        let pre = body.add_block(1, 0);
        let lp = body.add_loop(inner, 4);
        body.add_edge(pre, lp).unwrap();
        let mut top = Cfg::new();
        let l = top.add_loop(body, 5);
        let _ = l;
        let e = top.estimate().unwrap();
        assert_eq!(e.wcet, Cycles(5 * (1 + 12)));
        assert_eq!(e.accesses, 20);
    }

    #[test]
    fn unreachable_blocks_are_ignored() {
        let mut c = Cfg::new();
        let a = c.add_block(5, 0);
        let _orphan = c.add_block(1000, 99);
        let _ = a;
        let e = c.estimate().unwrap();
        assert_eq!(e.wcet, Cycles(5));
        assert_eq!(e.accesses, 0);
    }

    #[test]
    fn empty_cfg_is_an_error() {
        assert_eq!(Cfg::new().estimate(), Err(CfgError::Empty));
    }

    #[test]
    fn unannotated_cycle_is_an_error() {
        let mut c = Cfg::new();
        let a = c.add_block(1, 0);
        let b = c.add_block(1, 0);
        c.add_edge(a, b).unwrap();
        c.add_edge(b, a).unwrap();
        assert!(matches!(c.estimate(), Err(CfgError::Unbounded(_))));
    }

    #[test]
    fn dangling_edge_is_an_error() {
        let mut c = Cfg::new();
        let a = c.add_block(1, 0);
        assert_eq!(
            c.add_edge(a, BlockId(9)),
            Err(CfgError::UnknownBlock(BlockId(9)))
        );
    }
}
