//! Static WCET-in-isolation estimation — the workspace's substitute for
//! OTAWA \[2\], the tool the paper's framework uses to obtain "the WCET in
//! isolation and number of memory accesses" of each task (§I).
//!
//! The interference analyses only consume a `(WCET, memory accesses)` pair
//! per task, so any sound estimator with that signature is
//! interchangeable (`DESIGN.md` §5). This crate provides two:
//!
//! * [`Program`] — a structured program tree analysed with the classic
//!   *timing schema* (Shaw): sequences add, conditionals take the maximal
//!   branch, loops multiply by their bound;
//! * [`Cfg`] — a basic-block control-flow graph with annotated loop
//!   bounds, analysed by bound-weighted longest path (an IPET-lite that is
//!   exact for reducible CFGs whose loops are annotated).
//!
//! Both return an [`Estimate`] and can mint ready-to-schedule
//! [`mia_model::Task`]s.
//!
//! The [`cache`] module adds the classification stage that precedes path
//! analysis on cached platforms: an LRU instruction-cache *must* analysis
//! deciding which references are guaranteed hits; the remaining ones are
//! priced as shared-memory accesses via
//! [`cache::Classification::block_weight`] and fed into a [`Cfg`].
//!
//! # Example
//!
//! ```
//! use mia_wcet::{estimate, Program};
//! use mia_model::Cycles;
//!
//! // for i in 0..16 { if hot { 12 cycles, 2 accesses } else { 4 cycles } }
//! let body = Program::if_else(
//!     Program::block(2, 0),
//!     Program::block(12, 2),
//!     Program::block(4, 0),
//! );
//! let program = Program::loop_of(16, body);
//! let e = estimate(&program);
//! assert_eq!(e.wcet, Cycles((2 + 12) * 16));
//! assert_eq!(e.accesses, 2 * 16);
//! ```

pub mod cache;
mod cfg;

pub use cfg::{BlockId, Cfg, CfgError};

use mia_model::{BankDemand, BankId, Cycles, Task};

/// A WCET-in-isolation estimate with the matching access bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Estimate {
    /// Worst-case execution time in isolation.
    pub wcet: Cycles,
    /// Worst-case number of shared-memory accesses. Conservatively the
    /// maximum over paths, taken independently of the WCET path (the two
    /// maxima may come from different paths).
    pub accesses: u64,
}

impl Estimate {
    /// Builds a [`Task`] carrying this estimate; the access demand is
    /// recorded as private demand (folded onto the task's core bank when a
    /// [`Problem`](mia_model::Problem) is assembled).
    pub fn into_task(self, name: impl Into<String>) -> Task {
        Task::builder(name)
            .wcet(self.wcet)
            .private_demand(BankDemand::single(BankId(0), self.accesses))
            .build()
    }
}

/// A structured program fragment (timing-schema analysis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Program {
    /// A straight-line block: `cycles` of computation issuing `accesses`
    /// shared-memory accesses.
    Block {
        /// Execution cycles of the block in isolation.
        cycles: u64,
        /// Shared-memory accesses the block issues.
        accesses: u64,
    },
    /// Sequential composition.
    Seq(Vec<Program>),
    /// Two-way branch; `cond` executes always, then one of the branches.
    IfElse {
        /// Condition evaluation.
        cond: Box<Program>,
        /// Taken branch.
        then_branch: Box<Program>,
        /// Fallthrough branch.
        else_branch: Box<Program>,
    },
    /// A counted loop with a static iteration bound.
    Loop {
        /// Maximal number of iterations.
        bound: u64,
        /// Loop body (includes the per-iteration condition cost).
        body: Box<Program>,
    },
}

impl Program {
    /// A straight-line block.
    pub fn block(cycles: u64, accesses: u64) -> Program {
        Program::Block { cycles, accesses }
    }

    /// Sequential composition of fragments.
    pub fn seq(parts: impl IntoIterator<Item = Program>) -> Program {
        Program::Seq(parts.into_iter().collect())
    }

    /// A conditional.
    pub fn if_else(cond: Program, then_branch: Program, else_branch: Program) -> Program {
        Program::IfElse {
            cond: Box::new(cond),
            then_branch: Box::new(then_branch),
            else_branch: Box::new(else_branch),
        }
    }

    /// A bounded loop.
    pub fn loop_of(bound: u64, body: Program) -> Program {
        Program::Loop {
            bound,
            body: Box::new(body),
        }
    }
}

/// Computes the timing-schema estimate of a structured program.
///
/// WCET: blocks contribute their cycles, sequences add, conditionals add
/// the condition plus the *slower* branch, loops multiply their body by
/// the bound. Accesses follow the same schema with the *more demanding*
/// branch — each maximum is taken independently, which keeps the pair
/// conservative for both dimensions.
pub fn estimate(program: &Program) -> Estimate {
    match program {
        Program::Block { cycles, accesses } => Estimate {
            wcet: Cycles(*cycles),
            accesses: *accesses,
        },
        Program::Seq(parts) => parts.iter().fold(
            Estimate {
                wcet: Cycles::ZERO,
                accesses: 0,
            },
            |acc, p| {
                let e = estimate(p);
                Estimate {
                    wcet: acc.wcet + e.wcet,
                    accesses: acc.accesses + e.accesses,
                }
            },
        ),
        Program::IfElse {
            cond,
            then_branch,
            else_branch,
        } => {
            let c = estimate(cond);
            let t = estimate(then_branch);
            let e = estimate(else_branch);
            Estimate {
                wcet: c.wcet + t.wcet.max(e.wcet),
                accesses: c.accesses + t.accesses.max(e.accesses),
            }
        }
        Program::Loop { bound, body } => {
            let b = estimate(body);
            Estimate {
                wcet: b.wcet * *bound,
                accesses: b.accesses * *bound,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_is_itself() {
        let e = estimate(&Program::block(7, 3));
        assert_eq!(e.wcet, Cycles(7));
        assert_eq!(e.accesses, 3);
    }

    #[test]
    fn sequence_adds() {
        let e = estimate(&Program::seq([Program::block(5, 1), Program::block(10, 2)]));
        assert_eq!(e.wcet, Cycles(15));
        assert_eq!(e.accesses, 3);
    }

    #[test]
    fn branch_maxima_are_independent() {
        // Branch A: slow but access-light; branch B: fast but access-heavy.
        // A sound estimate must cover both dimensions.
        let e = estimate(&Program::if_else(
            Program::block(1, 0),
            Program::block(100, 1),
            Program::block(10, 50),
        ));
        assert_eq!(e.wcet, Cycles(101));
        assert_eq!(e.accesses, 50);
    }

    #[test]
    fn loops_multiply() {
        let e = estimate(&Program::loop_of(8, Program::block(3, 2)));
        assert_eq!(e.wcet, Cycles(24));
        assert_eq!(e.accesses, 16);
    }

    #[test]
    fn nested_loops_compose() {
        let inner = Program::loop_of(4, Program::block(2, 1));
        let outer = Program::loop_of(3, Program::seq([Program::block(1, 0), inner]));
        let e = estimate(&outer);
        assert_eq!(e.wcet, Cycles(3 * (1 + 8)));
        assert_eq!(e.accesses, 12);
    }

    #[test]
    fn zero_bound_loop_contributes_nothing() {
        let e = estimate(&Program::loop_of(0, Program::block(100, 100)));
        assert_eq!(e.wcet, Cycles::ZERO);
        assert_eq!(e.accesses, 0);
    }

    #[test]
    fn empty_sequence_is_zero() {
        let e = estimate(&Program::seq([]));
        assert_eq!(e.wcet, Cycles::ZERO);
        assert_eq!(e.accesses, 0);
    }

    #[test]
    fn estimate_mints_a_task() {
        let t = estimate(&Program::block(600, 250)).into_task("kernel");
        assert_eq!(t.name(), "kernel");
        assert_eq!(t.wcet(), Cycles(600));
        assert_eq!(t.private_demand().total(), 250);
    }
}
