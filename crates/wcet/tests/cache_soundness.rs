//! Soundness of the must-analysis: a reference classified *always-hit*
//! must hit the concrete LRU cache on **every** execution path — which is
//! exactly what makes the derived `(WCET, accesses)` pairs safe inputs for
//! the interference analyses.

use mia_wcet::cache::{classify, CacheConfig, ConcreteLru, RefClass, ReferenceCfg};
use mia_wcet::BlockId;
use proptest::prelude::*;

/// A random CFG: `n` blocks, each with up to 4 references over a small
/// address pool (small pools force conflicts), and random forward *and*
/// backward edges (loops).
fn arb_cfg() -> impl Strategy<Value = ReferenceCfg> {
    let block = proptest::collection::vec(0u64..8, 0..4);
    (proptest::collection::vec(block, 1..8), any::<u64>()).prop_map(|(blocks, seed)| {
        let mut g = ReferenceCfg::new();
        let ids: Vec<BlockId> = blocks.into_iter().map(|b| g.add_block(b)).collect();
        // Deterministic pseudo-random edges from the seed: a chain to keep
        // everything reachable, plus extra edges (possibly backward).
        let n = ids.len();
        for w in 0..n.saturating_sub(1) {
            g.add_edge(ids[w], ids[w + 1]).unwrap();
        }
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..n {
            let from = ids[next() % n];
            let to = ids[next() % n];
            g.add_edge(from, to).unwrap();
        }
        g
    })
}

fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (1usize..=4, 1usize..=4).prop_map(|(sets, ways)| CacheConfig::new(sets, ways))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random walks from the entry never observe a concrete miss where
    /// the analysis promised a hit.
    #[test]
    fn always_hit_never_misses(
        g in arb_cfg(),
        config in arb_config(),
        walk_seed in any::<u64>(),
    ) {
        let classes = classify(&g, &config).unwrap();
        let mut cache = ConcreteLru::cold(config);
        let mut state = walk_seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut at = BlockId(0);
        for _ in 0..64 {
            for (i, &r) in g.refs(at).iter().enumerate() {
                let hit = cache.access(r);
                if classes.classes(at)[i] == RefClass::AlwaysHit {
                    prop_assert!(
                        hit,
                        "block {at} ref {i} (line {r}) classified always-hit but missed"
                    );
                }
            }
            let succs = g.successors(at);
            if succs.is_empty() {
                break;
            }
            at = BlockId(succs[next() % succs.len()] as u32);
        }
    }

    /// Growing associativity never loses guaranteed hits (more ways = a
    /// strictly more retentive cache).
    #[test]
    fn more_ways_never_hurt(g in arb_cfg(), sets in 1usize..=4, ways in 1usize..=3) {
        let small = classify(&g, &CacheConfig::new(sets, ways)).unwrap();
        let large = classify(&g, &CacheConfig::new(sets, ways + 1)).unwrap();
        for b in 0..g.len() {
            let b = BlockId(b as u32);
            prop_assert!(large.hits(b) >= small.hits(b));
        }
    }

    /// Classification totals are consistent: hits + misses = references.
    #[test]
    fn totals_add_up(g in arb_cfg(), config in arb_config()) {
        let c = classify(&g, &config).unwrap();
        for b in 0..g.len() {
            let b = BlockId(b as u32);
            prop_assert_eq!(c.hits(b) + c.misses(b), g.refs(b).len() as u64);
        }
    }
}
