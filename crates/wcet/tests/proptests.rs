//! Property-based tests of the WCET estimators: schema algebra and
//! consistency between the structured and CFG analyses.

use mia_model::Cycles;
use mia_wcet::{estimate, Cfg, Program};
use proptest::prelude::*;

/// Strategy: a random structured program of bounded depth.
fn arb_program() -> impl Strategy<Value = Program> {
    let leaf = (0u64..100, 0u64..20).prop_map(|(c, a)| Program::block(c, a));
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Program::seq),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| Program::if_else(c, t, e)),
            (0u64..8, inner).prop_map(|(b, body)| Program::loop_of(b, body)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequencing is additive in both dimensions.
    #[test]
    fn seq_is_additive(a in arb_program(), b in arb_program()) {
        let ea = estimate(&a);
        let eb = estimate(&b);
        let e = estimate(&Program::seq([a, b]));
        prop_assert_eq!(e.wcet, ea.wcet + eb.wcet);
        prop_assert_eq!(e.accesses, ea.accesses + eb.accesses);
    }

    /// A conditional is bounded by the condition plus each branch's
    /// estimate, and reaches the max per dimension.
    #[test]
    fn if_else_takes_maxima(c in arb_program(), t in arb_program(), e in arb_program()) {
        let (ec, et, ee) = (estimate(&c), estimate(&t), estimate(&e));
        let est = estimate(&Program::if_else(c, t, e));
        prop_assert_eq!(est.wcet, ec.wcet + et.wcet.max(ee.wcet));
        prop_assert_eq!(est.accesses, ec.accesses + et.accesses.max(ee.accesses));
    }

    /// Loops scale linearly with their bound.
    #[test]
    fn loop_scales_linearly(body in arb_program(), k in 0u64..12) {
        let eb = estimate(&body);
        let el = estimate(&Program::loop_of(k, body));
        prop_assert_eq!(el.wcet, eb.wcet * k);
        prop_assert_eq!(el.accesses, eb.accesses * k);
    }

    /// The estimate dominates any concrete branch resolution: resolving
    /// every `if` to one side can only shrink both dimensions.
    #[test]
    fn estimate_dominates_resolved_programs(p in arb_program(), take_then in any::<bool>()) {
        fn resolve(p: &Program, take_then: bool) -> Program {
            match p {
                Program::Block { cycles, accesses } => Program::block(*cycles, *accesses),
                Program::Seq(v) => Program::seq(v.iter().map(|x| resolve(x, take_then))),
                Program::IfElse { cond, then_branch, else_branch } => Program::seq([
                    resolve(cond, take_then),
                    if take_then {
                        resolve(then_branch, take_then)
                    } else {
                        resolve(else_branch, take_then)
                    },
                ]),
                Program::Loop { bound, body } => {
                    Program::loop_of(*bound, resolve(body, take_then))
                }
            }
        }
        let full = estimate(&p);
        let resolved = estimate(&resolve(&p, take_then));
        prop_assert!(resolved.wcet <= full.wcet);
        prop_assert!(resolved.accesses <= full.accesses);
    }

    /// A linear chain CFG agrees exactly with the equivalent `Program`.
    #[test]
    fn cfg_chain_matches_schema(blocks in proptest::collection::vec((0u64..100, 0u64..20), 1..8)) {
        let mut cfg = Cfg::new();
        let ids: Vec<_> = blocks.iter().map(|&(c, a)| cfg.add_block(c, a)).collect();
        for w in ids.windows(2) {
            cfg.add_edge(w[0], w[1]).unwrap();
        }
        let program = Program::seq(blocks.iter().map(|&(c, a)| Program::block(c, a)));
        let e_cfg = cfg.estimate().unwrap();
        let e_prog = estimate(&program);
        prop_assert_eq!(e_cfg.wcet, e_prog.wcet);
        prop_assert_eq!(e_cfg.accesses, e_prog.accesses);
    }

    /// Diamond CFGs agree with the if/else schema (common entry cost).
    #[test]
    fn cfg_diamond_matches_schema(
        entry in (0u64..50, 0u64..10),
        fast in (0u64..50, 0u64..10),
        slow in (0u64..50, 0u64..10),
        exit in (0u64..50, 0u64..10),
    ) {
        let mut cfg = Cfg::new();
        let e0 = cfg.add_block(entry.0, entry.1);
        let f = cfg.add_block(fast.0, fast.1);
        let s = cfg.add_block(slow.0, slow.1);
        let x = cfg.add_block(exit.0, exit.1);
        cfg.add_edge(e0, f).unwrap();
        cfg.add_edge(e0, s).unwrap();
        cfg.add_edge(f, x).unwrap();
        cfg.add_edge(s, x).unwrap();
        let program = Program::seq([
            Program::block(entry.0, entry.1),
            Program::if_else(
                Program::block(0, 0),
                Program::block(fast.0, fast.1),
                Program::block(slow.0, slow.1),
            ),
            Program::block(exit.0, exit.1),
        ]);
        let e_cfg = cfg.estimate().unwrap();
        let e_prog = estimate(&program);
        prop_assert_eq!(e_cfg.wcet, e_prog.wcet);
        prop_assert_eq!(e_cfg.accesses, e_prog.accesses);
    }

    /// Estimates mint tasks whose WCET/demand match.
    #[test]
    fn task_minting_preserves_estimates(p in arb_program()) {
        let e = estimate(&p);
        let t = e.into_task("k");
        prop_assert_eq!(t.wcet(), e.wcet);
        prop_assert_eq!(t.private_demand().total(), e.accesses);
        prop_assert_eq!(t.min_release(), Cycles::ZERO);
    }
}
