//! An avionics-style case study (the application class the paper's
//! introduction motivates: "avionics or autonomous vehicles applications
//! … heavily coupled to time").
//!
//! A longitudinal flight controller (ROSACE-like) is modelled as one
//! hyper-period of a two-rate harmonic task set turned into a DAG. The
//! per-task WCETs are derived with the `mia-wcet` structural analyser
//! (the OTAWA substitute), and the schedule is analysed under several bus
//! arbiters to compare their pessimism.
//!
//! Run with: `cargo run --example avionics_case_study`

use mia::prelude::*;
use mia::trace;
use mia::wcet::{estimate, Program};

/// Builds a control-filter kernel: an initialisation block followed by a
/// bounded loop over `taps` filter taps with a conditional saturation.
fn filter_kernel(taps: u64, saturating: bool) -> Program {
    let body = if saturating {
        Program::if_else(
            Program::block(2, 0),
            Program::block(9, 2),
            Program::block(6, 1),
        )
    } else {
        Program::block(8, 2)
    };
    Program::seq([Program::block(20, 4), Program::loop_of(taps, body)])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One 10 ms hyper-period: the 200 Hz inner loop runs twice (phases A
    // and B), the 100 Hz outer loop once.
    let kernels: Vec<(&str, Program, u64)> = vec![
        // (name, body, minimal release within the hyper-period)
        ("gyro_acq_a", filter_kernel(16, false), 0),
        ("elevator_a", filter_kernel(24, true), 0),
        ("engine_a", filter_kernel(24, true), 0),
        ("gyro_acq_b", filter_kernel(16, false), 500),
        ("elevator_b", filter_kernel(24, true), 500),
        ("engine_b", filter_kernel(24, true), 500),
        ("altitude_hold", filter_kernel(48, true), 0),
        ("vz_control", filter_kernel(40, true), 0),
        ("va_control", filter_kernel(40, true), 0),
        ("flight_mgmt", filter_kernel(64, false), 0),
    ];

    let mut g = TaskGraph::new();
    let ids: Vec<TaskId> = kernels
        .iter()
        .map(|(name, program, rel)| {
            let e = estimate(program);
            let mut task = e.into_task(*name);
            task.set_min_release(Cycles(*rel));
            println!(
                "{:<14} wcet = {:>4}  accesses = {:>3}",
                name,
                e.wcet.as_u64(),
                e.accesses
            );
            g.add_task(task)
        })
        .collect();

    // Data flow within the hyper-period (words = control vector sizes).
    let by_name = |n: &str| {
        ids[kernels
            .iter()
            .position(|(k, _, _)| *k == n)
            .unwrap()
            .to_owned()]
    };
    for (src, dst, words) in [
        ("gyro_acq_a", "elevator_a", 6),
        ("gyro_acq_a", "engine_a", 6),
        ("gyro_acq_b", "elevator_b", 6),
        ("gyro_acq_b", "engine_b", 6),
        ("gyro_acq_a", "altitude_hold", 4),
        ("altitude_hold", "vz_control", 8),
        ("vz_control", "elevator_b", 4),
        ("va_control", "engine_b", 4),
        ("flight_mgmt", "altitude_hold", 2),
        ("flight_mgmt", "va_control", 2),
    ] {
        g.add_edge(by_name(src), by_name(dst), words)?;
    }

    // Map onto 4 cores of the cluster with the greedy load balancer.
    let mapping = mia::mapping_heuristics::load_balanced(&g, 4)?;
    let problem = Problem::new(g, mapping, Platform::new(4, 4))?;

    // Compare arbitration policies: same platform, different IBUS.
    println!("\narbiter pessimism comparison (same task set):");
    println!(
        "{:<16} {:>10} {:>14}",
        "arbiter", "makespan", "interference"
    );
    let arbiters: Vec<Box<dyn Arbiter>> = vec![
        Box::new(RoundRobin::new()),
        Box::new(MppaTree::new(4, 2)),
        Box::new(Tdm::new()),
        Box::new(Fifo::new()),
        Box::new(FixedPriority::by_core_id()),
    ];
    let mut rr_makespan = Cycles::ZERO;
    for arbiter in &arbiters {
        let s = analyze(&problem, arbiter.as_ref())?;
        if arbiter.name() == "round-robin" {
            rr_makespan = s.makespan();
            println!("\n{}", trace::gantt(&problem, &s));
        }
        println!(
            "{:<16} {:>10} {:>14}",
            arbiter.name(),
            s.makespan().as_u64(),
            s.total_interference().as_u64()
        );
    }

    // A 10 ms period at 600 MHz ≈ 6 M cycles: this workload is far inside
    // its deadline; check the analysis agrees via the deadline option.
    let opts = AnalysisOptions::new().deadline(rr_makespan);
    assert!(mia::analysis::analyze_with(
        &problem,
        &RoundRobin::new(),
        &opts,
        &mut mia::analysis::NoopObserver
    )
    .is_ok());
    println!("\nschedulable within its makespan bound — deadline check passed.");
    Ok(())
}
