//! From instructions to interference: the full OTAWA-substitute pipeline.
//!
//! The paper's framework obtains each task's WCET in isolation and memory
//! access count from a static analyser (§I). This example walks that
//! toolchain for a tiny DSP kernel:
//!
//! 1. classify its instruction fetches with the LRU must-cache analysis
//!    ([`mia::wcet::cache`]) — guaranteed hits stay on-core, the rest are
//!    potential shared-memory fetches,
//! 2. price the classified blocks into a control-flow graph and run the
//!    longest-path WCET analysis ([`mia::wcet::Cfg`]),
//! 3. mint tasks from the estimates and run the paper's interference
//!    analysis on a two-core deployment.
//!
//! Run with: `cargo run --example cache_wcet`

use mia::prelude::*;
use mia::wcet::cache::{classify, CacheConfig, ReferenceCfg};
use mia::wcet::Cfg;

/// Builds the reference CFG of a filter kernel: a preheader, a hot loop
/// body re-touching its own code lines, and an epilogue.
fn kernel_refs() -> (ReferenceCfg, [mia::wcet::BlockId; 3]) {
    let mut g = ReferenceCfg::new();
    // Instruction lines 0–3: loop code; 8, 9: epilogue (set-conflicting
    // with 0 and 1 on a 8-set cache only if ≥ 8 apart — they are).
    let pre = g.add_block(vec![0, 1, 2, 3]);
    let body = g.add_block(vec![0, 1, 2, 3]);
    let epi = g.add_block(vec![8, 9]);
    g.add_edge(pre, body).unwrap();
    g.add_edge(body, body).unwrap(); // the loop back edge
    g.add_edge(body, epi).unwrap();
    (g, [pre, body, epi])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── 1. Cache classification ─────────────────────────────────────────
    let (refs, [pre, body, epi]) = kernel_refs();
    let cache = CacheConfig::new(8, 2); // 8 sets, 2 ways
    let classes = classify(&refs, &cache)?;
    println!("== LRU must-cache classification (8 sets × 2 ways) ==\n");
    for (name, b) in [("preheader", pre), ("loop body", body), ("epilogue", epi)] {
        println!(
            "{name:<10} {} refs: {} always-hit, {} potential miss(es)",
            classes.classes(b).len(),
            classes.hits(b),
            classes.misses(b),
        );
    }
    // The warm loop body is fully cached: every line was fetched by the
    // preheader and nothing evicts it.
    assert_eq!(classes.misses(body), 0);
    assert_eq!(classes.misses(pre), 4);

    // ── 2. WCET + access count via longest path ────────────────────────
    // 1 cycle per fetch, 20 cycles per miss, 64 loop iterations.
    let (pre_cy, pre_acc) = classes.block_weight(pre, 1, 20);
    let (body_cy, body_acc) = classes.block_weight(body, 1, 20);
    let (epi_cy, epi_acc) = classes.block_weight(epi, 1, 20);
    let mut loop_body = Cfg::new();
    loop_body.add_block(body_cy + 6, body_acc + 2); // +6 cy ALU, +2 data accesses
    let mut cfg = Cfg::new();
    let b_pre = cfg.add_block(pre_cy, pre_acc);
    let b_loop = cfg.add_loop(loop_body, 64);
    let b_epi = cfg.add_block(epi_cy, epi_acc);
    cfg.add_edge(b_pre, b_loop)?;
    cfg.add_edge(b_loop, b_epi)?;
    let estimate = cfg.estimate()?;
    println!(
        "\nkernel estimate: WCET = {} cycles, ≤ {} shared-memory accesses",
        estimate.wcet, estimate.accesses
    );

    // ── 3. Two kernels contending on two cores ─────────────────────────
    let mut g = TaskGraph::new();
    let k0 = g.add_task(
        Task::builder("kernel0")
            .wcet(estimate.wcet)
            .private_demand(BankDemand::single(BankId(0), estimate.accesses)),
    );
    let k1 = g.add_task(
        Task::builder("kernel1")
            .wcet(estimate.wcet)
            .private_demand(BankDemand::single(BankId(0), estimate.accesses)),
    );
    let mapping = Mapping::from_assignment(&g, &[0, 1])?;
    let problem = Problem::with_policy(g, mapping, Platform::new(2, 2), BankPolicy::SingleBank)?;
    let schedule = analyze(&problem, &RoundRobin::new())?;
    println!("\n== Interference analysis of two concurrent kernels ==\n");
    for (task, name) in [(k0, "kernel0"), (k1, "kernel1")] {
        let t = schedule.timing(task);
        println!(
            "{name}: release {} + wcet {} + interference {} → finish {}",
            t.release,
            t.wcet,
            t.interference,
            t.finish()
        );
    }
    // Each kernel can be stalled once per opposing access.
    assert_eq!(schedule.timing(k0).interference, Cycles(estimate.accesses));
    println!(
        "\nmakespan with interference: {} (isolation WCET was {})",
        schedule.makespan(),
        estimate.wcet
    );
    Ok(())
}
