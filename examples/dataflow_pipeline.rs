//! End-to-end run of the paper's framework (§I) on a dataflow application:
//!
//! 1. a synchronous-dataflow video pipeline written in the `mia-sdf` text
//!    format is compiled into a DAG of tasks (repetition vector + HSDF
//!    expansion),
//! 2. per-firing WCETs come from the dataflow description (in a real
//!    flow, from `mia-wcet` / OTAWA),
//! 3. the DAG is mapped and ordered with ETF list scheduling,
//! 4. release dates and WCRTs are computed by the incremental analysis,
//! 5. the schedule is validated by cycle-accurate simulation.
//!
//! Run with: `cargo run --example dataflow_pipeline`

use mia::prelude::*;
use mia::sim::{simulate, AccessPattern, SimConfig};
use mia::{mapping_heuristics, sdf, trace};

const PIPELINE: &str = "
# A 4-stage video pipeline: capture → demosaic (×4 parallel firings)
#   → sharpen (×2) → encode.
actor capture  wcet=120 accesses=16
actor demosaic wcet=90  accesses=8
actor sharpen  wcet=150 accesses=12
actor encode   wcet=300 accesses=24
channel capture  -> demosaic produce=4 consume=1 words=4
channel demosaic -> sharpen  produce=1 consume=2 words=4
channel sharpen  -> encode   produce=1 consume=2 words=2
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse and expand the dataflow program.
    let graph = sdf::parse(PIPELINE)?;
    let q = graph.repetition_vector()?;
    println!("repetition vector:");
    for (actor, &count) in graph.actors().iter().zip(&q) {
        println!("  {:<9} fires {count}×", actor.name);
    }
    let expansion = graph.expand(1)?;
    println!(
        "\nexpanded DAG: {} tasks, {} edges",
        expansion.graph.len(),
        expansion.graph.edge_count()
    );

    // Scratchpad budget: PASS buffer bounds per channel.
    let buffers = graph.buffer_bounds()?;
    println!("\nchannel buffer bounds (for static allocation):");
    for (i, ch) in graph.channels().iter().enumerate() {
        println!(
            "  {} -> {}: {} tokens = {} words",
            graph.actors()[ch.src.index()].name,
            graph.actors()[ch.dst.index()].name,
            buffers.tokens(i),
            buffers.words(i)
        );
    }
    println!("  total scratchpad: {} words", buffers.total_words());

    // 2–3. Map and order the firings on a 4-core cluster slice.
    let mapping = mapping_heuristics::earliest_finish(&expansion.graph, 4)?;
    println!(
        "load imbalance after ETF mapping: {:.2}",
        mapping_heuristics::load_imbalance(&expansion.graph, &mapping)
    );
    let problem = Problem::new(expansion.graph, mapping, Platform::new(4, 4))?;

    // 4. Interference analysis on the MPPA-style hierarchical arbiter.
    let schedule = analyze(&problem, &RoundRobin::new())?;
    println!(
        "\nanalysed schedule: makespan = {}, total interference = {}",
        schedule.makespan(),
        schedule.total_interference()
    );
    println!("\n{}", trace::gantt(&problem, &schedule));

    // 5. Validate by simulation under several access patterns.
    for pattern in [
        AccessPattern::BurstStart,
        AccessPattern::Uniform,
        AccessPattern::Random,
    ] {
        let run = simulate(&problem, &schedule, &SimConfig::new(pattern))?;
        assert!(run.first_violation(&schedule).is_none());
        println!(
            "simulated {pattern:?}: makespan {} (analysis bound {}), stalls {}",
            run.makespan(),
            schedule.makespan(),
            run.total_stall()
        );
    }
    println!("\nall simulated executions stay within the analysed bounds.");
    Ok(())
}
