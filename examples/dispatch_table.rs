//! Deployment: from analysed schedule to executive dispatch tables.
//!
//! The framework's last stage (the paper's reference [5] is the MPPA code
//! generator) turns the analysed release dates into per-core
//! time-triggered dispatch tables. This example analyses a small
//! control application, prints the per-core tables with their idle
//! windows, and emits the C source an embedded executive would link.
//!
//! Run with: `cargo run --example dispatch_table`

use mia::exec::DispatchTable;
use mia::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A control loop: sense on two cores, fuse, decide, actuate.
    let mut g = TaskGraph::new();
    let s0 = g.add_task(Task::builder("sense0").wcet(Cycles(40)));
    let s1 = g.add_task(Task::builder("sense1").wcet(Cycles(40)));
    let fuse = g.add_task(Task::builder("fuse").wcet(Cycles(60)));
    let decide = g.add_task(Task::builder("decide").wcet(Cycles(80)));
    let act = g.add_task(Task::builder("actuate").wcet(Cycles(30)));
    g.add_edge(s0, fuse, 16)?;
    g.add_edge(s1, fuse, 16)?;
    g.add_edge(fuse, decide, 8)?;
    g.add_edge(decide, act, 4)?;

    let mapping = Mapping::from_assignment(&g, &[0, 1, 0, 1, 0])?;
    let problem = Problem::new(g, mapping, Platform::new(2, 2))?;
    let schedule = analyze(&problem, &RoundRobin::new())?;
    let table = DispatchTable::from_schedule(&problem, &schedule)?;

    println!(
        "== Dispatch tables (horizon {} cycles) ==\n",
        table.makespan()
    );
    for core in 0..table.cores() {
        let core = CoreId::from_index(core);
        println!(
            "core {core} (utilization {:.1}%):",
            table.utilization(core) * 100.0
        );
        for e in table.entries(core) {
            println!(
                "  release {:>4}  deadline {:>4}  {:<8} (wcet {}, interference {})",
                e.release.as_u64(),
                e.deadline.as_u64(),
                e.name,
                e.wcet.as_u64(),
                e.interference.as_u64()
            );
        }
        for (from, to) in table.idle_windows(core) {
            println!(
                "  idle    {:>4}  …        {:>4}",
                from.as_u64(),
                to.as_u64()
            );
        }
        println!();
    }

    println!("== Generated C table ==\n");
    println!("{}", table.to_c_source("ctrl"));

    // Round trip through JSON for tooling.
    let json = table.to_json();
    assert_eq!(DispatchTable::from_json(&json)?, table);
    println!("JSON round trip OK ({} bytes).", json.len());
    Ok(())
}
