//! The cursor mechanism of the paper's Figure 2.
//!
//! Eleven tasks on four cores; the incremental analysis is traced and the
//! closed / alive / future partition is printed at every cursor position,
//! reproducing the figure's snapshot (solid boxes = alive, dotted left =
//! closed, dotted right = future).
//!
//! Run with: `cargo run --example figure2_cursor`

use mia::analysis::analyze_with;
use mia::prelude::*;
use mia::trace::CursorTrace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // PE0: n0 n1 n2 | PE1: n3 n4 | PE2: n5 n6 n7 | PE3: n8 n9 n10,
    // with WCETs chosen so that around t = 10 the alive set is
    // {n0, n4, n7, n9} — the state drawn in Figure 2.
    let mut g = TaskGraph::new();
    let wcets = [30u64, 5, 5, 5, 25, 4, 6, 20, 3, 27, 5];
    let ids: Vec<TaskId> = wcets
        .iter()
        .enumerate()
        .map(|(i, &w)| g.add_task(Task::builder(format!("n{i}")).wcet(Cycles(w))))
        .collect();
    // Pure precedence edges (0 words: Figure 2 abstracts the demands away).
    for (s, d) in [(3usize, 4usize), (5, 6), (6, 7), (8, 9), (9, 10)] {
        g.add_edge(ids[s], ids[d], 0)?;
    }
    let mapping = Mapping::from_assignment(&g, &[0, 0, 0, 1, 1, 2, 2, 2, 3, 3, 3])?;
    let problem = Problem::new(g, mapping, Platform::new(4, 4))?;

    let mut trace = CursorTrace::new(problem.len());
    let report = analyze_with(
        &problem,
        &RoundRobin::new(),
        &AnalysisOptions::new(),
        &mut trace,
    )?;

    println!("cursor timeline (paper Figure 2 shows the t = 10 snapshot):\n");
    print!("{}", trace.render_timeline());

    let snap = trace.snapshot(Cycles(10));
    println!("\nsnapshot at t = 10:");
    println!("  closed: {:?}", names(&snap.closed));
    println!("  alive : {:?}", names(&snap.alive));
    println!("  future: {:?}", names(&snap.future));

    assert_eq!(names(&snap.alive), vec!["n0", "n4", "n7", "n9"]);
    assert_eq!(names(&snap.closed), vec!["n3", "n5", "n6", "n8"]);
    assert_eq!(names(&snap.future), vec!["n1", "n2", "n10"]);
    println!(
        "\nmax alive tasks during the sweep: {} (bounded by the {} cores)",
        report.stats.max_alive,
        problem.platform().cores().min(4)
    );
    Ok(())
}

fn names(ids: &[TaskId]) -> Vec<String> {
    ids.iter().map(|t| format!("n{}", t.0)).collect()
}
