//! Sporadic-task response-time analysis (the MRTA framework, the paper's
//! reference [1]) on an automotive-flavoured task set.
//!
//! A brake-by-wire controller and its supporting tasks run partitioned on
//! two cores that share the memory through round-robin arbitration. The
//! example analyses the set, shows the CPU/memory decomposition of every
//! bound, validates the bounds against the cycle-stepped sporadic
//! simulator, and demonstrates how bandwidth regulation trades throughput
//! for isolation.
//!
//! Run with: `cargo run --example mrta_sporadic`

use mia::arbiters::{Regulated, RoundRobin};
use mia::mrta::{analyze, simulate_sporadic, SporadicSimConfig, SporadicSystem, SporadicTask};
use mia::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Periods/deadlines in cycles at 400 MHz-ish scale; demands hit the
    // sensor bank (b0) and the actuator bank (b1).
    let tasks = vec![
        SporadicTask::builder("brake-control")
            .wcet(Cycles(60))
            .period(Cycles(500))
            .deadline(Cycles(200))
            .demand(BankDemand::single(BankId(0), 16))
            .build()?,
        SporadicTask::builder("wheel-speed")
            .wcet(Cycles(40))
            .period(Cycles(250))
            .demand(BankDemand::single(BankId(0), 12))
            .build()?,
        SporadicTask::builder("telemetry")
            .wcet(Cycles(120))
            .period(Cycles(2_000))
            .demand(BankDemand::single(BankId(1), 48))
            .build()?,
        SporadicTask::builder("diagnostics")
            .wcet(Cycles(200))
            .period(Cycles(4_000))
            .demand({
                let mut d = BankDemand::new();
                d.add(BankId(0), 20);
                d.add(BankId(1), 30);
                d
            })
            .build()?,
    ];
    // Control tasks on core 0, best-effort tasks on core 1.
    let system = SporadicSystem::new(tasks, &[0, 0, 1, 1], Platform::new(2, 2))?;

    println!("== Deadline-monotonic partitioned RTA with memory interference ==\n");
    let rr = RoundRobin::new();
    let report = analyze(&system, &rr);
    println!(
        "{:<14} {:>6} {:>7} {:>9} {:>8} {:>8}  verdict",
        "task", "wcet", "period", "deadline", "cpu", "memory"
    );
    for (i, task) in system.tasks().iter().enumerate() {
        let v = report.verdict(i);
        println!(
            "{:<14} {:>6} {:>7} {:>9} {:>8} {:>8}  R = {} ({})",
            task.name(),
            task.wcet().as_u64(),
            task.period().as_u64(),
            task.deadline().as_u64(),
            v.cpu_interference.as_u64(),
            v.memory_interference.as_u64(),
            v.response,
            if v.schedulable { "ok" } else { "MISS" },
        );
    }
    assert!(report.schedulable());

    // Validate the bounds with the synchronous-release simulator.
    let sim = simulate_sporadic(&system, &SporadicSimConfig::new().horizon(Cycles(4_000)));
    println!("\n== Simulated worst observed responses (one hyperperiod) ==\n");
    for (i, task) in system.tasks().iter().enumerate() {
        let observed = sim.max_response(i).expect("at least one job completed");
        println!(
            "{:<14} observed {:>5}  ≤  bound {:>5}",
            task.name(),
            observed.as_u64(),
            report.response(i).as_u64()
        );
        assert!(observed <= report.response(i));
    }
    assert!(sim.all_deadlines_met());

    // Bandwidth regulation: throttle everyone to 4 accesses per 64 slots
    // and watch the memory interference on the control core shrink.
    let regulated = analyze(&system, &Regulated::new(4, 64));
    println!("\n== With MemGuard-style regulation (4 accesses / 64 slots) ==\n");
    for (i, task) in system.tasks().iter().enumerate() {
        println!(
            "{:<14} memory interference {:>4} → {:>4}",
            task.name(),
            report.verdict(i).memory_interference.as_u64(),
            regulated.verdict(i).memory_interference.as_u64(),
        );
        assert!(regulated.verdict(i).memory_interference <= report.verdict(i).memory_interference);
    }
    println!("\nAll bounds validated.");
    Ok(())
}
