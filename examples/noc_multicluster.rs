//! Multi-cluster deployment: composing the NoC latency bounds with the
//! per-cluster interference analysis.
//!
//! The DATE 2020 paper schedules one MPPA-256 compute cluster. A chip-
//! scale application spans several clusters connected by the 2D-torus
//! NoC: the producer cluster computes a frame, ships it over the NoC, and
//! the consumer cluster's entry tasks must not be released before the
//! data can have arrived in the worst case. This example:
//!
//! 1. analyses the producer cluster's DAG (paper's Algorithm 1),
//! 2. bounds the NoC transfer of its outputs ([`mia::noc`]),
//! 3. uses `producer finish + NoC bound` as the consumer entry tasks'
//!    minimal release dates, and
//! 4. analyses the consumer cluster — a sound end-to-end bound by
//!    composition, exactly the time-triggered discipline of §II.B.
//!
//! Run with: `cargo run --example noc_multicluster`

use mia::noc::{simulate_flows, worst_case_latencies, Flow, FlowSet, NocConfig, Torus};
use mia::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let torus = Torus::mppa256();
    let producer_cluster = torus.node(0, 0);
    let consumer_cluster = torus.node(2, 1);

    // ── Producer cluster: a 4-task sensor-fusion front end ─────────────
    let mut prod = TaskGraph::new();
    let cam0 = prod.add_task(Task::builder("cam0").wcet(Cycles(300)));
    let cam1 = prod.add_task(Task::builder("cam1").wcet(Cycles(300)));
    let fuse = prod.add_task(Task::builder("fuse").wcet(Cycles(200)));
    let pack = prod.add_task(Task::builder("pack").wcet(Cycles(100)));
    prod.add_edge(cam0, fuse, 64)?;
    prod.add_edge(cam1, fuse, 64)?;
    prod.add_edge(fuse, pack, 96)?;
    let prod_mapping = Mapping::from_assignment(&prod, &[0, 1, 0, 2])?;
    let prod_problem = Problem::new(prod, prod_mapping, Platform::mppa256_cluster())?;
    let rr = RoundRobin::new();
    let prod_schedule = analyze(&prod_problem, &rr)?;
    let frame_ready = prod_schedule.timing(pack).finish();
    println!("producer cluster {producer_cluster}: frame packed by t = {frame_ready}");

    // ── NoC: ship the 96-word frame; a competing bulk flow shares links ─
    let mut flows = FlowSet::new();
    let frame =
        flows.add(Flow::new(producer_cluster, consumer_cluster, 96).released_at(frame_ready));
    let bulk = flows.add(Flow::new(torus.node(1, 0), torus.node(3, 1), 256));
    let noc_cfg = NocConfig::default();
    let bounds = worst_case_latencies(&torus, &flows, &noc_cfg);
    let frame_arrival = bounds[frame.index()];
    println!(
        "NoC: frame delivery bounded by t = {frame_arrival} \
         ({} hops, contended by a 256-word bulk flow)",
        torus.hops(producer_cluster, consumer_cluster)
    );
    let sim = simulate_flows(&torus, &flows, &noc_cfg);
    assert!(sim.delivered(frame) <= frame_arrival);
    assert!(sim.delivered(bulk) <= bounds[bulk.index()]);

    // ── Consumer cluster: detection pipeline gated on the arrival bound ─
    let mut cons = TaskGraph::new();
    let unpack = cons.add_task(
        Task::builder("unpack")
            .wcet(Cycles(80))
            .min_release(frame_arrival), // the composition step
    );
    let detect0 = cons.add_task(Task::builder("detect0").wcet(Cycles(400)));
    let detect1 = cons.add_task(Task::builder("detect1").wcet(Cycles(400)));
    let decide = cons.add_task(Task::builder("decide").wcet(Cycles(150)));
    cons.add_edge(unpack, detect0, 48)?;
    cons.add_edge(unpack, detect1, 48)?;
    cons.add_edge(detect0, decide, 8)?;
    cons.add_edge(detect1, decide, 8)?;
    let cons_mapping = Mapping::from_assignment(&cons, &[0, 1, 2, 0])?;
    let cons_problem = Problem::new(cons, cons_mapping, Platform::mppa256_cluster())?;
    let cons_schedule = analyze(&cons_problem, &rr)?;

    println!(
        "consumer cluster {consumer_cluster}: decision by t = {}",
        cons_schedule.makespan()
    );
    println!(
        "\nEnd-to-end (camera → decision) worst case: {}",
        cons_schedule.makespan()
    );

    // Sanity: the consumer never starts before the frame can have arrived,
    // and the end-to-end bound strictly contains the producer phase.
    assert!(cons_schedule.timing(unpack).release >= frame_arrival);
    assert!(cons_schedule.makespan() > frame_ready);
    println!("composition checks passed.");

    // ── Scaling the fabric: the 4×8 torus (two MPPA chips) ─────────────
    // The same frame shipped across the wider fabric: more hops, and the
    // half-ring wrap distances (4 in Y) that only even dimensions have.
    let wide = Torus::torus4x8();
    let far = wide.node(2, 4);
    let mut wide_flows = FlowSet::new();
    let long_haul = wide_flows.add(Flow::new(wide.node(0, 0), far, 96));
    let cross = wide_flows.add(Flow::new(wide.node(2, 1), wide.node(2, 6), 256));
    let wide_bounds = worst_case_latencies(&wide, &wide_flows, &noc_cfg);
    println!(
        "\n4×8 torus: {} hops to {far}, frame bounded by t = {} \
         (vs {} hops on the 4×4 chip)",
        wide.hops(wide.node(0, 0), far),
        wide_bounds[long_haul.index()],
        torus.hops(producer_cluster, consumer_cluster)
    );
    let wide_sim = simulate_flows(&wide, &wide_flows, &noc_cfg);
    assert!(wide_sim.delivered(long_haul) <= wide_bounds[long_haul.index()]);
    assert!(wide_sim.delivered(cross) <= wide_bounds[cross.index()]);
    Ok(())
}
