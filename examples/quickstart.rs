//! Quickstart: the paper's Figure 1, end to end.
//!
//! Builds the 5-task example, runs both analyses, prints the schedules
//! with and without interference, and renders the timing diagrams.
//!
//! Run with: `cargo run --example quickstart`

use mia::prelude::*;
use mia::trace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The DAG of Figure 1: five tasks, five 1-word edges.
    let mut g = TaskGraph::new();
    let n0 = g.add_task(Task::builder("n0").wcet(Cycles(2)));
    let n1 = g.add_task(Task::builder("n1").wcet(Cycles(2)).min_release(Cycles(2)));
    let n2 = g.add_task(Task::builder("n2").wcet(Cycles(1)).min_release(Cycles(4)));
    let n3 = g.add_task(Task::builder("n3").wcet(Cycles(3)));
    let n4 = g.add_task(Task::builder("n4").wcet(Cycles(2)).min_release(Cycles(4)));
    for (s, d) in [(n0, n1), (n0, n2), (n1, n2), (n3, n2), (n3, n4)] {
        g.add_edge(s, d, 1)?;
    }

    println!("The task DAG (Graphviz DOT):\n{}", trace::to_dot(&g));

    // Mapping of the figure: n0 → PE0; n1, n2 → PE1; n3 → PE2; n4 → PE3.
    let mapping = Mapping::from_assignment(&g, &[0, 1, 1, 2, 3])?;
    let critical_path = g.critical_path()?;
    let problem = Problem::new(g, mapping, Platform::new(4, 4))?;

    // ── Incremental O(n²) analysis (the paper's contribution) ──────────
    let schedule = analyze(&problem, &RoundRobin::new())?;
    println!("schedule ignoring interference ends at  t = {critical_path}");
    println!(
        "schedule with interference ends at      t = {}\n",
        schedule.makespan()
    );

    println!("{}", trace::schedule_table(&problem, &schedule));
    println!("{}", trace::gantt(&problem, &schedule));

    // ── The original O(n⁴) algorithm computes the same schedule ────────
    let baseline = analyze_baseline(&problem, &RoundRobin::new())?;
    println!(
        "original fixed-point algorithm agrees: makespan = {}",
        baseline.makespan()
    );

    assert_eq!(critical_path, Cycles(6));
    assert_eq!(schedule.makespan(), Cycles(7));
    assert_eq!(schedule.timing(n0).interference, Cycles(1));
    assert_eq!(schedule.timing(n1).interference, Cycles(1));
    assert_eq!(schedule.timing(n3).interference, Cycles(2));
    println!("\nFigure 1 reproduced: t = 6 without interference, t = 7 with.");
    Ok(())
}
