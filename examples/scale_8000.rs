//! The conclusion's scaling claim: the incremental algorithm handles
//! "more than 8000 tasks while maintaining a reasonable execution time"
//! (paper §VI).
//!
//! Generates LS64 and NL64 benchmarks past 8000 tasks and times the
//! incremental analysis (build with `--release`; the O(n⁴) baseline would
//! need hours here — that is the point of the paper).
//!
//! Run with: `cargo run --release --example scale_8000`

use std::time::Instant;

use mia::analysis::{analyze_with, AnalysisOptions, NoopObserver};
use mia::dag_gen::{Family, LayeredDag};
use mia::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::mppa256_cluster();
    let arbiter = RoundRobin::new();
    println!(
        "{:<6} {:>7} {:>12} {:>14} {:>12} {:>10}",
        "family", "tasks", "edges", "makespan", "time", "max alive"
    );
    for family in [Family::FixedLayerSize(64), Family::FixedLayers(64)] {
        for n in [1024usize, 4096, 8448] {
            let workload = LayeredDag::new(family.config(n, 2020)).generate();
            let edges = workload.graph.edge_count();
            let problem = workload.into_problem(&platform)?;
            let t0 = Instant::now();
            let report = analyze_with(
                &problem,
                &arbiter,
                &AnalysisOptions::new(),
                &mut NoopObserver,
            )?;
            let elapsed = t0.elapsed();
            println!(
                "{:<6} {:>7} {:>12} {:>14} {:>12} {:>10}",
                family.label(),
                n,
                edges,
                report.schedule.makespan().as_u64(),
                format!("{elapsed:.2?}"),
                report.stats.max_alive
            );
            assert!(
                report.stats.max_alive <= problem.platform().cores(),
                "the alive set stays bounded by the core count"
            );
        }
    }
    println!("\n8448-task graphs analysed in well under a minute — the paper's");
    println!("scaling target (§VI) holds for this implementation.");
    Ok(())
}
