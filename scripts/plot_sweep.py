#!/usr/bin/env python3
"""Plot `mia sweep` / `mia-bench sweep` / `mia-bench dse` reports.

Stdlib-only. Sweep reports (BENCH_sweep.json, a `points` list) become
the runtime-vs-size trajectory curves of the paper's Figure 3; DSE
reports (BENCH_dse.json, a `runs` list from `mia optimize` or
`mia-bench --bin dse`) become seed-vs-optimized makespan bars. The
format is auto-detected.

* by default, an ASCII chart straight to the terminal (log-log curves
  for sweeps, paired bars for DSE reports),
* with `--gnuplot DIR`, a gnuplot data file + script pair ready for
  `gnuplot <script>` -> an SVG,
* with `--csv`, the flat table of the matching `--csv` CLI output.

Examples:

    scripts/plot_sweep.py                      # chart BENCH_sweep.json
    scripts/plot_sweep.py BENCH_dse.json       # seed vs optimized bars
    scripts/plot_sweep.py results/sweep.json --gnuplot out/
    mia sweep --sizes 1000,8000 -o r.json && scripts/plot_sweep.py r.json
"""

import argparse
import json
import math
import os
import sys


def load_report(path):
    with open(path) as handle:
        return json.load(handle)


def series_of(report):
    """{(family, arbiter, algorithm, threads): [(n, seconds)]}, completed
    points only, sorted by n."""
    series = {}
    for point in report["points"]:
        outcome = point["outcome"]
        if "Completed" not in outcome:
            continue
        # Reports from before the threads axis lack the per-point field.
        threads = point.get("threads", 1)
        key = (point["family"], point["arbiter"], point["algorithm"], threads)
        series.setdefault(key, []).append((point["n"], outcome["Completed"]["seconds"]))
    for points in series.values():
        points.sort()
    return series


def label_of(key):
    family, arbiter, algorithm, threads = key
    label = f"{family}/{arbiter}/{algorithm}"
    return label if threads == 1 else f"{label}/t{threads}"


def render_ascii(series, width=72, height=20):
    """One shared log-log canvas, one marker letter per series."""
    points = [(n, s) for pts in series.values() for (n, s) in pts if s > 0]
    if not points:
        return "no completed points to plot\n"
    xs = [math.log10(n) for n, _ in points]
    ys = [math.log10(s) for _, s in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "abcdefghijklmnopqrstuvwxyz"
    legend = []
    for index, (key, pts) in enumerate(sorted(series.items())):
        marker = markers[index % len(markers)]
        legend.append(f"  {marker} = {label_of(key)}")
        for n, seconds in pts:
            if seconds <= 0:
                continue
            col = round((math.log10(n) - x_lo) / x_span * (width - 1))
            row = round((math.log10(seconds) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker
    lines = [f"log10(seconds) vs log10(n)   [{10 ** y_lo:.2g}s .. {10 ** y_hi:.2g}s]"]
    lines += ["  |" + "".join(row) for row in grid]
    lines.append("  +" + "-" * width)
    lines.append(f"   n: {int(round(10 ** x_lo))} .. {int(round(10 ** x_hi))}")
    lines.extend(legend)
    return "\n".join(lines) + "\n"


def write_gnuplot(series, out_dir):
    os.makedirs(out_dir, exist_ok=True)
    dat_path = os.path.join(out_dir, "sweep.dat")
    gp_path = os.path.join(out_dir, "sweep.gp")
    keys = sorted(series)
    with open(dat_path, "w") as dat:
        for key in keys:
            dat.write(f"# {label_of(key)}\n")
            for n, seconds in series[key]:
                dat.write(f"{n} {seconds}\n")
            dat.write("\n\n")  # gnuplot index separator
    plots = ", \\\n    ".join(
        f"'sweep.dat' index {i} with linespoints title '{label_of(key)}'"
        for i, key in enumerate(keys)
    )
    with open(gp_path, "w") as gp:
        gp.write(
            "set terminal svg size 900,600\n"
            "set output 'sweep.svg'\n"
            "set logscale xy\n"
            "set xlabel 'tasks (n)'\n"
            "set ylabel 'analysis runtime (s)'\n"
            "set key left top\n"
            f"plot {plots}\n"
        )
    return dat_path, gp_path


def write_csv(report, out):
    out.write("family,arbiter,n,algorithm,threads,status,seconds,makespan,error\n")
    for p in report["points"]:
        outcome = p["outcome"]
        threads = p.get("threads", 1)
        if "Completed" in outcome:
            c = outcome["Completed"]
            row = ["completed", f"{c['seconds']:.6f}", str(c["makespan"]), ""]
        elif "TimedOut" in outcome:
            row = ["timeout", f"{outcome['TimedOut']['budget']:.6f}", "", ""]
        else:
            error = outcome["Failed"]["error"].replace(",", ";").replace("\n", " ")
            row = ["failed", "", "", error]
        family = p["family"].replace(",", ";")
        out.write(
            f"{family},{p['arbiter']},{p['n']},{p['algorithm']},{threads},"
            + ",".join(row)
            + "\n"
        )


def dse_label(run):
    return f"{run['workload']}/{run['arbiter']}/n={run['n']}"


def render_dse_ascii(report, width=44):
    """Paired seed/optimized bars per run, annotated with the
    improvement and the memo-cache hit rate."""
    runs = report["runs"]
    if not runs:
        return "no runs to plot\n"
    peak = max(r["seed_makespan"] for r in runs) or 1
    label_width = max(len(dse_label(r)) for r in runs)
    lines = [
        f"analyzed makespan: seed (s) vs optimized (o), budget "
        f"{report.get('budget_evals', '?')} evals, strategy "
        f"{report.get('strategy', '?')}"
    ]
    for run in runs:
        bar = lambda v: "#" * max(1, round(v / peak * width))  # noqa: E731
        gain = run["improvement_pct"]
        hits = run["cache_hit_rate"] * 100
        lines.append(
            f"{dse_label(run):>{label_width}} s {bar(run['seed_makespan']):<{width}} "
            f"{run['seed_makespan']}"
        )
        lines.append(
            f"{'':>{label_width}} o {bar(run['optimized_makespan']):<{width}} "
            f"{run['optimized_makespan']} (-{gain:.2f}%, cache hits {hits:.0f}%)"
        )
    return "\n".join(lines) + "\n"


def write_dse_gnuplot(report, out_dir):
    os.makedirs(out_dir, exist_ok=True)
    dat_path = os.path.join(out_dir, "dse.dat")
    gp_path = os.path.join(out_dir, "dse.gp")
    with open(dat_path, "w") as dat:
        dat.write("# label seed optimized\n")
        for run in report["runs"]:
            label = dse_label(run).replace(" ", "_")
            dat.write(
                f"{label} {run['seed_makespan']} {run['optimized_makespan']}\n"
            )
    with open(gp_path, "w") as gp:
        gp.write(
            "set terminal svg size 900,600\n"
            "set output 'dse.svg'\n"
            "set style data histogram\n"
            "set style histogram cluster gap 1\n"
            "set style fill solid 0.8\n"
            "set xtics rotate by -35\n"
            "set ylabel 'analyzed makespan (cycles)'\n"
            "plot 'dse.dat' using 2:xtic(1) title 'seed', \\\n"
            "     '' using 3 title 'optimized'\n"
        )
    return dat_path, gp_path


def write_dse_csv(report, out):
    out.write(
        "workload,arbiter,strategy,n,chains,seed_makespan,optimized_makespan,"
        "improvement_pct,evaluations,cache_hits,feasible_hits,infeasible_hits,"
        "delta_resumes,front_size,hypervolume,cache_hit_rate,seconds\n"
    )
    for r in report["runs"]:
        workload = r["workload"].replace(",", ";")
        out.write(
            f"{workload},{r['arbiter']},{r['strategy']},{r['n']},{r['chains']},"
            f"{r['seed_makespan']},{r['optimized_makespan']},"
            f"{r['improvement_pct']:.3f},{r['evaluations']},{r['cache_hits']},"
            # Reports from before the delta re-analysis / Pareto fronts
            # lack the newer fields; default them so old artefacts still
            # plot.
            f"{r.get('feasible_hits', 0)},{r.get('infeasible_hits', 0)},"
            f"{r.get('delta_resumes', 0)},"
            f"{r.get('front_size', 0)},{r.get('hypervolume', 0.0):.4f},"
            f"{r['cache_hit_rate']:.4f},{r['seconds']:.6f}\n"
        )


def has_front(report):
    """True for multi-objective reports (any run carries a Pareto front).
    Pre-Pareto artefacts simply lack the field and plot as before."""
    return any(r.get("front") for r in report.get("runs", []))


def scatter_ascii(points, title, width=58, height=12):
    """One 2-D scatter canvas; `points` is [(x, y)], marker `*`."""
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1
    y_span = (y_hi - y_lo) or 1
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = round((x - x_lo) / x_span * (width - 1))
        row = round((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = [f"{title}   [y: {y_lo} .. {y_hi}]"]
    lines += ["  |" + "".join(row) for row in grid]
    lines.append("  +" + "-" * width)
    lines.append(f"   x: {x_lo} .. {x_hi}")
    return "\n".join(lines)


# The 2-D projections of the 3-objective front worth looking at.
FRONT_PROJECTIONS = (
    ("bank_peak", "peak bank load (words) vs makespan (cycles)"),
    ("min_slack", "min slack (cycles) vs makespan (cycles)"),
)


def render_front_ascii(report):
    """Per run: the front size + hypervolume, then the 2-D projections
    of the Pareto front as ASCII scatters."""
    lines = []
    for run in report["runs"]:
        front = run.get("front") or []
        if not front:
            continue
        lines.append(
            f"{dse_label(run)}: {len(front)} Pareto point(s), "
            f"hypervolume {run.get('hypervolume', 0.0):.4f}"
        )
        for field, title in FRONT_PROJECTIONS:
            points = [(p["makespan"], p[field]) for p in front]
            lines.append(scatter_ascii(points, title))
    return "\n".join(lines) + "\n"


def write_front_gnuplot(report, out_dir):
    os.makedirs(out_dir, exist_ok=True)
    dat_path = os.path.join(out_dir, "dse_front.dat")
    gp_path = os.path.join(out_dir, "dse_front.gp")
    indexed = []
    with open(dat_path, "w") as dat:
        dat.write("# makespan min_slack bank_peak active_cores arbiter\n")
        for run in report["runs"]:
            front = run.get("front") or []
            if not front:
                continue
            dat.write(f"# {dse_label(run)}\n")
            for p in front:
                dat.write(
                    f"{p['makespan']} {p['min_slack']} {p['bank_peak']} "
                    f"{p.get('active_cores', 0)} {p.get('arbiter', 0)}\n"
                )
            dat.write("\n\n")  # gnuplot index separator
            indexed.append(dse_label(run))
    bank = ", \\\n    ".join(
        f"'dse_front.dat' index {i} using 1:3 with points pt 7 title '{label}'"
        for i, label in enumerate(indexed)
    )
    slack = ", \\\n    ".join(
        f"'dse_front.dat' index {i} using 1:2 with points pt 7 title '{label}'"
        for i, label in enumerate(indexed)
    )
    with open(gp_path, "w") as gp:
        gp.write(
            "set terminal svg size 1200,500\n"
            "set output 'dse_front.svg'\n"
            "set multiplot layout 1,2\n"
            "set xlabel 'analyzed makespan (cycles)'\n"
            "set ylabel 'peak bank load (words)'\n"
            "set key right top\n"
            f"plot {bank}\n"
            "set ylabel 'min slack (cycles)'\n"
            f"plot {slack}\n"
            "unset multiplot\n"
        )
    return dat_path, gp_path


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", nargs="?", default="BENCH_sweep.json",
                        help="sweep or DSE JSON report (default: BENCH_sweep.json)")
    parser.add_argument("--gnuplot", metavar="DIR",
                        help="write a gnuplot data + script pair into DIR")
    parser.add_argument("--csv", action="store_true",
                        help="emit the flat CSV table instead of a chart")
    args = parser.parse_args()

    report = load_report(args.report)
    if "runs" in report and "points" not in report:
        # A DSE report (mia optimize / mia-bench dse). Multi-objective
        # runs (any run with a `front`) additionally get the Pareto
        # front projections.
        if args.csv:
            write_dse_csv(report, sys.stdout)
        elif args.gnuplot:
            dat, gp = write_dse_gnuplot(report, args.gnuplot)
            print(f"wrote {dat} and {gp} (run: gnuplot {gp})")
            if has_front(report):
                dat, gp = write_front_gnuplot(report, args.gnuplot)
                print(f"wrote {dat} and {gp} (run: gnuplot {gp})")
        else:
            sys.stdout.write(render_dse_ascii(report))
            if has_front(report):
                sys.stdout.write(render_front_ascii(report))
        return
    if args.csv:
        write_csv(report, sys.stdout)
        return
    series = series_of(report)
    if args.gnuplot:
        dat, gp = write_gnuplot(series, args.gnuplot)
        print(f"wrote {dat} and {gp} (run: gnuplot {gp})")
        return
    sys.stdout.write(render_ascii(series))


if __name__ == "__main__":
    main()
