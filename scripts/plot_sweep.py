#!/usr/bin/env python3
"""Plot `mia sweep` / `mia-bench sweep` reports (BENCH_sweep.json).

Stdlib-only: reads the JSON report, groups the measured points into
series keyed by (family, arbiter, algorithm, threads), and renders the
runtime-vs-size trajectory curves of the paper's Figure 3:

* by default, an ASCII log-log chart straight to the terminal,
* with `--gnuplot DIR`, a gnuplot data file + script pair (`sweep.dat`,
  `sweep.gp`) ready for `gnuplot sweep.gp` -> `sweep.svg`,
* with `--csv`, the flat nine-column table of `mia sweep --csv`
  (family,arbiter,n,algorithm,threads,status,seconds,makespan,error).

Examples:

    scripts/plot_sweep.py                      # chart BENCH_sweep.json
    scripts/plot_sweep.py results/sweep.json --gnuplot out/
    mia sweep --sizes 1000,8000 -o r.json && scripts/plot_sweep.py r.json
"""

import argparse
import json
import math
import os
import sys


def load_report(path):
    with open(path) as handle:
        return json.load(handle)


def series_of(report):
    """{(family, arbiter, algorithm, threads): [(n, seconds)]}, completed
    points only, sorted by n."""
    series = {}
    for point in report["points"]:
        outcome = point["outcome"]
        if "Completed" not in outcome:
            continue
        # Reports from before the threads axis lack the per-point field.
        threads = point.get("threads", 1)
        key = (point["family"], point["arbiter"], point["algorithm"], threads)
        series.setdefault(key, []).append((point["n"], outcome["Completed"]["seconds"]))
    for points in series.values():
        points.sort()
    return series


def label_of(key):
    family, arbiter, algorithm, threads = key
    label = f"{family}/{arbiter}/{algorithm}"
    return label if threads == 1 else f"{label}/t{threads}"


def render_ascii(series, width=72, height=20):
    """One shared log-log canvas, one marker letter per series."""
    points = [(n, s) for pts in series.values() for (n, s) in pts if s > 0]
    if not points:
        return "no completed points to plot\n"
    xs = [math.log10(n) for n, _ in points]
    ys = [math.log10(s) for _, s in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "abcdefghijklmnopqrstuvwxyz"
    legend = []
    for index, (key, pts) in enumerate(sorted(series.items())):
        marker = markers[index % len(markers)]
        legend.append(f"  {marker} = {label_of(key)}")
        for n, seconds in pts:
            if seconds <= 0:
                continue
            col = round((math.log10(n) - x_lo) / x_span * (width - 1))
            row = round((math.log10(seconds) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker
    lines = [f"log10(seconds) vs log10(n)   [{10 ** y_lo:.2g}s .. {10 ** y_hi:.2g}s]"]
    lines += ["  |" + "".join(row) for row in grid]
    lines.append("  +" + "-" * width)
    lines.append(f"   n: {int(round(10 ** x_lo))} .. {int(round(10 ** x_hi))}")
    lines.extend(legend)
    return "\n".join(lines) + "\n"


def write_gnuplot(series, out_dir):
    os.makedirs(out_dir, exist_ok=True)
    dat_path = os.path.join(out_dir, "sweep.dat")
    gp_path = os.path.join(out_dir, "sweep.gp")
    keys = sorted(series)
    with open(dat_path, "w") as dat:
        for key in keys:
            dat.write(f"# {label_of(key)}\n")
            for n, seconds in series[key]:
                dat.write(f"{n} {seconds}\n")
            dat.write("\n\n")  # gnuplot index separator
    plots = ", \\\n    ".join(
        f"'sweep.dat' index {i} with linespoints title '{label_of(key)}'"
        for i, key in enumerate(keys)
    )
    with open(gp_path, "w") as gp:
        gp.write(
            "set terminal svg size 900,600\n"
            "set output 'sweep.svg'\n"
            "set logscale xy\n"
            "set xlabel 'tasks (n)'\n"
            "set ylabel 'analysis runtime (s)'\n"
            "set key left top\n"
            f"plot {plots}\n"
        )
    return dat_path, gp_path


def write_csv(report, out):
    out.write("family,arbiter,n,algorithm,threads,status,seconds,makespan,error\n")
    for p in report["points"]:
        outcome = p["outcome"]
        threads = p.get("threads", 1)
        if "Completed" in outcome:
            c = outcome["Completed"]
            row = ["completed", f"{c['seconds']:.6f}", str(c["makespan"]), ""]
        elif "TimedOut" in outcome:
            row = ["timeout", f"{outcome['TimedOut']['budget']:.6f}", "", ""]
        else:
            error = outcome["Failed"]["error"].replace(",", ";").replace("\n", " ")
            row = ["failed", "", "", error]
        family = p["family"].replace(",", ";")
        out.write(
            f"{family},{p['arbiter']},{p['n']},{p['algorithm']},{threads},"
            + ",".join(row)
            + "\n"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", nargs="?", default="BENCH_sweep.json",
                        help="sweep JSON report (default: BENCH_sweep.json)")
    parser.add_argument("--gnuplot", metavar="DIR",
                        help="write sweep.dat + sweep.gp into DIR")
    parser.add_argument("--csv", action="store_true",
                        help="emit the flat nine-column CSV instead of a chart")
    args = parser.parse_args()

    report = load_report(args.report)
    if args.csv:
        write_csv(report, sys.stdout)
        return
    series = series_of(report)
    if args.gnuplot:
        dat, gp = write_gnuplot(series, args.gnuplot)
        print(f"wrote {dat} and {gp} (run: gnuplot {gp})")
        return
    sys.stdout.write(render_ascii(series))


if __name__ == "__main__":
    main()
