//! # mia — Memory Interference Analysis for hard real-time many-core systems
//!
//! Facade crate re-exporting the whole `mia` workspace, a production-grade
//! reproduction of *"Scaling Up the Memory Interference Analysis for Hard
//! Real-Time Many-Core Systems"* (Dupont de Dinechin, Schuh, Moy, Maïza —
//! DATE 2020).
//!
//! Given a DAG of tasks, a mapping onto cores with a fixed per-core
//! execution order, per-task WCETs in isolation and memory demands, and a
//! bus-arbiter model, the library computes a static time-triggered
//! schedule: a release date and a worst-case response time for every task,
//! accounting for memory interference between cores.
//!
//! Two algorithms solve the problem:
//!
//! * [`incremental`](mia_core::analyze) — the paper's O(n²) contribution
//!   (crate [`mia_core`], re-exported as [`analysis`]),
//! * [`baseline`](mia_baseline::analyze) — the original O(n⁴) double
//!   fixed point of Rihani et al. (RTNS 2016), kept as the comparison
//!   baseline (crate [`mia_baseline`]).
//!
//! # Quickstart
//!
//! The paper's Figure 1, end to end:
//!
//! ```
//! use mia::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // DAG of 5 tasks with per-edge word counts.
//! let mut g = TaskGraph::new();
//! let n0 = g.add_task(Task::builder("n0").wcet(Cycles(2)));
//! let n1 = g.add_task(Task::builder("n1").wcet(Cycles(2)).min_release(Cycles(2)));
//! let n2 = g.add_task(Task::builder("n2").wcet(Cycles(1)).min_release(Cycles(4)));
//! let n3 = g.add_task(Task::builder("n3").wcet(Cycles(3)));
//! let n4 = g.add_task(Task::builder("n4").wcet(Cycles(2)).min_release(Cycles(4)));
//! for (s, d) in [(n0, n1), (n0, n2), (n1, n2), (n3, n2), (n3, n4)] {
//!     g.add_edge(s, d, 1)?;
//! }
//!
//! // Mapping: n0→PE0, n1,n2→PE1, n3→PE2, n4→PE3.
//! let mapping = Mapping::from_assignment(&g, &[0, 1, 1, 2, 3])?;
//! let problem = Problem::new(g, mapping, Platform::new(4, 4))?;
//!
//! // Analyse with the round-robin arbiter.
//! let schedule = mia::analysis::analyze(&problem, &RoundRobin::new())?;
//! assert_eq!(schedule.makespan(), Cycles(7)); // the paper's t = 7
//! # Ok(())
//! # }
//! ```
//!
//! # Workspace tour
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`model`] | tasks, graphs, mappings, platforms, demands, schedules |
//! | [`arbiters`] | round-robin, MPPA-256 tree, TDM, fixed-priority, FIFO |
//! | [`analysis`] | the incremental O(n²) algorithm (paper's Algorithm 1) |
//! | [`baseline`] | the original O(n⁴) fixed-point algorithm |
//! | [`dag_gen`] | Tobita–Kasahara random DAGs and benchmark families |
//! | [`sim`] | cycle-stepped validation simulator |
//! | [`sdf`] | synchronous-dataflow front-end (graph → task DAG) |
//! | [`wcet`] | WCET-in-isolation estimation on CFGs (OTAWA substitute) |
//! | [`mapping_heuristics`] | mapping & ordering strategies |
//! | [`mrta`] | sporadic-task multicore response-time analysis (ref. \[1\]) |
//! | [`noc`] | inter-cluster 2D-torus NoC latency bounds (MPPA-256 chip level) |
//! | [`exec`] | time-triggered dispatch tables + C emission (deployment stage) |
//! | [`dse`] | design-space exploration with the analysis in the loop |
//! | [`trace`] | Gantt charts, DOT export, JSON reports |

pub use mia_arbiter as arbiters;
pub use mia_baseline as baseline;
pub use mia_core as analysis;
pub use mia_dag_gen as dag_gen;
pub use mia_dse as dse;
pub use mia_exec as exec;
pub use mia_mapping as mapping_heuristics;
pub use mia_model as model;
pub use mia_mrta as mrta;
pub use mia_noc as noc;
pub use mia_sdf as sdf;
pub use mia_sim as sim;
pub use mia_trace as trace;
pub use mia_wcet as wcet;

/// Convenient glob-import of the most used types.
///
/// ```
/// use mia::prelude::*;
/// let _ = Platform::mppa256_cluster();
/// ```
pub mod prelude {
    pub use mia_arbiter::{
        Fifo, FixedPriority, MppaTree, Regulated, RoundRobin, Tdm, WeightedRoundRobin,
    };
    pub use mia_baseline::analyze as analyze_baseline;
    pub use mia_core::{analyze, analyze_event_driven, analyze_parallel, AnalysisOptions};
    pub use mia_model::{
        Arbiter, BankDemand, BankId, BankPolicy, CoreId, Cycles, Mapping, ModelError, Platform,
        Problem, Schedule, ScheduleViolation, Task, TaskGraph, TaskId, TaskTiming,
    };
}
