//! Experiment V2: the incremental algorithm and the original double
//! fixed point solve the same problem — on the paper's benchmark
//! workloads they settle on the same schedules, and both are validated by
//! simulation.

use mia::dag_gen::{Family, LayeredDag, LayeredDagConfig};
use mia::prelude::*;
use mia::sim::{simulate, AccessPattern, SimConfig};
use proptest::prelude::*;

fn workload(family: Family, total: usize, seed: u64) -> Problem {
    LayeredDag::new(family.config(total, seed))
        .generate()
        .into_problem(&Platform::mppa256_cluster())
        .unwrap()
}

#[test]
fn algorithms_agree_on_paper_workloads() {
    for family in Family::figure3() {
        let p = workload(family, 64, 1);
        let inc = mia::analysis::analyze(&p, &RoundRobin::new()).unwrap();
        let base = mia::baseline::analyze(&p, &RoundRobin::new()).unwrap();
        inc.check(&p).unwrap();
        base.check(&p).unwrap();
        assert_eq!(
            inc.makespan(),
            base.makespan(),
            "family {family}: makespans diverge"
        );
    }
}

#[test]
fn algorithms_agree_under_the_mppa_tree_arbiter() {
    let p = workload(Family::FixedLayerSize(16), 96, 9);
    let arb = MppaTree::cluster16();
    let inc = mia::analysis::analyze(&p, &arb).unwrap();
    let base = mia::baseline::analyze(&p, &arb).unwrap();
    assert_eq!(inc.makespan(), base.makespan());
}

#[test]
fn both_bound_the_interference_free_schedule() {
    for seed in 0..4 {
        let p = workload(Family::FixedLayers(16), 128, seed);
        let floor = p.graph().critical_path().unwrap();
        let inc = mia::analysis::analyze(&p, &RoundRobin::new()).unwrap();
        let base = mia::baseline::analyze(&p, &RoundRobin::new()).unwrap();
        assert!(inc.makespan() >= floor);
        assert!(base.makespan() >= floor);
    }
}

#[test]
fn both_schedules_pass_simulation() {
    let mut cfg: LayeredDagConfig = Family::FixedLayerSize(8).config(64, 33);
    cfg.accesses = 50..=120;
    cfg.edge_words = 0..=8;
    let p = LayeredDag::new(cfg)
        .generate()
        .into_problem(&Platform::mppa256_cluster())
        .unwrap();
    for schedule in [
        mia::analysis::analyze(&p, &RoundRobin::new()).unwrap(),
        mia::baseline::analyze(&p, &RoundRobin::new()).unwrap(),
    ] {
        for pattern in [AccessPattern::BurstStart, AccessPattern::Random] {
            let run = simulate(&p, &schedule, &SimConfig::new(pattern).seed(5)).unwrap();
            assert!(run.first_violation(&schedule).is_none());
        }
    }
}

#[test]
fn interference_modes_coincide_for_additive_arbiters() {
    use mia::analysis::{analyze_with, AnalysisOptions, InterferenceMode, NoopObserver};
    let p = workload(Family::FixedLayers(4), 64, 77);
    let exact = mia::analysis::analyze(&p, &RoundRobin::new()).unwrap();
    // With the RR arbiter and ≤ 1 interfering task per core at a time the
    // pairwise fast path must produce the identical schedule as long as no
    // core contributes two tasks to one victim's lifetime. On layered
    // workloads this can differ; the invariant that always holds is
    // domination.
    let opts = AnalysisOptions::new().interference_mode(InterferenceMode::PairwiseAdditive);
    let pairwise = analyze_with(&p, &RoundRobin::new(), &opts, &mut NoopObserver)
        .unwrap()
        .schedule;
    assert!(pairwise.makespan() >= exact.makespan());
    pairwise.check(&p).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn makespans_agree_on_random_instances(
        seed in 0u64..1_000,
        total in 16usize..80,
    ) {
        let p = workload(Family::FixedLayerSize(8), total, seed);
        let inc = mia::analysis::analyze(&p, &RoundRobin::new()).unwrap();
        let base = mia::baseline::analyze(&p, &RoundRobin::new()).unwrap();
        prop_assert_eq!(inc.makespan(), base.makespan());
    }

    #[test]
    fn incremental_is_deterministic(seed in 0u64..1_000) {
        let p = workload(Family::FixedLayers(8), 64, seed);
        let a = mia::analysis::analyze(&p, &RoundRobin::new()).unwrap();
        let b = mia::analysis::analyze(&p, &RoundRobin::new()).unwrap();
        prop_assert_eq!(a, b);
    }
}
