//! Full-framework integration: dataflow program → WCET estimation →
//! mapping → interference analysis → simulation (the pipeline of the
//! paper's §I).

use mia::prelude::*;
use mia::sim::{simulate, AccessPattern, SimConfig};
use mia::wcet::{estimate, Program};
use mia::{mapping_heuristics, sdf};

const APP: &str = "
actor sensor wcet=60  accesses=10
actor fusion wcet=180 accesses=20
actor plan   wcet=240 accesses=30
actor act    wcet=90  accesses=12
channel sensor -> fusion produce=2 consume=2 words=4
channel fusion -> plan   produce=1 consume=1 words=6
channel plan   -> act    produce=1 consume=1 words=3
";

#[test]
fn sdf_to_schedule_to_simulation() {
    let graph = sdf::parse(APP).unwrap();
    let expansion = graph.expand(2).unwrap();
    let mapping = mapping_heuristics::earliest_finish(&expansion.graph, 4).unwrap();
    let problem = Problem::new(expansion.graph, mapping, Platform::new(4, 4)).unwrap();
    let schedule = mia::analysis::analyze(&problem, &RoundRobin::new()).unwrap();
    schedule.check(&problem).unwrap();
    for pattern in [AccessPattern::BurstStart, AccessPattern::Uniform] {
        let run = simulate(&problem, &schedule, &SimConfig::new(pattern)).unwrap();
        assert!(run.first_violation(&schedule).is_none());
    }
}

#[test]
fn wcet_estimates_feed_the_analysis() {
    // Two synthetic kernels estimated structurally, then scheduled.
    let dsp = Program::seq([
        Program::block(30, 6),
        Program::loop_of(32, Program::block(7, 1)),
    ]);
    let ctrl = Program::loop_of(
        16,
        Program::if_else(
            Program::block(3, 0),
            Program::block(11, 2),
            Program::block(5, 1),
        ),
    );
    let e_dsp = estimate(&dsp);
    let e_ctrl = estimate(&ctrl);
    assert_eq!(e_dsp.wcet, Cycles(30 + 32 * 7));
    assert_eq!(e_ctrl.wcet, Cycles(16 * 14));

    let mut g = TaskGraph::new();
    let a = g.add_task(e_dsp.into_task("dsp"));
    let b = g.add_task(e_ctrl.into_task("ctrl"));
    g.add_edge(a, b, 8).unwrap();
    let m = mapping_heuristics::load_balanced(&g, 2).unwrap();
    let p = Problem::new(g, m, Platform::new(2, 2)).unwrap();
    let s = mia::analysis::analyze(&p, &RoundRobin::new()).unwrap();
    // Dependent tasks on different cores cannot overlap: no interference.
    assert_eq!(s.total_interference(), Cycles::ZERO);
    assert_eq!(
        s.makespan(),
        p.graph().critical_path().unwrap(),
        "chain matches its critical path"
    );
}

#[test]
fn mapping_strategies_change_interference_not_soundness() {
    let graph = sdf::parse(APP).unwrap().expand(4).unwrap().graph;
    for cores in [2usize, 4] {
        for mapping in [
            mapping_heuristics::layered_cyclic(&graph, cores).unwrap(),
            mapping_heuristics::load_balanced(&graph, cores).unwrap(),
            mapping_heuristics::earliest_finish(&graph, cores).unwrap(),
        ] {
            let p = Problem::new(graph.clone(), mapping, Platform::new(cores, cores)).unwrap();
            let s = mia::analysis::analyze(&p, &RoundRobin::new()).unwrap();
            s.check(&p).unwrap();
            assert!(s.makespan() >= p.graph().critical_path().unwrap());
        }
    }
}

#[test]
fn deadline_separates_schedulable_from_unschedulable() {
    use mia::analysis::{analyze_with, AnalysisOptions, NoopObserver};
    let graph = sdf::parse(APP).unwrap().expand(1).unwrap().graph;
    let mapping = mapping_heuristics::earliest_finish(&graph, 2).unwrap();
    let p = Problem::new(graph, mapping, Platform::new(2, 2)).unwrap();
    let s = mia::analysis::analyze(&p, &RoundRobin::new()).unwrap();
    let tight = AnalysisOptions::new().deadline(s.makespan() - Cycles(1));
    assert!(matches!(
        analyze_with(&p, &RoundRobin::new(), &tight, &mut NoopObserver),
        Err(mia::analysis::AnalysisError::DeadlineExceeded { .. })
    ));
    let exact = AnalysisOptions::new().deadline(s.makespan());
    assert!(analyze_with(&p, &RoundRobin::new(), &exact, &mut NoopObserver).is_ok());
}
