//! Experiment E1: exact reproduction of the paper's Figure 1.

use mia::prelude::*;
use mia::trace;

fn figure1() -> (Problem, [TaskId; 5]) {
    let mut g = TaskGraph::new();
    let n0 = g.add_task(Task::builder("n0").wcet(Cycles(2)));
    let n1 = g.add_task(Task::builder("n1").wcet(Cycles(2)).min_release(Cycles(2)));
    let n2 = g.add_task(Task::builder("n2").wcet(Cycles(1)).min_release(Cycles(4)));
    let n3 = g.add_task(Task::builder("n3").wcet(Cycles(3)));
    let n4 = g.add_task(Task::builder("n4").wcet(Cycles(2)).min_release(Cycles(4)));
    for (s, d) in [(n0, n1), (n0, n2), (n1, n2), (n3, n2), (n3, n4)] {
        g.add_edge(s, d, 1).unwrap();
    }
    let mapping = Mapping::from_assignment(&g, &[0, 1, 1, 2, 3]).unwrap();
    let problem = Problem::new(g, mapping, Platform::new(4, 4)).unwrap();
    (problem, [n0, n1, n2, n3, n4])
}

#[test]
fn schedule_without_interference_ends_at_6() {
    let (p, _) = figure1();
    assert_eq!(p.graph().critical_path().unwrap(), Cycles(6));
}

#[test]
fn incremental_schedule_matches_the_figure() {
    let (p, [n0, n1, n2, n3, n4]) = figure1();
    let s = mia::analysis::analyze(&p, &RoundRobin::new()).unwrap();
    // Global WCRT moves from t = 6 to t = 7.
    assert_eq!(s.makespan(), Cycles(7));
    // Interference boxes of the figure: n0 I:1, n1 I:1, n3 I:2.
    assert_eq!(s.timing(n0).interference, Cycles(1));
    assert_eq!(s.timing(n1).interference, Cycles(1));
    assert_eq!(s.timing(n2).interference, Cycles(0));
    assert_eq!(s.timing(n3).interference, Cycles(2));
    assert_eq!(s.timing(n4).interference, Cycles(0));
    // The resulting time-triggered releases.
    assert_eq!(s.timing(n0).release, Cycles(0));
    assert_eq!(s.timing(n1).release, Cycles(3));
    assert_eq!(s.timing(n2).release, Cycles(6));
    assert_eq!(s.timing(n3).release, Cycles(0));
    assert_eq!(s.timing(n4).release, Cycles(5));
    s.check(&p).unwrap();
}

#[test]
fn baseline_agrees_on_figure1() {
    let (p, _) = figure1();
    let s = mia::baseline::analyze(&p, &RoundRobin::new()).unwrap();
    assert_eq!(s.makespan(), Cycles(7));
    s.check(&p).unwrap();
}

#[test]
fn both_algorithms_compute_identical_timings_here() {
    let (p, _) = figure1();
    let inc = mia::analysis::analyze(&p, &RoundRobin::new()).unwrap();
    let base = mia::baseline::analyze(&p, &RoundRobin::new()).unwrap();
    assert_eq!(inc, base);
}

#[test]
fn gantt_of_figure1_is_renderable() {
    let (p, _) = figure1();
    let s = mia::analysis::analyze(&p, &RoundRobin::new()).unwrap();
    let chart = trace::gantt(&p, &s);
    for core in ["PE0", "PE1", "PE2", "PE3"] {
        assert!(chart.contains(core));
    }
    // Interference columns are drawn.
    assert!(chart.contains('#'));
}

#[test]
fn single_bank_configuration_increases_contention() {
    // Squeezing all traffic into one bank can only worsen (or equal) the
    // per-core-bank layout of the figure.
    let (p, _) = figure1();
    let per_core = mia::analysis::analyze(&p, &RoundRobin::new()).unwrap();

    let mut g = TaskGraph::new();
    let n0 = g.add_task(Task::builder("n0").wcet(Cycles(2)));
    let n1 = g.add_task(Task::builder("n1").wcet(Cycles(2)).min_release(Cycles(2)));
    let n2 = g.add_task(Task::builder("n2").wcet(Cycles(1)).min_release(Cycles(4)));
    let n3 = g.add_task(Task::builder("n3").wcet(Cycles(3)));
    let n4 = g.add_task(Task::builder("n4").wcet(Cycles(2)).min_release(Cycles(4)));
    for (s, d) in [(n0, n1), (n0, n2), (n1, n2), (n3, n2), (n3, n4)] {
        g.add_edge(s, d, 1).unwrap();
    }
    let mapping = Mapping::from_assignment(&g, &[0, 1, 1, 2, 3]).unwrap();
    let single =
        Problem::with_policy(g, mapping, Platform::new(4, 4), BankPolicy::SingleBank).unwrap();
    let s = mia::analysis::analyze(&single, &RoundRobin::new()).unwrap();
    assert!(s.makespan() >= per_core.makespan());
    assert!(s.total_interference() >= per_core.total_interference());
}
