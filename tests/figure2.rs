//! Experiment E2: the cursor mechanism of the paper's Figure 2 — the
//! closed / alive / future partition around the sweeping time cursor.

use mia::analysis::analyze_with;
use mia::prelude::*;
use mia::trace::CursorTrace;

/// Eleven tasks on four cores shaped so that at t = 10 the alive set is
/// {n0, n4, n7, n9} — the state drawn in Figure 2.
fn figure2() -> Problem {
    let mut g = TaskGraph::new();
    let wcets = [30u64, 5, 5, 5, 25, 4, 6, 20, 3, 27, 5];
    let ids: Vec<TaskId> = wcets
        .iter()
        .enumerate()
        .map(|(i, &w)| g.add_task(Task::builder(format!("n{i}")).wcet(Cycles(w))))
        .collect();
    for (s, d) in [(3usize, 4usize), (5, 6), (6, 7), (8, 9), (9, 10)] {
        g.add_edge(ids[s], ids[d], 0).unwrap();
    }
    let mapping = Mapping::from_assignment(&g, &[0, 0, 0, 1, 1, 2, 2, 2, 3, 3, 3]).unwrap();
    Problem::new(g, mapping, Platform::new(4, 4)).unwrap()
}

fn trace() -> CursorTrace {
    let p = figure2();
    let mut trace = CursorTrace::new(p.len());
    analyze_with(&p, &RoundRobin::new(), &AnalysisOptions::new(), &mut trace).unwrap();
    trace
}

#[test]
fn snapshot_at_t10_matches_the_figure() {
    let t = trace();
    let snap = t.snapshot(Cycles(10));
    let ids = |v: &[TaskId]| v.iter().map(|t| t.0).collect::<Vec<_>>();
    assert_eq!(ids(&snap.alive), vec![0, 4, 7, 9]);
    assert_eq!(ids(&snap.closed), vec![3, 5, 6, 8]);
    assert_eq!(ids(&snap.future), vec![1, 2, 10]);
}

#[test]
fn alive_set_never_exceeds_core_count() {
    let t = trace();
    for &at in &t.cursors {
        assert!(t.snapshot(at).alive.len() <= 4, "at {at}");
    }
}

#[test]
fn partition_is_total_and_disjoint_at_every_cursor() {
    let t = trace();
    for &at in &t.cursors {
        let s = t.snapshot(at);
        let mut all: Vec<TaskId> = s
            .closed
            .iter()
            .chain(&s.alive)
            .chain(&s.future)
            .copied()
            .collect();
        all.sort();
        let expected: Vec<TaskId> = (0..11).map(TaskId::from_index).collect();
        assert_eq!(all, expected, "at {at}");
    }
}

#[test]
fn tasks_move_only_forward_through_the_partition() {
    // Once closed, always closed; once opened, never future again.
    let t = trace();
    let mut closed_seen: Vec<TaskId> = Vec::new();
    for &at in &t.cursors {
        let s = t.snapshot(at);
        for c in &closed_seen {
            assert!(s.closed.contains(c), "{c} reverted from closed at {at}");
        }
        closed_seen = s.closed;
    }
}

#[test]
fn cursor_jumps_only_to_finish_dates_or_min_releases() {
    let p = figure2();
    let mut tr = CursorTrace::new(p.len());
    analyze_with(&p, &RoundRobin::new(), &AnalysisOptions::new(), &mut tr).unwrap();
    // With zero demands the schedule is exact; every cursor position must
    // coincide with a task finish date or a minimal release date (§IV,
    // "the possible values for t are tasks end dates and their minimal
    // release dates").
    let s = mia::analysis::analyze(&p, &RoundRobin::new()).unwrap();
    let finishes: Vec<Cycles> = p.graph().task_ids().map(|t| s.timing(t).finish()).collect();
    for &c in tr.cursors.iter().filter(|&&c| c > Cycles::ZERO) {
        assert!(
            finishes.contains(&c) || p.graph().iter().any(|(_, t)| t.min_release() == c),
            "cursor at {c} is neither a finish nor a minimal release"
        );
    }
}
