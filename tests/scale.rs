//! Experiment E5: the conclusion's ">8000 tasks in reasonable time" claim
//! (§VI), plus structural properties at scale.

use std::time::Instant;

use mia::analysis::{analyze_with, AnalysisOptions, NoopObserver};
use mia::dag_gen::{Family, LayeredDag};
use mia::prelude::*;

#[test]
fn eight_thousand_tasks_analyse_quickly() {
    let workload = LayeredDag::new(Family::FixedLayerSize(64).config(8448, 7)).generate();
    let problem = workload.into_problem(&Platform::mppa256_cluster()).unwrap();
    let t0 = Instant::now();
    let report = analyze_with(
        &problem,
        &RoundRobin::new(),
        &AnalysisOptions::new(),
        &mut NoopObserver,
    )
    .unwrap();
    let elapsed = t0.elapsed();
    report.schedule.check(&problem).unwrap();
    // Generous even for debug builds; release runs in well under a second.
    assert!(
        elapsed.as_secs() < 120,
        "8448 tasks took {elapsed:?} — the O(n²) claim is broken"
    );
    assert_eq!(report.schedule.len(), 8448);
}

#[test]
fn alive_set_is_bounded_by_core_count_at_scale() {
    let workload = LayeredDag::new(Family::FixedLayers(64).config(2048, 3)).generate();
    let problem = workload.into_problem(&Platform::mppa256_cluster()).unwrap();
    let report = analyze_with(
        &problem,
        &RoundRobin::new(),
        &AnalysisOptions::new(),
        &mut NoopObserver,
    )
    .unwrap();
    assert!(report.stats.max_alive <= 16);
    // The cursor visits at most "end dates + minimal release dates" many
    // positions (§IV.B: at most 2n).
    assert!(report.stats.cursor_steps <= 2 * problem.len() + 1);
}

#[test]
fn makespan_grows_with_task_count_within_a_family() {
    let platform = Platform::mppa256_cluster();
    let mut last = Cycles::ZERO;
    for n in [128usize, 512, 2048] {
        let p = LayeredDag::new(Family::FixedLayerSize(64).config(n, 11))
            .generate()
            .into_problem(&platform)
            .unwrap();
        let s = mia::analysis::analyze(&p, &RoundRobin::new()).unwrap();
        assert!(s.makespan() > last);
        last = s.makespan();
    }
}
