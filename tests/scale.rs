//! Experiment E5: the conclusion's ">8000 tasks in reasonable time" claim
//! (§VI), plus structural properties at scale.

use std::time::Instant;

use mia::analysis::{analyze_with, AnalysisOptions, NoopObserver};
use mia::dag_gen::{Family, LayeredDag};
use mia::prelude::*;

#[test]
fn eight_thousand_tasks_analyse_quickly() {
    let workload = LayeredDag::new(Family::FixedLayerSize(64).config(8448, 7)).generate();
    let problem = workload.into_problem(&Platform::mppa256_cluster()).unwrap();
    let t0 = Instant::now();
    let report = analyze_with(
        &problem,
        &RoundRobin::new(),
        &AnalysisOptions::new(),
        &mut NoopObserver,
    )
    .unwrap();
    let elapsed = t0.elapsed();
    report.schedule.check(&problem).unwrap();
    // Generous even for debug builds; release runs in well under a second.
    assert!(
        elapsed.as_secs() < 120,
        "8448 tasks took {elapsed:?} — the O(n²) claim is broken"
    );
    assert_eq!(report.schedule.len(), 8448);
}

#[test]
fn alive_set_is_bounded_by_core_count_at_scale() {
    let workload = LayeredDag::new(Family::FixedLayers(64).config(2048, 3)).generate();
    let problem = workload.into_problem(&Platform::mppa256_cluster()).unwrap();
    let report = analyze_with(
        &problem,
        &RoundRobin::new(),
        &AnalysisOptions::new(),
        &mut NoopObserver,
    )
    .unwrap();
    assert!(report.stats.max_alive <= 16);
    // The cursor visits at most "end dates + minimal release dates" many
    // positions (§IV.B: at most 2n).
    assert!(report.stats.cursor_steps <= 2 * problem.len() + 1);
}

/// Pins the 32k-task run end to end: the makespan is a fixed constant,
/// the analysis stays under the 60 s CI budget, and the layer-parallel
/// engine reproduces the sequential result bit for bit (schedule *and*
/// work counters) at scale.
///
/// Release-only: debug builds skip it (`cargo test --release -- --ignored`
/// or plain `cargo test --release` runs it; CI covers the same 32k size
/// through the sweep smoke step).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only: run with cargo test --release"
)]
fn thirty_two_thousand_task_makespan_is_pinned() {
    let workload = LayeredDag::new(Family::FixedLayerSize(64).config(32_000, 7)).generate();
    let problem = workload.into_problem(&Platform::mppa256_cluster()).unwrap();
    let t0 = Instant::now();
    let seq = analyze_with(
        &problem,
        &RoundRobin::new(),
        &AnalysisOptions::new(),
        &mut NoopObserver,
    )
    .unwrap();
    let elapsed = t0.elapsed();
    assert!(
        elapsed.as_secs() < 60,
        "32k tasks took {elapsed:?} — over the CI budget"
    );
    assert_eq!(seq.schedule.makespan(), Cycles(2_894_642));
    assert_eq!(seq.schedule.len(), 32_000);

    let par = mia::analysis::analyze_parallel_with(
        &problem,
        &RoundRobin::new(),
        &AnalysisOptions::new(),
        4,
        &mut NoopObserver,
    )
    .unwrap();
    assert_eq!(par.schedule, seq.schedule);
    assert_eq!(par.stats, seq.stats);
}

/// The full 100k smoke point (ROADMAP "Push the scale axis to the full
/// 100k"): the makespan is a fixed constant and the run stays inside
/// the CI budget — 100 000 tasks analyse in well under a second in
/// release on current hardware, so a 120 s ceiling is pure headroom.
///
/// Release-only, like the 32k pin; the CI sweep step covers the same
/// size through `mia-bench --bin sweep --sizes ...,100000`.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only: run with cargo test --release"
)]
fn one_hundred_thousand_task_makespan_is_pinned() {
    let workload = LayeredDag::new(Family::FixedLayerSize(64).config(100_000, 7)).generate();
    let problem = workload.into_problem(&Platform::mppa256_cluster()).unwrap();
    let t0 = Instant::now();
    let report = analyze_with(
        &problem,
        &RoundRobin::new(),
        &AnalysisOptions::new(),
        &mut NoopObserver,
    )
    .unwrap();
    let elapsed = t0.elapsed();
    assert!(
        elapsed.as_secs() < 120,
        "100k tasks took {elapsed:?} — over the CI budget"
    );
    assert_eq!(report.schedule.makespan(), Cycles(9_056_829));
    assert_eq!(report.schedule.len(), 100_000);
    assert!(report.stats.max_alive <= 16);
    assert!(report.stats.cursor_steps <= 2 * problem.len() + 1);
}

/// The million-task pin (ROADMAP "Raise the scale axis to 1M"): the
/// makespan is a fixed constant, the run stays inside a generous CI
/// budget, and the persistent-pool parallel engine reproduces the
/// sequential result bit for bit — both through the public entry point
/// (auto-gated: real pool on multi-core hosts, sequential fallback
/// elsewhere) and with the pool forced up via a pinned engagement
/// threshold above the platform width (workers spawned and parked, every
/// phase inline — the pool lifecycle at 10⁶ tasks with no handoff tax).
///
/// Release-only, like the 32k/100k pins; CI runs it in the dedicated
/// `scale` job.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only: run with cargo test --release"
)]
fn one_million_task_makespan_is_pinned() {
    let workload = LayeredDag::new(Family::FixedLayerSize(64).config(1_000_000, 7)).generate();
    let problem = workload.into_problem(&Platform::mppa256_cluster()).unwrap();
    let t0 = Instant::now();
    let seq = analyze_with(
        &problem,
        &RoundRobin::new(),
        &AnalysisOptions::new(),
        &mut NoopObserver,
    )
    .unwrap();
    let elapsed = t0.elapsed();
    assert!(
        elapsed.as_secs() < 300,
        "1M tasks took {elapsed:?} — over the CI budget"
    );
    assert_eq!(seq.schedule.makespan(), Cycles(90_817_068));
    assert_eq!(seq.schedule.len(), 1_000_000);
    assert!(seq.stats.max_alive <= 16);
    assert!(seq.stats.cursor_steps <= 2 * problem.len() + 1);

    // Public entry point: pool on hosts with parallelism, fallback
    // elsewhere — bit-identical either way.
    let par = mia::analysis::analyze_parallel_with(
        &problem,
        &RoundRobin::new(),
        &AnalysisOptions::new(),
        16,
        &mut NoopObserver,
    )
    .unwrap();
    assert_eq!(par.schedule, seq.schedule);
    assert_eq!(par.stats, seq.stats);

    // Pool forced up regardless of host: the threshold sits above the
    // 16-core platform width, so workers spawn, park and shut down while
    // every phase runs inline — the persistent-pool lifecycle at 10⁶
    // tasks without paying 10⁶ handoffs on single-CPU CI runners.
    let pinned = mia::analysis::analyze_parallel_with(
        &problem,
        &RoundRobin::new(),
        &AnalysisOptions::new().parallel_engage(17),
        16,
        &mut NoopObserver,
    )
    .unwrap();
    assert_eq!(pinned.schedule, seq.schedule);
    assert_eq!(pinned.stats, seq.stats);
    let info = pinned.parallel.expect("pool spawned");
    assert_eq!(info.workers, 16);
    assert_eq!(info.engage_width, Some(17));
}

#[test]
fn makespan_grows_with_task_count_within_a_family() {
    let platform = Platform::mppa256_cluster();
    let mut last = Cycles::ZERO;
    for n in [128usize, 512, 2048] {
        let p = LayeredDag::new(Family::FixedLayerSize(64).config(n, 11))
            .generate()
            .into_problem(&platform)
            .unwrap();
        let s = mia::analysis::analyze(&p, &RoundRobin::new()).unwrap();
        assert!(s.makespan() > last);
        last = s.makespan();
    }
}
