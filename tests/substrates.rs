//! Integration of the surrounding substrates with the core analysis:
//! cache-classified WCETs, NoC-gated releases, sporadic MRTA and the
//! mapping heuristics, composed the way a full deployment would.

use mia::arbiters::{Fifo, Regulated, RoundRobin, Tdm};
use mia::mapping_heuristics::{anneal, assignment_makespan, heft, AnnealConfig};
use mia::mrta::{
    analyze as analyze_mrta, simulate_sporadic, SporadicSimConfig, SporadicSystem, SporadicTask,
};
use mia::noc::{simulate_flows, worst_case_latencies, Flow, FlowSet, NocConfig, Torus};
use mia::prelude::*;
use mia::sim::{simulate, AccessPattern, SimConfig};
use mia::wcet::cache::{classify, CacheConfig, ReferenceCfg};
use mia::wcet::Cfg;

/// Cache classification → CFG estimate → task → analysis → simulation:
/// the estimates stay sound through the whole chain.
#[test]
fn cache_classified_wcets_survive_the_pipeline() {
    // A kernel whose loop body is fully cached after the first pass.
    let mut refs = ReferenceCfg::new();
    let pre = refs.add_block(vec![0, 1, 2, 3]);
    let body = refs.add_block(vec![0, 1, 2, 3]);
    refs.add_edge(pre, body).unwrap();
    refs.add_edge(body, body).unwrap();
    let classes = classify(&refs, &CacheConfig::new(8, 2)).unwrap();
    assert_eq!(classes.misses(body), 0);

    let (pre_cy, pre_acc) = classes.block_weight(pre, 1, 10);
    let (body_cy, body_acc) = classes.block_weight(body, 1, 10);
    let mut loop_body = Cfg::new();
    loop_body.add_block(body_cy + 2, body_acc + 1);
    let mut cfg = Cfg::new();
    let a = cfg.add_block(pre_cy, pre_acc);
    let b = cfg.add_loop(loop_body, 16);
    cfg.add_edge(a, b).unwrap();
    let est = cfg.estimate().unwrap();

    let mut g = TaskGraph::new();
    for name in ["k0", "k1"] {
        g.add_task(
            Task::builder(name)
                .wcet(est.wcet)
                .private_demand(BankDemand::single(BankId(0), est.accesses)),
        );
    }
    let m = Mapping::from_assignment(&g, &[0, 1]).unwrap();
    let p = Problem::with_policy(g, m, Platform::new(2, 2), BankPolicy::SingleBank).unwrap();
    let s = mia::analysis::analyze(&p, &RoundRobin::new()).unwrap();
    s.check(&p).unwrap();
    let run = simulate(&p, &s, &SimConfig::new(AccessPattern::BurstStart)).unwrap();
    assert!(run.first_violation(&s).is_none());
}

/// NoC-gated releases compose: the consumer entry task is never analysed
/// to start before the worst-case frame arrival, and the flow simulator
/// confirms the arrival bound.
#[test]
fn noc_bounds_gate_consumer_releases() {
    let torus = Torus::mppa256();
    let src = torus.node(0, 0);
    let dst = torus.node(3, 2);

    let mut flows = FlowSet::new();
    let frame = flows.add(Flow::new(src, dst, 128).released_at(Cycles(500)));
    let noise = flows.add(Flow::new(torus.node(1, 0), dst, 64));
    let cfg = NocConfig::default();
    let bounds = worst_case_latencies(&torus, &flows, &cfg);
    let sim = simulate_flows(&torus, &flows, &cfg);
    assert!(sim.delivered(frame) <= bounds[frame.index()]);
    assert!(sim.delivered(noise) <= bounds[noise.index()]);

    let mut g = TaskGraph::new();
    let entry = g.add_task(
        Task::builder("entry")
            .wcet(Cycles(100))
            .min_release(bounds[frame.index()]),
    );
    let work = g.add_task(Task::builder("work").wcet(Cycles(400)));
    g.add_edge(entry, work, 32).unwrap();
    let m = Mapping::from_assignment(&g, &[0, 1]).unwrap();
    let p = Problem::new(g, m, Platform::mppa256_cluster()).unwrap();
    let s = mia::analysis::analyze(&p, &RoundRobin::new()).unwrap();
    assert!(s.timing(entry).release >= bounds[frame.index()]);
    assert!(s.makespan() >= bounds[frame.index()] + Cycles(500));
}

/// The MRTA bounds hold under every shipped arbiter, and the arbiters
/// order exactly as their per-bank bounds do (RR ≤ FIFO, RR ≤ TDM).
#[test]
fn mrta_bounds_order_by_arbiter_pessimism() {
    let tasks = vec![
        SporadicTask::builder("a")
            .wcet(Cycles(30))
            .period(Cycles(400))
            .demand(BankDemand::single(BankId(0), 10))
            .build()
            .unwrap(),
        SporadicTask::builder("b")
            .wcet(Cycles(50))
            .period(Cycles(600))
            .demand(BankDemand::single(BankId(0), 20))
            .build()
            .unwrap(),
    ];
    let system = SporadicSystem::new(tasks, &[0, 1], Platform::new(2, 2)).unwrap();
    let rr = analyze_mrta(&system, &RoundRobin::new());
    let fifo = analyze_mrta(&system, &Fifo::new());
    let tdm = analyze_mrta(&system, &Tdm::new());
    let regulated = analyze_mrta(&system, &Regulated::new(2, 128));
    for i in 0..system.len() {
        assert!(rr.response(i) <= fifo.response(i));
        assert!(rr.response(i) <= tdm.response(i));
        assert!(regulated.response(i) <= rr.response(i));
    }
    // And the simulator respects the tightest sound bound (RR).
    assert!(rr.schedulable());
    let sim = simulate_sporadic(&system, &SporadicSimConfig::new());
    for i in 0..system.len() {
        assert!(sim.max_response(i).unwrap() <= rr.response(i));
    }
}

/// HEFT and annealing both feed valid problems whose analysed schedules
/// hold up in simulation; annealing never worsens its own cost proxy.
#[test]
fn mapping_heuristics_feed_the_analysis() {
    use mia::dag_gen::{Family, LayeredDag};
    let mut cfg = Family::FixedLayerSize(8).config(48, 77);
    cfg.accesses = 40..=80; // keep demands within WCETs for the simulator
    cfg.edge_words = 0..=8;
    let w = LayeredDag::new(cfg).generate();

    let heft_mapping = heft(&w.graph, 8, 1).unwrap();
    let annealed = anneal(
        &w.graph,
        8,
        &heft_mapping,
        &AnnealConfig {
            iterations: 400,
            ..AnnealConfig::default()
        },
    )
    .unwrap();

    let heft_asg: Vec<usize> = w
        .graph
        .task_ids()
        .map(|t| heft_mapping.core_of(t).index())
        .collect();
    let ann_asg: Vec<usize> = w
        .graph
        .task_ids()
        .map(|t| annealed.core_of(t).index())
        .collect();
    assert!(
        assignment_makespan(&w.graph, &ann_asg).unwrap()
            <= assignment_makespan(&w.graph, &heft_asg).unwrap()
    );

    for mapping in [heft_mapping, annealed] {
        let p = Problem::new(w.graph.clone(), mapping, Platform::new(16, 16)).unwrap();
        let s = mia::analysis::analyze(&p, &RoundRobin::new()).unwrap();
        s.check(&p).unwrap();
        let run = simulate(&p, &s, &SimConfig::new(AccessPattern::Uniform)).unwrap();
        assert!(run.first_violation(&s).is_none());
    }
}

/// The event-driven cursor is a drop-in replacement across the whole
/// public pipeline (SDF front end included).
#[test]
fn event_driven_cursor_is_a_drop_in_replacement() {
    let app = "
actor src  wcet=50  accesses=8
actor mid  wcet=120 accesses=16
actor sink wcet=70  accesses=10
channel src -> mid  produce=2 consume=1 words=4
channel mid -> sink produce=1 consume=2 words=2
";
    let graph = mia::sdf::parse(app).unwrap();
    let expansion = graph.expand(3).unwrap();
    let mapping = mia::mapping_heuristics::load_balanced(&expansion.graph, 4).unwrap();
    let p = Problem::new(expansion.graph, mapping, Platform::new(4, 4)).unwrap();
    let scan = mia::analysis::analyze(&p, &RoundRobin::new()).unwrap();
    let heap = mia::analysis::analyze_event_driven(&p, &RoundRobin::new()).unwrap();
    assert_eq!(scan, heap);
}
