//! Workspace smoke test: the paper's core soundness claim on Figure 1.
//!
//! The incremental O(n²) analysis (`mia-core`) must never be *less*
//! precise than the O(n⁴) baseline (`mia-baseline`): for every task its
//! reported finish date (release + WCET + interference) is at most the
//! baseline's, and both algorithms agree on the total makespan. This is
//! exercised across every arbiter the facade exports, so a broken
//! re-export or a drifted crate API fails here before anything subtler.

use mia::prelude::*;

/// The paper's Figure 1 system: 5 tasks on 4 cores, 4 banks.
fn figure1() -> Problem {
    let mut g = TaskGraph::new();
    let n0 = g.add_task(Task::builder("n0").wcet(Cycles(2)));
    let n1 = g.add_task(Task::builder("n1").wcet(Cycles(2)).min_release(Cycles(2)));
    let n2 = g.add_task(Task::builder("n2").wcet(Cycles(1)).min_release(Cycles(4)));
    let n3 = g.add_task(Task::builder("n3").wcet(Cycles(3)));
    let n4 = g.add_task(Task::builder("n4").wcet(Cycles(2)).min_release(Cycles(4)));
    for (s, d) in [(n0, n1), (n0, n2), (n1, n2), (n3, n2), (n3, n4)] {
        g.add_edge(s, d, 1).unwrap();
    }
    let mapping = Mapping::from_assignment(&g, &[0, 1, 1, 2, 3]).unwrap();
    Problem::new(g, mapping, Platform::new(4, 4)).unwrap()
}

fn check_incremental_not_later(arbiter: &dyn Arbiter, label: &str) {
    let p = figure1();
    let incremental = analyze(&p, &arbiter).unwrap();
    let baseline = analyze_baseline(&p, &arbiter).unwrap();

    // Both are sound schedules for the problem.
    incremental.check(&p).unwrap();
    baseline.check(&p).unwrap();

    // Task by task, the incremental analysis never reports a later
    // finish date than the baseline.
    for (inc, base) in incremental.timings().iter().zip(baseline.timings()) {
        assert!(
            inc.finish() <= base.finish(),
            "{label}: incremental finish {:?} later than baseline {:?}",
            inc.finish(),
            base.finish()
        );
    }

    // And the global anchor agrees exactly.
    assert_eq!(
        incremental.makespan(),
        baseline.makespan(),
        "{label}: makespan mismatch"
    );
}

#[test]
fn incremental_never_finishes_later_than_baseline_on_figure1() {
    check_incremental_not_later(&RoundRobin::new(), "round-robin");
    check_incremental_not_later(&MppaTree::cluster16(), "mppa-tree");
    check_incremental_not_later(&Tdm::new(), "tdm");
    check_incremental_not_later(&Fifo::new(), "fifo");
    check_incremental_not_later(&FixedPriority::by_core_id(), "fixed-priority");
}

#[test]
fn figure1_reaches_the_papers_makespan() {
    let p = figure1();
    let s = analyze(&p, &RoundRobin::new()).unwrap();
    assert_eq!(s.makespan(), Cycles(7));
}
