//! Workspace smoke test: the paper's core soundness claim on Figure 1.
//!
//! The incremental O(n²) analysis (`mia-core`) must never be *less*
//! precise than the O(n⁴) baseline (`mia-baseline`): for every task its
//! reported finish date (release + WCET + interference) is at most the
//! baseline's, and both algorithms agree on the total makespan. This is
//! exercised across every arbiter the facade exports, so a broken
//! re-export or a drifted crate API fails here before anything subtler.

use mia::prelude::*;

/// The paper's Figure 1 system: 5 tasks on 4 cores, 4 banks.
fn figure1() -> Problem {
    let mut g = TaskGraph::new();
    let n0 = g.add_task(Task::builder("n0").wcet(Cycles(2)));
    let n1 = g.add_task(Task::builder("n1").wcet(Cycles(2)).min_release(Cycles(2)));
    let n2 = g.add_task(Task::builder("n2").wcet(Cycles(1)).min_release(Cycles(4)));
    let n3 = g.add_task(Task::builder("n3").wcet(Cycles(3)));
    let n4 = g.add_task(Task::builder("n4").wcet(Cycles(2)).min_release(Cycles(4)));
    for (s, d) in [(n0, n1), (n0, n2), (n1, n2), (n3, n2), (n3, n4)] {
        g.add_edge(s, d, 1).unwrap();
    }
    let mapping = Mapping::from_assignment(&g, &[0, 1, 1, 2, 3]).unwrap();
    Problem::new(g, mapping, Platform::new(4, 4)).unwrap()
}

fn check_incremental_not_later(arbiter: &dyn Arbiter, label: &str) {
    let p = figure1();
    let incremental = analyze(&p, &arbiter).unwrap();
    let baseline = analyze_baseline(&p, &arbiter).unwrap();

    // Both are sound schedules for the problem.
    incremental.check(&p).unwrap();
    baseline.check(&p).unwrap();

    // Task by task, the incremental analysis never reports a later
    // finish date than the baseline.
    for (inc, base) in incremental.timings().iter().zip(baseline.timings()) {
        assert!(
            inc.finish() <= base.finish(),
            "{label}: incremental finish {:?} later than baseline {:?}",
            inc.finish(),
            base.finish()
        );
    }

    // And the global anchor agrees exactly.
    assert_eq!(
        incremental.makespan(),
        baseline.makespan(),
        "{label}: makespan mismatch"
    );
}

#[test]
fn incremental_never_finishes_later_than_baseline_on_figure1() {
    check_incremental_not_later(&RoundRobin::new(), "round-robin");
    check_incremental_not_later(&MppaTree::cluster16(), "mppa-tree");
    check_incremental_not_later(&Tdm::new(), "tdm");
    check_incremental_not_later(&Fifo::new(), "fifo");
    check_incremental_not_later(&FixedPriority::by_core_id(), "fixed-priority");
}

#[test]
fn figure1_reaches_the_papers_makespan() {
    let p = figure1();
    let s = analyze(&p, &RoundRobin::new()).unwrap();
    assert_eq!(s.makespan(), Cycles(7));
}

/// Every property suite in the workspace must keep a committed
/// regression file at the canonical upstream-proptest path
/// (`<crate>/proptest-regressions/<suite>.txt`). The vendored
/// deterministic stand-in never writes seeds itself, so without this
/// meta-test new suites silently drift away from the convention — and
/// the canonical location would be missing the day the real `proptest`
/// is swapped back in (see ROADMAP "Swappable vendor stubs").
#[test]
fn every_proptest_suite_has_a_committed_regression_file() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut suite_roots = vec![root.to_path_buf()];
    for entry in std::fs::read_dir(root.join("crates")).expect("crates dir") {
        suite_roots.push(entry.expect("crate dir").path());
    }

    // The macro invocation every property suite contains, assembled at
    // run time so this very file does not match its own needle.
    let needle: String = ["proptest", "! {"].concat();
    let mut checked = 0usize;
    let mut missing = Vec::new();
    for crate_root in suite_roots {
        let tests = crate_root.join("tests");
        if !tests.is_dir() {
            continue;
        }
        for entry in std::fs::read_dir(&tests).expect("tests dir") {
            let path = entry.expect("test file").path();
            if path.extension().is_none_or(|e| e != "rs") {
                continue;
            }
            let source = std::fs::read_to_string(&path).expect("readable test source");
            if !source.contains(&needle) {
                continue;
            }
            checked += 1;
            let stem = path
                .file_stem()
                .expect("stem")
                .to_string_lossy()
                .into_owned();
            let canonical = crate_root
                .join("proptest-regressions")
                .join(format!("{stem}.txt"));
            if !canonical.is_file() {
                missing.push(format!(
                    "{} (expected {})",
                    path.strip_prefix(root).unwrap_or(&path).display(),
                    canonical.strip_prefix(root).unwrap_or(&canonical).display()
                ));
            }
        }
    }

    assert!(
        checked >= 13,
        "found only {checked} property suites — did the tests move?"
    );
    assert!(
        missing.is_empty(),
        "property suites without a committed canonical regression file:\n  {}",
        missing.join("\n  ")
    );
}
