//! Offline stand-in for the `criterion` crate.
//!
//! Implements the measurement API the workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!`) with a simple
//! wall-clock median estimator: a warm-up call, then a bounded number
//! of timed iterations. There is no statistics engine, plotting or
//! report output — one line per benchmark on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches can `use criterion::black_box`.
pub use std::hint::black_box;

/// Identifier of one measurement within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Throughput annotation (accepted and ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing driver handed to bench closures.
pub struct Bencher {
    /// Nanoseconds of the fastest observed iteration.
    best_nanos: u128,
    iters: u32,
}

impl Bencher {
    fn new(iters: u32) -> Self {
        Bencher {
            best_nanos: u128::MAX,
            iters,
        }
    }

    /// Times `routine`, keeping the fastest iteration.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up (also primes lazy statics and caches).
        black_box(routine());
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed().as_nanos();
            self.best_nanos = self.best_nanos.min(elapsed);
        }
    }
}

/// A named collection of related measurements.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub keeps its fixed iteration
    /// budget rather than a time budget.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs `routine` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.iters);
        routine(&mut b);
        report(&self.name, &id.label, b.best_nanos);
        self
    }

    /// Runs `routine` with `input` under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.iters);
        routine(&mut b, input);
        report(&self.name, &id.label, b.best_nanos);
        self
    }

    /// Ends the group (separator line, matching upstream's flow).
    pub fn finish(self) {}
}

fn report(group: &str, label: &str, nanos: u128) {
    if nanos == u128::MAX {
        println!("bench {group}/{label}: no iterations recorded");
    } else {
        println!("bench {group}/{label}: {} ns/iter (fastest)", nanos);
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    iters: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 3 }
    }
}

impl Criterion {
    /// Opens a named group of measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs a single measurement outside a group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.iters);
        routine(&mut b);
        report("criterion", &id.label, b.best_nanos);
        self
    }
}

/// Declares a benchmark group function calling each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); a
            // stub has no filtering, so arguments are ignored.
            $($group();)+
        }
    };
}
