//! `any::<T>()` — default strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized + 'static {
    /// Draws an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// A finite float in `[0, 1)` — enough for coefficients, and never a
    /// NaN/∞ surprise in arithmetic properties.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for a primitive type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
