//! Offline stand-in for the `proptest` crate.
//!
//! Provides the strategy combinators, collection strategies and the
//! `proptest!` / `prop_assert*` macros that the workspace's property
//! suites use. Sampling is fully deterministic: each test function
//! derives its RNG stream from the test name and the case index, so a
//! failure reproduces by re-running the same test binary — no external
//! regression files are needed (the committed `proptest-regressions/`
//! directories document this).
//!
//! Differences from upstream, by design:
//! * no shrinking — failures report the case index instead,
//! * no persistence files,
//! * `ProptestConfig` only carries the case count.

pub mod strategy;

pub mod test_runner;

pub mod arbitrary;

/// Collection strategies (`vec`, `btree_map`).
pub mod collection {
    use crate::strategy::{BoxedStrategy, Strategy};
    use std::collections::BTreeMap;
    use std::ops::{Range, RangeInclusive};

    /// Size specification for generated collections: an exact length or a
    /// (half-open / inclusive) range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut crate::test_runner::TestRng) -> usize {
            if self.lo >= self.hi_inclusive {
                self.lo
            } else {
                self.lo + (rng.next_u64() as usize) % (self.hi_inclusive - self.lo + 1)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(
        element: S,
        size: impl Into<SizeRange>,
    ) -> BoxedStrategy<Vec<S::Value>> {
        let size = size.into();
        BoxedStrategy::from_fn(move |rng| {
            let n = size.pick(rng);
            (0..n).map(|_| element.sample(rng)).collect()
        })
    }

    /// Strategy for `BTreeMap<K, V>`; duplicate keys collapse, so maps may
    /// come out smaller than the drawn size (as in upstream proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        keys: K,
        values: V,
        size: impl Into<SizeRange>,
    ) -> BoxedStrategy<BTreeMap<K::Value, V::Value>>
    where
        K::Value: Ord,
    {
        let size = size.into();
        BoxedStrategy::from_fn(move |rng| {
            let n = size.pick(rng);
            (0..n)
                .map(|_| (keys.sample(rng), values.sample(rng)))
                .collect()
        })
    }
}

/// Strategies picking from explicit candidate lists.
pub mod sample {
    use crate::strategy::BoxedStrategy;

    /// Strategy choosing uniformly among the given values.
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        BoxedStrategy::from_fn(move |rng| {
            let idx = rng.below(options.len() as u64) as usize;
            options[idx].clone()
        })
    }
}

/// The glob-import module: strategies, config, assertion macros.
pub mod prelude {
    /// Alias of the crate root, so `prop::collection::vec(..)` etc.
    /// resolve after a prelude glob import (as in upstream proptest).
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (not panicking directly) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    l,
                    r,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Builds a strategy choosing uniformly among the given strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares deterministic property tests.
///
/// Supported grammar (the subset upstream `proptest!` accepts and this
/// workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(x in strategy, y in strategy) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rejected: u32 = 0;
            for case in 0..config.cases {
                let mut runner_rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name), case);
                $(let $pat = $crate::strategy::Strategy::sample(&($strategy), &mut runner_rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            msg
                        );
                    }
                }
            }
            assert!(
                rejected < config.cases,
                "proptest `{}` rejected every generated case",
                stringify!($name)
            );
        }
    )*};
}
