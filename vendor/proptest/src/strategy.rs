//! The [`Strategy`] trait and its combinators.
//!
//! Everything funnels into [`BoxedStrategy`], a cheaply clonable,
//! type-erased sampling function. There is no shrinking: the harness is
//! deterministic, so a failing case is identified by its case index.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// Maximum resampling attempts before a `prop_filter`/`prop_filter_map`
/// strategy gives up. Generously high: filters in this workspace reject
/// roughly half the candidates.
const MAX_REJECTS: u32 = 10_000;

/// A generator of values for property tests.
pub trait Strategy: 'static {
    /// The type of generated values.
    type Value: 'static;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases this strategy behind a clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy::from_fn(move |rng| self.sample(rng))
    }

    /// Maps generated values through `f`.
    fn prop_map<U: 'static, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        BoxedStrategy::from_fn(move |rng| f(self.sample(rng)))
    }

    /// Derives a second strategy from each generated value and samples it.
    fn prop_flat_map<S2, F>(self, f: F) -> BoxedStrategy<S2::Value>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + 'static,
    {
        BoxedStrategy::from_fn(move |rng| f(self.sample(rng)).sample(rng))
    }

    /// Keeps only values satisfying `pred`, resampling otherwise.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        BoxedStrategy::from_fn(move |rng| {
            for _ in 0..MAX_REJECTS {
                let v = self.sample(rng);
                if pred(&v) {
                    return v;
                }
            }
            panic!("prop_filter({reason:?}) rejected {MAX_REJECTS} candidates");
        })
    }

    /// Maps values through a partial function, resampling on `None`.
    fn prop_filter_map<U: 'static, F>(self, reason: &'static str, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U> + 'static,
    {
        BoxedStrategy::from_fn(move |rng| {
            for _ in 0..MAX_REJECTS {
                if let Some(u) = f(self.sample(rng)) {
                    return u;
                }
            }
            panic!("prop_filter_map({reason:?}) rejected {MAX_REJECTS} candidates");
        })
    }

    /// Builds a recursive strategy: `self` generates leaves and `branch`
    /// wraps an inner strategy into composite values, nested at most
    /// `depth` levels. The `_desired_size`/`_expected_branch` tuning knobs
    /// of upstream proptest are accepted and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        S2: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let composite = branch(current).boxed();
            current = OneOf::new(vec![leaf.clone(), composite]).boxed();
        }
        current
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T> {
    sampler: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sampler: Rc::clone(&self.sampler),
        }
    }
}

impl<T: 'static> BoxedStrategy<T> {
    /// Wraps a sampling function.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy {
            sampler: Rc::new(f),
        }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sampler)(rng)
    }

    fn boxed(self) -> BoxedStrategy<T> {
        self
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among strategies of a common value type
/// (built by the `prop_oneof!` macro).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: 'static> OneOf<T> {
    /// Wraps the given non-empty list of options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T: 'static> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (rng.below(span) as i128 + self.start as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (rng.below(span) as i128 + lo as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}
