//! Deterministic test harness types: configuration, RNG and case errors.

/// Configuration for a `proptest!` block.
///
/// Only the case count is configurable; runs are always deterministic
/// (seeded from the test name and case index).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Builds a configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases: bounded so CI time stays predictable.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's inputs failed a `prop_assume!` precondition; it is
    /// skipped, not counted as a failure.
    Reject(String),
    /// A `prop_assert*!` failed; the whole property fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Deterministic splitmix64 stream, seeded per (test, case).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG whose stream is a pure function of `test_name` and `case`.
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}
