//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) slice of the `rand` API the workspace
//! uses: a seedable deterministic generator ([`rngs::StdRng`]), the
//! [`SeedableRng`] constructor trait, and the [`RngExt`] sampling
//! extension (`random_range`, `random_bool`).
//!
//! The generator is xoshiro256++ seeded through splitmix64, so streams
//! are reproducible across platforms and runs — exactly what the
//! deterministic workload generators and simulators need. It is *not*
//! cryptographically secure and does not try to match upstream `rand`
//! value-for-value.

/// Core pseudo-random source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be drawn uniformly from a half-open or inclusive range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws a value in `[lo, hi)`; `hi` is exclusive and must exceed `lo`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Draws a value in `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + lo as i128;
                v as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128 + lo as i128;
                v as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in random_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + (hi - lo) * unit
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        // The closed endpoint has measure zero; treat like half-open.
        Self::sample_half_open(rng, lo, hi)
    }
}

/// Range forms accepted by [`RngExt::random_range`].
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl<T: SampleUniform> SampleRange for std::ops::Range<T> {
    type Output = T;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange for std::ops::RangeInclusive<T> {
    type Output = T;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws a value uniformly from `range`.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Alias kept for source compatibility with upstream `rand`.
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5usize..=9);
            assert!((5..=9).contains(&w));
            let f = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
