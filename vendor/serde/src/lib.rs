//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the data-model subset the workspace needs:
//! [`Serialize`]/[`Deserialize`] convert values to and from a
//! self-describing [`Value`] tree, and the companion `serde_derive`
//! proc-macro crate generates impls for structs and enums (honouring
//! `#[serde(transparent)]`, `#[serde(default)]` and
//! `#[serde(default = "path")]`).
//!
//! `serde_json` (also vendored) renders [`Value`] trees as JSON text and
//! parses JSON back. The wire format matches what upstream
//! serde/serde_json would produce for the same derives: maps for named
//! structs, strings for unit enum variants, externally tagged maps for
//! data-carrying variants, and the inner value for `transparent`
//! newtypes.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{DeserializeError, Value};

/// Conversion of a value into the self-describing [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction of a value from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `Self` out of `v`.
    fn from_value(v: &Value) -> Result<Self, DeserializeError>;
}

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeserializeError> {
                let n = v.as_u64().ok_or_else(|| v.unexpected("unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| DeserializeError::new(format!(
                    "{} out of range for {}", n, stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeserializeError> {
                let n = v.as_i64().ok_or_else(|| v.unexpected("integer"))?;
                <$t>::try_from(n).map_err(|_| DeserializeError::new(format!(
                    "{} out of range for {}", n, stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        v.as_f64().ok_or_else(|| v.unexpected("number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        Ok(v.as_f64().ok_or_else(|| v.unexpected("number"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(other.unexpected("boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(other.unexpected("string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(other.unexpected("single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(other.unexpected("array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeserializeError> {
                let items = match v {
                    Value::Seq(items) => items,
                    other => return Err(other.unexpected("tuple array")),
                };
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeserializeError::new(format!(
                        "expected array of {expected} elements, got {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value().into_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((K::from_value(&Value::key_to_value(k))?, V::from_value(val)?)))
                .collect(),
            other => Err(other.unexpected("object")),
        }
    }
}
