//! The self-describing value tree shared by `serde` and `serde_json`.

use std::fmt;

/// A JSON-shaped value: the intermediate representation between Rust
/// values and serialized text.
///
/// Object entries preserve insertion order so serialized output is
/// stable and matches field declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative (or signed-typed) integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object, as ordered key/value entries.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Numeric view as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) => u64::try_from(n).ok(),
            // Strict upper bound: `u64::MAX as f64` rounds up to 2^64,
            // which is one past the last representable u64.
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f < u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Numeric view as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) => i64::try_from(n).ok(),
            // Strict upper bound: `i64::MAX as f64` rounds up to 2^63.
            Value::Float(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f < i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// Numeric view as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// One-word description used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::UInt(_) | Value::Int(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }

    /// Builds a "expected X, found Y" error for this value.
    pub fn unexpected(&self, expected: &str) -> DeserializeError {
        DeserializeError::new(format!("expected {expected}, found {}", self.kind()))
    }

    /// Renders this value as a JSON object key. JSON keys are strings, so
    /// scalar keys (numeric ids, names) are stringified.
    pub fn into_key(self) -> String {
        match self {
            Value::Str(s) => s,
            Value::UInt(n) => n.to_string(),
            Value::Int(n) => n.to_string(),
            Value::Bool(b) => b.to_string(),
            other => panic!("unsupported map key type: {}", other.kind()),
        }
    }

    /// Reinterprets an object key as a value, undoing [`Value::into_key`].
    pub fn key_to_value(key: &str) -> Value {
        if let Ok(n) = key.parse::<u64>() {
            Value::UInt(n)
        } else if let Ok(n) = key.parse::<i64>() {
            Value::Int(n)
        } else {
            Value::Str(key.to_owned())
        }
    }
}

impl Value {
    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Shared `null` for out-of-bounds / missing-key indexing, mirroring
/// `serde_json`'s total `Index` behaviour.
static NULL: Value = Value::Null;

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Seq(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty => $view:ident / $conv:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.$view() == Some(*other as $conv)
            }
        }
    )*};
}

impl_value_eq_num!(
    u8 => as_u64 / u64, u16 => as_u64 / u64, u32 => as_u64 / u64,
    u64 => as_u64 / u64, usize => as_u64 / u64,
    i8 => as_i64 / i64, i16 => as_i64 / i64, i32 => as_i64 / i64,
    i64 => as_i64 / i64, isize => as_i64 / i64,
    f64 => as_f64 / f64
);

impl crate::Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl crate::Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        Ok(v.clone())
    }
}

/// Error produced when a [`Value`] tree does not match the target type.
#[derive(Debug, Clone)]
pub struct DeserializeError {
    message: String,
}

impl DeserializeError {
    /// Builds an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        DeserializeError {
            message: message.into(),
        }
    }

    /// A field required by the target type is absent.
    pub fn missing_field(type_name: &str, field: &str) -> Self {
        DeserializeError::new(format!("missing field `{field}` for `{type_name}`"))
    }
}

impl fmt::Display for DeserializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeserializeError {}
