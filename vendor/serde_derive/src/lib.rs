//! Offline stand-in for `serde_derive`.
//!
//! Derives `Serialize`/`Deserialize` impls targeting the vendored
//! `serde` crate's `Value` data model. Implemented directly on
//! `proc_macro` token trees (no `syn`/`quote`, which are equally
//! unavailable offline); the generated impl is assembled as source text
//! and re-parsed.
//!
//! Supported shapes — the ones the workspace uses:
//! * structs with named fields (`#[serde(default)]`,
//!   `#[serde(default = "path")]` per field),
//! * newtype / tuple structs (newtypes serialize transparently, matching
//!   upstream serde; `#[serde(transparent)]` is accepted and implied),
//! * enums with unit, tuple and struct variants (externally tagged),
//! * lifetime-generic containers (for borrowing serializers).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    /// `None`: required. `Some(None)`: `#[serde(default)]`.
    /// `Some(Some(path))`: `#[serde(default = "path")]`.
    default: Option<Option<String>>,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Container {
    name: String,
    generics: String,
    transparent: bool,
    body: Body,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let container = parse_container(input);
    let code = match mode {
        Mode::Serialize => gen_serialize(&container),
        Mode::Deserialize => gen_deserialize(&container),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------- parsing

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }
}

#[derive(Default)]
struct SerdeAttrs {
    transparent: bool,
    default: Option<Option<String>>,
}

/// Consumes leading `#[...]` attributes, extracting serde ones.
fn parse_attrs(cur: &mut Cursor) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while cur.at_punct('#') {
        cur.next();
        let group = match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde_derive: malformed attribute near {other:?}"),
        };
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        let is_serde =
            matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
        if !is_serde {
            continue;
        }
        let args = match inner.get(1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
            _ => continue,
        };
        let mut args = Cursor::new(args);
        while let Some(tok) = args.next() {
            let word = match tok {
                TokenTree::Ident(i) => i.to_string(),
                TokenTree::Punct(p) if p.as_char() == ',' => continue,
                other => panic!("serde_derive: unsupported serde attribute token {other}"),
            };
            match word.as_str() {
                "transparent" => attrs.transparent = true,
                "default" => {
                    if args.at_punct('=') {
                        args.next();
                        match args.next() {
                            Some(TokenTree::Literal(lit)) => {
                                let path = lit.to_string();
                                let path = path.trim_matches('"').to_owned();
                                attrs.default = Some(Some(path));
                            }
                            other => panic!(
                                "serde_derive: expected string after default =, got {other:?}"
                            ),
                        }
                    } else {
                        attrs.default = Some(None);
                    }
                }
                other => panic!("serde_derive: unsupported serde attribute `{other}`"),
            }
        }
    }
    attrs
}

/// Skips `pub` / `pub(...)` visibility.
fn skip_visibility(cur: &mut Cursor) {
    if cur.at_ident("pub") {
        cur.next();
        if matches!(cur.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            cur.next();
        }
    }
}

/// Skips a type, i.e. tokens until a `,` at angle-bracket depth zero.
fn skip_type(cur: &mut Cursor) {
    let mut depth = 0i32;
    while let Some(tok) = cur.peek() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        cur.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let attrs = parse_attrs(&mut cur);
        skip_visibility(&mut cur);
        let name = match cur.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&mut cur);
        if cur.at_punct(',') {
            cur.next();
        }
        fields.push(Field {
            name,
            default: attrs.default,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    if cur.peek().is_none() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    while let Some(tok) = cur.next() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            // A trailing comma does not start a new field.
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 && cur.peek().is_some() => {
                count += 1;
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while cur.peek().is_some() {
        let _attrs = parse_attrs(&mut cur);
        let name = match cur.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let kind = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                cur.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cur.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        if cur.at_punct(',') {
            cur.next();
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_container(input: TokenStream) -> Container {
    let mut cur = Cursor::new(input);
    let attrs = parse_attrs(&mut cur);
    skip_visibility(&mut cur);
    let keyword = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    let name = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected container name, got {other:?}"),
    };
    let mut generics = String::new();
    if cur.at_punct('<') {
        let mut depth = 0i32;
        let mut collected: Vec<TokenTree> = Vec::new();
        loop {
            let tok = cur.next().expect("serde_derive: unterminated generics");
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if depth >= 1
                && !(depth == 1 && matches!(&tok, TokenTree::Punct(p) if p.as_char() == '<'))
            {
                collected.push(tok.clone());
            }
        }
        generics = collected.into_iter().collect::<TokenStream>().to_string();
        if generics.contains(':') {
            panic!("serde_derive: bounded generics are not supported offline");
        }
    }
    if cur.at_ident("where") {
        panic!("serde_derive: where clauses are not supported offline");
    }
    let body = match keyword.as_str() {
        "struct" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => panic!("serde_derive: unsupported struct body {other:?}"),
        },
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unsupported enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    };
    Container {
        name,
        generics,
        transparent: attrs.transparent,
        body,
    }
}

// ------------------------------------------------------------- generation

fn impl_header(c: &Container, trait_name: &str) -> String {
    if c.generics.is_empty() {
        format!("impl ::serde::{} for {}", trait_name, c.name)
    } else {
        format!(
            "impl<{g}> ::serde::{t} for {n}<{g}>",
            g = c.generics,
            t = trait_name,
            n = c.name
        )
    }
}

fn gen_serialize(c: &Container) -> String {
    let body = match &c.body {
        Body::NamedStruct(fields) => {
            if c.transparent {
                assert!(
                    fields.len() == 1,
                    "serde_derive: transparent requires exactly one field"
                );
                format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
            } else {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n}))",
                            n = f.name
                        )
                    })
                    .collect();
                format!("::serde::Value::Map(vec![{}])", entries.join(", "))
            }
        }
        // Newtype structs serialize transparently, like upstream serde.
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.kind {
                    VariantKind::Unit => format!(
                        "{}::{} => ::serde::Value::Str(\"{}\".to_string()),",
                        c.name, v.name, v.name
                    ),
                    VariantKind::Tuple(1) => format!(
                        "{n}::{v}(x0) => ::serde::Value::Map(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::to_value(x0))]),",
                        n = c.name,
                        v = v.name
                    ),
                    VariantKind::Tuple(k) => {
                        let binds: Vec<String> = (0..*k).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = (0..*k)
                            .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                            .collect();
                        format!(
                            "{n}::{v}({b}) => ::serde::Value::Map(vec![(\"{v}\".to_string(), \
                             ::serde::Value::Seq(vec![{i}]))]),",
                            n = c.name,
                            v = v.name,
                            b = binds.join(", "),
                            i = items.join(", ")
                        )
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), ::serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        format!(
                            "{n}::{v} {{ {b} }} => ::serde::Value::Map(vec![(\"{v}\".to_string(), \
                             ::serde::Value::Map(vec![{e}]))]),",
                            n = c.name,
                            v = v.name,
                            b = binds.join(", "),
                            e = entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] {hdr} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        hdr = impl_header(c, "Serialize"),
        body = body
    )
}

fn field_expr(type_name: &str, source: &str, f: &Field) -> String {
    let missing = match &f.default {
        None => format!(
            "return ::std::result::Result::Err(\
             ::serde::value::DeserializeError::missing_field(\"{type_name}\", \"{}\"))",
            f.name
        ),
        Some(None) => "::std::default::Default::default()".to_string(),
        Some(Some(path)) => format!("{path}()"),
    };
    format!(
        "{f}: match {source}.get(\"{f}\") {{ \
           ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?, \
           ::std::option::Option::None => {{ {missing} }} }}",
        f = f.name,
        source = source,
        missing = missing
    )
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.body {
        Body::NamedStruct(fields) => {
            if c.transparent {
                assert!(
                    fields.len() == 1,
                    "serde_derive: transparent requires exactly one field"
                );
                format!(
                    "::std::result::Result::Ok({name} {{ {f}: ::serde::Deserialize::from_value(v)? }})",
                    f = fields[0].name
                )
            } else {
                let inits: Vec<String> = fields.iter().map(|f| field_expr(name, "v", f)).collect();
                format!(
                    "if v.as_map().is_none() {{ return ::std::result::Result::Err(v.unexpected(\"object\")); }} \
                     ::std::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                )
            }
        }
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = match v {{ ::serde::Value::Seq(items) => items, \
                 other => return ::std::result::Result::Err(other.unexpected(\"array\")) }}; \
                 if items.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::value::DeserializeError::new(format!(\
                 \"expected {n} elements for {name}, got {{}}\", items.len()))); }} \
                 ::std::result::Result::Ok({name}({items}))",
                n = n,
                name = name,
                items = items.join(", ")
            )
        }
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match &v.kind {
                    VariantKind::Unit => None,
                    VariantKind::Tuple(1) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(inner)?)),",
                        v = v.name
                    )),
                    VariantKind::Tuple(k) => {
                        let items: Vec<String> = (0..*k)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let items = match inner {{ \
                             ::serde::Value::Seq(items) => items, \
                             other => return ::std::result::Result::Err(other.unexpected(\"array\")) }}; \
                             if items.len() != {k} {{ return ::std::result::Result::Err(\
                             ::serde::value::DeserializeError::new(\
                             \"wrong tuple variant arity\".to_string())); }} \
                             ::std::result::Result::Ok({name}::{v}({items})) }},",
                            v = v.name,
                            k = k,
                            items = items.join(", ")
                        ))
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| field_expr(&format!("{name}::{}", v.name), "inner", f))
                            .collect();
                        Some(format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {inits} }}),",
                            v = v.name,
                            inits = inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match v {{ \
                 ::serde::Value::Str(s) => match s.as_str() {{ {units} _ => \
                 ::std::result::Result::Err(::serde::value::DeserializeError::new(format!(\
                 \"unknown variant `{{s}}` of {name}\"))) }}, \
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{ \
                 let (tag, inner) = &entries[0]; match tag.as_str() {{ {tagged} _ => \
                 ::std::result::Result::Err(::serde::value::DeserializeError::new(format!(\
                 \"unknown variant `{{tag}}` of {name}\"))) }} }}, \
                 other => ::std::result::Result::Err(other.unexpected(\"enum variant\")) }}",
                units = unit_arms.join(" "),
                tagged = tagged_arms.join(" "),
                name = name
            )
        }
    };
    format!(
        "#[automatically_derived] {hdr} {{ \
         fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::value::DeserializeError> {{ {body} }} }}",
        hdr = impl_header(c, "Deserialize"),
        body = body
    )
}
