//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the vendored serde [`Value`] tree as JSON text and parses
//! JSON text back. Covers the API surface the workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`] and [`Error`].

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

mod parse;

/// Error for serialization or deserialization failures.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeserializeError> for Error {
    fn from(e: serde::DeserializeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse::parse(text).map_err(Error::new)?;
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Keep a decimal point so the value re-parses as float.
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                // JSON has no NaN/Infinity; mirror upstream's `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&5u32).unwrap(), "5");
        assert_eq!(from_str::<u32>("5").unwrap(), 5);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
    }

    #[test]
    fn float_keeps_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);
        let empty: Vec<u64> = vec![];
        assert_eq!(to_string(&empty).unwrap(), "[]");
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u64];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1\n]");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<u32>("{oops").is_err());
        assert!(from_str::<u32>("5 trailing").is_err());
    }
}

#[cfg(test)]
mod hardening_tests {
    use super::*;

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(200_000);
        let err = from_str::<Value>(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        // Nesting within the limit still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(from_str::<Value>(&ok).is_ok());
    }

    #[test]
    fn lone_high_surrogate_is_an_error_not_a_panic() {
        assert!(from_str::<String>(r#""\uD800a""#).is_err());
        assert!(from_str::<String>(r#""\uD800""#).is_err());
        // A valid pair still decodes.
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn float_just_past_integer_range_is_rejected() {
        // 2^64 and 2^63 are exactly representable; both are out of range.
        assert!(from_str::<u64>("18446744073709551616.0").is_err());
        assert!(from_str::<i64>("9223372036854775808.0").is_err());
        assert_eq!(from_str::<u64>("4294967296.0").unwrap(), 1u64 << 32);
    }
}
