//! Recursive-descent JSON parser producing [`Value`] trees.

use serde::Value;

/// Maximum container nesting before the parser errors out instead of
/// recursing further (untrusted input must not overflow the stack).
const MAX_DEPTH: usize = 128;

pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at offset {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => {
                    self.depth -= 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => {
                    self.depth -= 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: read the low half if present.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() == Some(b'\\') && self.bump() == Some(b'u') {
                                let low = self.hex4()?;
                                if (0xDC00..0xE000).contains(&low) {
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(c.ok_or_else(|| "invalid unicode escape".to_string())?);
                    }
                    _ => return Err("invalid escape".to_string()),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(c) => {
                    // Re-decode the UTF-8 tail starting at this byte.
                    let start = self.pos - 1;
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .bump()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| "invalid \\u escape".to_string())?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("invalid number `{text}`"))
    }
}
